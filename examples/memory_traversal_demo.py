"""Inside memDag: why traversal order changes peak memory.

Builds a fork-join workflow where a naive breadth-first execution holds
every branch's files simultaneously, then shows the traversal the memdag
engine picks and the peak it achieves, alongside the brute-force optimum
(the workflow is small enough to enumerate).

Run:  python examples/memory_traversal_demo.py
"""

from repro.memdag.model import evaluate_traversal, peak_of_traversal
from repro.memdag.traversal import brute_force_min_peak, memdag_traversal
from repro.workflow.graph import Workflow


def build_workflow() -> Workflow:
    """Fork-join with asymmetric branches: big files on branch A."""
    wf = Workflow("fork-join")
    wf.add_task("split", memory=2.0)
    wf.add_task("join", memory=2.0)
    for branch, file_size in (("A", 30.0), ("B", 6.0), ("C", 3.0)):
        prev = "split"
        for stage in range(2):
            t = f"{branch}{stage}"
            wf.add_task(t, memory=4.0)
            wf.add_edge(prev, t, file_size)
            prev = t
        wf.add_edge(prev, "join", file_size / 3.0)
    return wf


def show(wf: Workflow, label: str, order) -> None:
    usages = evaluate_traversal(wf, list(order))
    print(f"{label:>12s}: peak={max(usages):6.1f}  "
          f"order={' '.join(str(u) for u in order)}")


def main() -> None:
    wf = build_workflow()

    # a deliberately bad order: run all first stages, then all second stages
    breadth_first = ["split", "A0", "B0", "C0", "A1", "B1", "C1", "join"]
    show(wf, "level-order", breadth_first)

    result = memdag_traversal(wf)
    show(wf, f"memdag({result.method})", result.order)

    brute = brute_force_min_peak(wf)
    show(wf, "optimal", brute.order)

    saved = peak_of_traversal(wf, breadth_first) - result.peak
    print(f"\nthe memdag order saves {saved:.1f} memory units "
          f"({result.peak:.1f} vs {peak_of_traversal(wf, breadth_first):.1f}); "
          f"optimum is {brute.peak:.1f}")
    print("Deep-diving one branch before opening the next keeps only one "
          "branch's files live at a time — the essence of memDag [18].")


if __name__ == "__main__":
    main()
