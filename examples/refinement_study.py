"""Refinement study: DagHetPart seed vs simulated annealing vs portfolio.

Maps one genome-like workflow with three registered algorithms — the
four-step ``daghetpart`` heuristic, its simulated-annealing refinement
``anneal`` (seeded from the best sweep mapping, priced entirely by the
incremental makespan evaluator), and the ``portfolio`` meta-scheduler
that keeps the best feasible mapping of its members — then shows what
each one achieved and who won the portfolio.

Run:  python examples/refinement_study.py
(set REPRO_EXAMPLE_SCALE=10 for a tiny smoke-test corpus, as CI does)
"""

import os

from repro import default_cluster, generate_workflow
from repro.api import (
    AnnealConfig,
    PortfolioConfig,
    ScheduleRequest,
    solve_batch,
)

#: divisor for task counts; CI's examples smoke job sets this to 10
SCALE = int(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def main() -> None:
    wf = generate_workflow("genome", n_tasks=max(16, 200 // SCALE), seed=11)
    cluster = default_cluster()
    print(f"workflow: {wf.name}  tasks={wf.n_tasks}  "
          f"cluster: {cluster.name}  k={cluster.k}")

    # One request per algorithm; anneal is deterministic per seed, and the
    # portfolio filters its members by capability (no memory-oblivious
    # baselines, no nested meta-schedulers).
    anneal_config = AnnealConfig(seed=3, iterations=max(50, 400 // SCALE),
                                 restarts=2)
    requests = [
        ScheduleRequest(workflow=wf, cluster=cluster, algorithm="daghetpart",
                        scale_memory=True, validate=True),
        ScheduleRequest(workflow=wf, cluster=cluster, algorithm="anneal",
                        config=anneal_config, scale_memory=True,
                        validate=True),
        ScheduleRequest(workflow=wf, cluster=cluster, algorithm="portfolio",
                        config=PortfolioConfig(
                            algorithms=("daghetmem", "daghetpart", "anneal")),
                        scale_memory=True, validate=True),
    ]
    results = solve_batch(requests)

    print()
    for result in results:
        assert result.success, result.failure
        print(f"{result.algorithm:10s}: makespan={result.makespan:10.1f}  "
              f"blocks={result.n_blocks}  runtime={result.runtime:.2f}s")

    part, anneal, portfolio = results
    seed_makespan = anneal.extra["anneal_seed_makespan"]
    print(f"\nanneal refinement: {seed_makespan:.1f} -> {anneal.makespan:.1f} "
          f"({anneal.extra['anneal_trials']} trials, "
          f"{anneal.extra['anneal_accepted']} accepted)")
    assert anneal.makespan <= seed_makespan  # the refiner's contract

    print(f"portfolio winner : {portfolio.extra['portfolio_winner']} "
          f"(members: {portfolio.extra['portfolio_members']})")
    best_member = min(part.makespan, anneal.makespan)
    assert portfolio.makespan <= best_member + 1e-9  # argmin of its members


if __name__ == "__main__":
    main()
