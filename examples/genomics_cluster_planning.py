"""Cluster planning for a genomics workflow (the paper's motivating domain).

A lab runs 1000Genome-style population-genetics workflows and wants to know
whether upgrading from the small (18-node) to the default (36) or large
(60) cluster is worth it, and how sensitive the answer is to workflow size.
This reproduces the reasoning behind Fig. 3 (right) on a concrete scenario.

Run:  python examples/genomics_cluster_planning.py
"""

from repro import DagHetPartConfig, dag_het_mem, dag_het_part
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster, large_cluster, small_cluster

CONFIG = DagHetPartConfig(k_prime_strategy="doubling")


def main() -> None:
    print(f"{'workflow':>14s} {'cluster':>12s} {'baseline':>10s} "
          f"{'daghetpart':>10s} {'speedup':>8s} {'blocks':>6s}")
    for n_tasks in (100, 400, 800):
        wf = generate_workflow("genome", n_tasks, seed=11)
        for cluster_factory in (small_cluster, default_cluster, large_cluster):
            cluster = scaled_cluster_for(wf, cluster_factory())
            try:
                base = dag_het_mem(wf, cluster)
                part = dag_het_part(wf, cluster, CONFIG)
            except Exception as exc:  # platform too small
                print(f"{wf.name:>14s} {cluster.name:>12s} "
                      f"-- no feasible mapping ({type(exc).__name__})")
                continue
            part.validate()
            speedup = base.makespan() / part.makespan()
            print(f"{wf.name:>14s} {cluster.name:>12s} "
                  f"{base.makespan():10.1f} {part.makespan():10.1f} "
                  f"{speedup:7.2f}x {part.n_blocks:6d}")
    print("\nReading: the speedup of heterogeneity-aware mapping grows with "
          "both workflow size and cluster size (Fig. 3 of the paper).")


if __name__ == "__main__":
    main()
