"""Cluster planning for a genomics workflow (the paper's motivating domain).

A lab runs 1000Genome-style population-genetics workflows and wants to know
whether upgrading from the small (18-node) to the default (36) or large
(60) cluster is worth it, and how sensitive the answer is to workflow size.
This reproduces the reasoning behind Fig. 3 (right) on a concrete scenario.

Scheduling goes through ``repro.api.solve``: infeasible platforms come
back as structured failures on the result (no try/except needed), and the
winning ``k'`` shows how aggressively DagHetPart partitioned.

Run:  python examples/genomics_cluster_planning.py
(set REPRO_EXAMPLE_SCALE=10 for a tiny smoke-test corpus, as CI does)
"""

import os

from repro import DagHetPartConfig
from repro.api import ScheduleRequest, solve
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster, large_cluster, small_cluster

SCALE = int(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
CONFIG = DagHetPartConfig(k_prime_strategy="doubling")


def main() -> None:
    print(f"{'workflow':>14s} {'cluster':>12s} {'baseline':>10s} "
          f"{'daghetpart':>10s} {'speedup':>8s} {'blocks':>6s} {'k-prime':>7s}")
    for n_tasks in (100, 400, 800):
        wf = generate_workflow("genome", max(16, n_tasks // SCALE), seed=11)
        for cluster_factory in (small_cluster, default_cluster, large_cluster):
            cluster = cluster_factory()
            base = solve(ScheduleRequest(workflow=wf, cluster=cluster,
                                         algorithm="daghetmem",
                                         scale_memory=True))
            part = solve(ScheduleRequest(workflow=wf, cluster=cluster,
                                         algorithm="daghetpart", config=CONFIG,
                                         scale_memory=True, validate=True))
            failed = base.failure or part.failure
            if failed is not None:  # platform too small
                print(f"{wf.name:>14s} {cluster.name:>12s} "
                      f"-- no feasible mapping ({failed.kind})")
                continue
            speedup = base.makespan / part.makespan
            print(f"{wf.name:>14s} {cluster.name:>12s} "
                  f"{base.makespan:10.1f} {part.makespan:10.1f} "
                  f"{speedup:7.2f}x {part.n_blocks:6d} {part.k_prime:7d}")
    print("\nReading: the speedup of heterogeneity-aware mapping grows with "
          "both workflow size and cluster size (Fig. 3 of the paper).")


if __name__ == "__main__":
    main()
