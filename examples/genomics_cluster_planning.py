"""Cluster planning for a genomics workflow (the paper's motivating domain).

A lab runs 1000Genome-style population-genetics workflows and wants to know
whether upgrading from the small (18-node) to the default (36) or large
(60) cluster is worth it, and how sensitive the answer is to workflow size.
This reproduces the reasoning behind Fig. 3 (right) on a concrete scenario.

The whole planning question is one declarative ``ScenarioSpec``: a
family-grid workflow source (three sizes of the "genome" family) crossed
with three platform axes (small/default/large presets) and both
algorithms. ``run_scenario`` streams the grid through ``repro.api``;
infeasible platforms come back as structured failures on the results (no
try/except needed), and the winning ``k'`` shows how aggressively
DagHetPart partitioned.

Run:  python examples/genomics_cluster_planning.py
(set REPRO_EXAMPLE_SCALE=10 for a tiny smoke-test corpus, as CI does)
"""

import os

from repro.api import (
    AlgorithmSpec,
    FamilyGridSource,
    PlatformAxis,
    ScenarioSpec,
    run_scenario,
)

SCALE = int(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def main() -> None:
    sizes = tuple(max(16, n // SCALE) for n in (100, 400, 800))
    spec = ScenarioSpec(
        name="genomics-cluster-planning",
        description="is a bigger cluster worth it for genome workflows?",
        workflows=(FamilyGridSource(families=("genome",),
                                    sizes={"plan": sizes}, seed=11),),
        platforms=(PlatformAxis(preset="small"),
                   PlatformAxis(preset="default"),
                   PlatformAxis(preset="large")),
        algorithms=(AlgorithmSpec("daghetmem"),
                    AlgorithmSpec("daghetpart",
                                  config={"k_prime_strategy": "doubling"})),
        tags={"preset": "{preset}"},  # template: expanded per request
        scale_memory=True,
    )

    results = list(run_scenario(spec))  # add cache="plan-cache/" to resume
    by_key = {(r.tags["instance"], r.tags["preset"], r.algorithm): r
              for r in results}

    print(f"{'workflow':>14s} {'cluster':>12s} {'baseline':>10s} "
          f"{'daghetpart':>10s} {'speedup':>8s} {'blocks':>6s} {'k-prime':>7s}")
    for n in sizes:
        instance = f"genome-{n}"
        for cluster in ("small", "default", "large"):
            base = by_key[(instance, cluster, "DagHetMem")]
            part = by_key[(instance, cluster, "DagHetPart")]
            failed = base.failure or part.failure
            if failed is not None:  # platform too small
                print(f"{instance:>14s} {cluster:>12s} "
                      f"-- no feasible mapping ({failed.kind})")
                continue
            speedup = base.makespan / part.makespan
            print(f"{instance:>14s} {cluster:>12s} "
                  f"{base.makespan:10.1f} {part.makespan:10.1f} "
                  f"{speedup:7.2f}x {part.n_blocks:6d} {part.k_prime:7d}")
    print("\nReading: the speedup of heterogeneity-aware mapping grows with "
          "both workflow size and cluster size (Fig. 3 of the paper).")


if __name__ == "__main__":
    main()
