"""Quickstart: schedule a workflow on the paper's default cluster.

Generates a 200-task BLAST-like workflow and maps it through the public
API (``repro.api.solve``) with both algorithms — the DagHetMem baseline
and the four-step DagHetPart heuristic — then prints the makespans, the
winning ``k'`` with its sweep trace, and the block placement.

Run:  python examples/quickstart.py
(set REPRO_EXAMPLE_SCALE=10 for a tiny smoke-test corpus, as CI does)
"""

import os

from repro import DagHetPartConfig, default_cluster, generate_workflow
from repro.api import ScheduleRequest, solve
from repro.workflow.analysis import workflow_statistics

#: divisor for task counts; CI's examples smoke job sets this to 10
SCALE = int(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def main() -> None:
    # 1. A workflow: 200-task BLAST (fan-out heavy), paper weight model.
    wf = generate_workflow("blast", n_tasks=max(16, 200 // SCALE), seed=7)
    stats = workflow_statistics(wf)
    print(f"workflow: {stats.name}  tasks={stats.n_tasks}  edges={stats.n_edges}  "
          f"width={stats.width:.0f}  total_work={stats.total_work:.0f}")

    # 2. The platform: Table 2's 36-node cluster. scale_memory=True applies
    #    the paper's rule so the biggest task fits somewhere.
    cluster = default_cluster()

    # 3. One ScheduleRequest per algorithm; solve() times the run, captures
    #    failures structurally, and reports the k' sweep.
    config = DagHetPartConfig(k_prime_strategy="doubling")
    baseline = solve(ScheduleRequest(workflow=wf, cluster=cluster,
                                     algorithm="daghetmem",
                                     scale_memory=True, validate=True))
    heuristic = solve(ScheduleRequest(workflow=wf, cluster=cluster,
                                      algorithm="daghetpart", config=config,
                                      scale_memory=True, validate=True))
    print(f"cluster:  {heuristic.cluster}  k={cluster.k}  "
          f"beta={heuristic.bandwidth:g}")

    for result in (baseline, heuristic):
        assert result.success, result.failure
        print(f"\n{result.algorithm:10s}: makespan={result.makespan:10.1f}  "
              f"blocks={result.n_blocks}  runtime={result.runtime:.2f}s")
    print(f"improvement factor: "
          f"{baseline.makespan / heuristic.makespan:.2f}x")

    # 4. The k' sweep behind DagHetPart's answer (Step 1 of Section 4.2).
    print(f"\nwinning k' = {heuristic.k_prime}; sweep trace:")
    for point in heuristic.sweep:
        ms = f"{point.makespan:12.1f}" if point.makespan is not None else " " * 12
        print(f"  k'={point.k_prime:3d}  {ms}  [{point.status}]")

    # 5. Where did the blocks go? The live Mapping rides on the result.
    print("\nDagHetPart block placement (top 8 by work):")
    blocks = sorted(heuristic.mapping.assignments,
                    key=lambda a: -sum(wf.work(u) for u in a.tasks))
    for a in blocks[:8]:
        work = sum(wf.work(u) for u in a.tasks)
        print(f"  {len(a.tasks):4d} tasks  work={work:9.1f}  "
              f"mem={a.requirement:7.1f}/{a.processor.memory:7.1f}  "
              f"-> {a.processor.name} (speed {a.processor.speed:g})")


if __name__ == "__main__":
    main()
