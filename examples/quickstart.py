"""Quickstart: schedule a workflow on the paper's default cluster.

Generates a 200-task BLAST-like workflow, maps it with both algorithms
(DagHetMem baseline and the four-step DagHetPart heuristic) and prints the
resulting makespans, block structure, and the improvement factor.

Run:  python examples/quickstart.py
"""

from repro import (
    DagHetPartConfig,
    default_cluster,
    generate_workflow,
    schedule,
)
from repro.experiments.instances import scaled_cluster_for
from repro.workflow.analysis import workflow_statistics


def main() -> None:
    # 1. A workflow: 200-task BLAST (fan-out heavy), paper weight model.
    wf = generate_workflow("blast", n_tasks=200, seed=7)
    stats = workflow_statistics(wf)
    print(f"workflow: {stats.name}  tasks={stats.n_tasks}  edges={stats.n_edges}  "
          f"width={stats.width:.0f}  total_work={stats.total_work:.0f}")

    # 2. The platform: Table 2's 36-node cluster; memories scaled so the
    #    biggest task fits somewhere (the paper's rule for synthetic runs).
    cluster = scaled_cluster_for(wf, default_cluster())
    print(f"cluster:  {cluster.name}  k={cluster.k}  beta={cluster.bandwidth:g}")

    # 3. Map with the baseline and with DagHetPart.
    baseline = schedule(wf, cluster, algorithm="daghetmem")
    heuristic = schedule(wf, cluster, algorithm="daghetpart",
                         config=DagHetPartConfig(k_prime_strategy="doubling"))
    for mapping in (baseline, heuristic):
        mapping.validate()  # re-checks memory, injectivity, acyclicity

    print(f"\nDagHetMem : makespan={baseline.makespan():10.1f}  "
          f"blocks={baseline.n_blocks}")
    print(f"DagHetPart: makespan={heuristic.makespan():10.1f}  "
          f"blocks={heuristic.n_blocks}")
    print(f"improvement factor: "
          f"{baseline.makespan() / heuristic.makespan():.2f}x")

    # 4. Where did the blocks go?
    print("\nDagHetPart block placement (top 8 by work):")
    blocks = sorted(heuristic.assignments,
                    key=lambda a: -sum(wf.work(u) for u in a.tasks))
    for a in blocks[:8]:
        work = sum(wf.work(u) for u in a.tasks)
        print(f"  {len(a.tasks):4d} tasks  work={work:9.1f}  "
              f"mem={a.requirement:7.1f}/{a.processor.memory:7.1f}  "
              f"-> {a.processor.name} (speed {a.processor.speed:g})")


if __name__ == "__main__":
    main()
