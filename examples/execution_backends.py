"""Execution backends & policies: one batch, four engines, one answer.

Builds a small request grid and runs it through ``solve_batch`` on the
``serial``, ``thread``, ``process`` and ``queue`` backends, asserting
the results are bit-for-bit identical (modulo measured runtime) — then
demonstrates the per-request ``ExecutionPolicy``: a deliberately slow
algorithm is cut off by ``timeout_s`` and reported as a structured
``FailureInfo(kind="timeout")`` instead of hanging the sweep. Finally the
batch is re-run against a ``sqlite://`` result cache to show the second
pass doing zero solves — on the ``queue`` backend the spawned
``repro worker`` subprocesses share that same cache file.

Run:  python examples/execution_backends.py
(set REPRO_EXAMPLE_SCALE=10 for a tiny smoke-test corpus, as CI does)
"""

import os
import tempfile
import time

from repro.core.heuristic import DagHetPartConfig
from repro.api import (
    ExecutionPolicy,
    ScheduleRequest,
    open_cache,
    register_algorithm,
    route,
    solve_batch,
    unregister_algorithm,
)
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster

#: divisor for task counts; CI's examples smoke job sets this to 10
SCALE = int(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def build_requests():
    cluster = default_cluster()
    config = DagHetPartConfig(k_prime_strategy="doubling")
    return [
        ScheduleRequest(workflow=generate_workflow(family, max(16, 120 // SCALE),
                                                   seed=11),
                        cluster=cluster, algorithm=algorithm,
                        config=config if algorithm == "daghetpart" else None,
                        scale_memory=True, want_mapping=False,
                        tags={"family": family})
        for family in ("blast", "bwa", "soykb")
        for algorithm in ("daghetmem", "daghetpart")
    ]


def strip(result):
    """Everything deterministic: the envelope minus the measured runtime."""
    return {k: v for k, v in result.to_dict().items() if k != "runtime"}


def main() -> None:
    requests = build_requests()

    # 1. The router: explicit override > $REPRO_BACKEND > worker count +
    #    algorithm capabilities.
    print(f"routing: workers=1 -> {route(('daghetpart',), workers=1)}, "
          f"workers=4 -> {route(('daghetpart',), workers=4)}")

    # 2. Same batch on every backend; identical results by contract.
    #    ("queue" spools requests to a temp directory and spawns two
    #    `repro worker` subprocesses that claim and solve them — the
    #    same engine would serve workers attached from other machines.)
    reference = None
    for backend in ("serial", "thread", "process", "queue"):
        start = time.perf_counter()
        results = solve_batch(requests, backend=backend, parallel=2)
        elapsed = time.perf_counter() - start
        stripped = [strip(r) for r in results]
        if reference is None:
            reference = stripped
        assert stripped == reference, f"{backend} diverged!"
        best = min(r.makespan for r in results)
        print(f"{backend:8s}: {len(results)} results in {elapsed:5.2f}s "
              f"(best makespan {best:.1f})")
    print("all backends agree bit-for-bit (modulo runtime)")

    # 3. ExecutionPolicy: a slow algorithm is cut off, not waited for.
    @register_algorithm("gridlock", summary="sleeps forever (demo)")
    def gridlock(workflow, cluster, config=None):
        time.sleep(60.0)
        raise AssertionError("unreachable")

    try:
        slow = ScheduleRequest(
            workflow=requests[0].workflow, cluster=default_cluster(),
            algorithm="gridlock", want_mapping=False,
            policy=ExecutionPolicy(timeout_s=0.5))
        start = time.perf_counter()
        [timed_out] = solve_batch([slow])
        print(f"\npolicy: gridlock cut off after "
              f"{time.perf_counter() - start:.1f}s -> "
              f"FailureInfo(kind={timed_out.failure.kind!r})")
        assert timed_out.failure.kind == "timeout"
    finally:
        unregister_algorithm("gridlock")

    # 4. Swappable cache backends: sqlite URI, second run = zero solves.
    with tempfile.TemporaryDirectory() as tmp:
        uri = f"sqlite://{tmp}/results.db"
        with open_cache(uri) as cache:
            solve_batch(requests, cache=cache)
            first = dict(cache.stats())
            solve_batch(requests, cache=cache)
            second = dict(cache.stats())
        print(f"\ncache {uri.split('/')[-1]}: first run misses={first['misses']}, "
              f"second run hits={second['hits'] - first['hits']} "
              f"(zero new solves)")
        assert second["misses"] == first["misses"]

    # 5. Queue workers share one sqlite cache: each spawned worker gets
    #    the cache URI, checks it before solving and records fresh
    #    results, so a re-run — by this parent or any other attached to
    #    the same cache file — costs zero solves.
    with tempfile.TemporaryDirectory() as tmp:
        uri = f"sqlite://{tmp}/shared.db"
        with open_cache(uri) as cache:
            solve_batch(requests, backend="queue", parallel=2, cache=cache)
            first = dict(cache.stats())
            solve_batch(requests, backend="queue", parallel=2, cache=cache)
            second = dict(cache.stats())
        print(f"queue + shared cache: first run misses={first['misses']}, "
              f"second run hits={second['hits'] - first['hits']} "
              f"(served without re-solving)")
        assert second["misses"] == first["misses"]


if __name__ == "__main__":
    main()
