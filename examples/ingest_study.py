"""Ingest real workflow traces and compare schedulers across them.

Every trace bundled under ``examples/traces/`` — a WfCommons JSON trace,
a Pegasus DAX, a nextflow DOT export, a CSV edge list, and a rendered
per-sample template — flows through the same ``repro.ingest`` gate
(detect format, import, normalize, validate), gets its structural
profile printed, and is then scheduled on the paper's default cluster
with DagHetPart, the HEFT-style list scheduler, and the CPack
partitioner, so the comparison the paper makes on synthetic corpora can
be repeated on anything a real workflow system exports.

Run:  python examples/ingest_study.py
(REPRO_EXAMPLE_SCALE has no effect here — the traces are already tiny)
"""

import json
from pathlib import Path

from repro import default_cluster
from repro.api import ScheduleRequest, solve
from repro.ingest import NormalizeOptions, ingest_path, workflow_stats

TRACES = Path(__file__).resolve().parent / "traces"

#: (file, forced format or None to sniff, template data file or None,
#:  unit scaling). Traces record memory in whatever unit the exporting
#: system used — the scaling knob converts into the model's abstract
#: units at the ingest boundary: bytes -> GiB for the WfCommons trace,
#: MB -> GiB for the DAX.
SOURCES = [
    ("epigenomics.wfformat.json", None, None,
     NormalizeOptions(memory_scale=1.0 / 2 ** 30,
                      cost_scale=1.0 / 2 ** 30)),
    ("montage.dax", None, None,
     NormalizeOptions(memory_scale=1.0 / 1024,
                      cost_scale=1.0 / 2 ** 30)),
    ("rnaseq.dot", None, None, None),
    ("cyclesweep.csv", "edgelist", None, None),
    ("variant_calling.tpl", "template", "variant_calling.data.json", None),
]

ALGORITHMS = ("daghetpart", "heftlist", "cpack")


def main() -> None:
    cluster = default_cluster()
    print(f"cluster: k={cluster.k} (paper default preset)\n")

    header = f"{'workflow':<24} {'tasks':>5} {'edges':>5} {'depth':>5} " \
             + "".join(f"{name:>12}" for name in ALGORITHMS)
    print(header)
    print("-" * len(header))

    for filename, fmt, data_file, options in SOURCES:
        data = None
        if data_file is not None:
            data = json.loads((TRACES / data_file).read_text())
        wf = ingest_path(str(TRACES / filename), fmt=fmt, data=data,
                         options=options)
        stats = workflow_stats(wf)

        makespans = []
        for algorithm in ALGORITHMS:
            result = solve(ScheduleRequest(
                workflow=wf, cluster=cluster, algorithm=algorithm,
                scale_memory=True, validate=True))
            makespans.append(result.makespan if result.success else None)

        cells = "".join(
            f"{m:>12.2f}" if m is not None else f"{'failed':>12}"
            for m in makespans)
        print(f"{stats['name']:<24} {stats['n_tasks']:>5} "
              f"{stats['n_edges']:>5} {stats['depth']:>5} {cells}")

    print("\nColumns are makespans on the default cluster (beta=1); "
          "lower is better.")


if __name__ == "__main__":
    main()
