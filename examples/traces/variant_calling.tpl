# A per-sample variant-calling pipeline: the same align/call chain is
# stamped out for every sample in the data file, then joint-genotyped.
name: variant-calling-{{cohort}}
tasks:
  - id: ref_index
    work: 5
    memory: 4
{% for s in samples %}
  - id: align_{{s.id}}
    work: {{s.reads}}
    memory: 8
    after: ref_index
    cost: 1.5
  - id: dedup_{{s.id}}
    work: 2
    memory: 4
    after: align_{{s.id}}
  - id: call_{{s.id}}
    work: {{s.depth}}
    memory: 6
    after: dedup_{{s.id}}
    before: joint_genotype
{% endfor %}
  - id: joint_genotype
    work: 12
    memory: 16
  - id: report
    work: 1
    after: joint_genotype
