"""Communication-to-computation study: when does the network matter?

Compares a fan-out-heavy family (BWA) against a chain-like one (SoyKB)
across interconnect bandwidths — the Fig. 7 experiment on two concrete
workflows. Fanned-out workflows cut many files when parallelized, so their
mappings improve sharply with bandwidth; chain-like ones barely react.

Run:  python examples/bandwidth_study.py
"""

from repro import DagHetPartConfig, dag_het_mem, dag_het_part
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster

CONFIG = DagHetPartConfig(k_prime_strategy="doubling")
BETAS = (0.1, 0.5, 1.0, 2.0, 5.0)


def main() -> None:
    print(f"{'family':>12s} {'beta':>6s} {'relative_makespan':>18s}")
    for family in ("bwa", "soykb"):
        wf = generate_workflow(family, 300, seed=5)
        series = []
        for beta in BETAS:
            cluster = scaled_cluster_for(wf, default_cluster(bandwidth=beta))
            base = dag_het_mem(wf, cluster)
            part = dag_het_part(wf, cluster, CONFIG)
            rel = 100.0 * part.makespan() / base.makespan()
            series.append(rel)
            print(f"{family:>12s} {beta:6.1f} {rel:17.1f}%")
        swing = max(series) - min(series)
        print(f"{'':>12s} bandwidth swing for {family}: "
              f"{swing:.1f} percentage points\n")
    print("Reading: the fanned-out family reacts much more strongly to "
          "bandwidth than the chain-like one (Section 5.2.6).")


if __name__ == "__main__":
    main()
