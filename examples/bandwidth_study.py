"""Communication-to-computation study: when does the network matter?

Compares a fan-out-heavy family (BWA) against a chain-like one (SoyKB)
across interconnect bandwidths — the Fig. 7 experiment on two concrete
workflows. Fanned-out workflows cut many files when parallelized, so their
mappings improve sharply with bandwidth; chain-like ones barely react.

The whole grid (family x beta x algorithm) is expressed as one request
list and executed by ``repro.api.solve_batch`` — the same façade the
experiment harness uses for corpus sweeps.

Run:  python examples/bandwidth_study.py
(set REPRO_EXAMPLE_SCALE=10 for a tiny smoke-test corpus, as CI does)
"""

import os

from repro import DagHetPartConfig
from repro.api import ScheduleRequest, solve_batch
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster

SCALE = int(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
CONFIG = DagHetPartConfig(k_prime_strategy="doubling")
BETAS = (0.1, 0.5, 1.0, 2.0, 5.0)


def main() -> None:
    requests = []
    for family in ("bwa", "soykb"):
        wf = generate_workflow(family, max(16, 300 // SCALE), seed=5)
        for beta in BETAS:
            for algorithm in ("daghetmem", "daghetpart"):
                requests.append(ScheduleRequest(
                    workflow=wf, cluster=default_cluster(bandwidth=beta),
                    algorithm=algorithm, config=CONFIG, scale_memory=True,
                    tags={"family": family, "beta": beta}))
    results = solve_batch(requests)  # add parallel=N to fan out
    for result in results:
        result.raise_if_failed()

    print(f"{'family':>12s} {'beta':>6s} {'relative_makespan':>18s}")
    by_key = {(r.tags["family"], r.tags["beta"], r.algorithm): r
              for r in results}
    for family in ("bwa", "soykb"):
        series = []
        for beta in BETAS:
            base = by_key[(family, beta, "DagHetMem")]
            part = by_key[(family, beta, "DagHetPart")]
            rel = 100.0 * part.makespan / base.makespan
            series.append(rel)
            print(f"{family:>12s} {beta:6.1f} {rel:17.1f}%")
        swing = max(series) - min(series)
        print(f"{'':>12s} bandwidth swing for {family}: "
              f"{swing:.1f} percentage points\n")
    print("Reading: the fanned-out family reacts much more strongly to "
          "bandwidth than the chain-like one (Section 5.2.6).")


if __name__ == "__main__":
    main()
