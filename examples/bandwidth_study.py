"""Communication-to-computation study: when does the network matter?

Compares a fan-out-heavy family (BWA) against a chain-like one (SoyKB)
across interconnect bandwidths — the Fig. 7 experiment on two concrete
workflows. Fanned-out workflows cut many files when parallelized, so their
mappings improve sharply with bandwidth; chain-like ones barely react.

The whole grid (family x beta x algorithm) is *declared*, not coded: it
lives in ``examples/specs/bandwidth_study.json`` as a ``ScenarioSpec``
(workflow sources x platform axes x algorithms, with tag templates), and
``run_scenario`` streams it through the same ``repro.api`` batch façade
the experiment harness uses. Pass a cache directory to ``run_scenario``
and a re-run is served from disk without a single solve call.

Run:  python examples/bandwidth_study.py
(set REPRO_EXAMPLE_SCALE=10 for a tiny smoke-test corpus, as CI does)
"""

import dataclasses
import os

from repro.api import load_scenario, run_scenario

SCALE = int(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
SPEC_PATH = os.path.join(os.path.dirname(__file__), "specs",
                         "bandwidth_study.json")


def main() -> None:
    spec = load_scenario(SPEC_PATH)
    if SCALE > 1:  # shrink the declared workflow sizes for the CI smoke run
        grid = spec.workflows[0]
        sizes = {cat: tuple(max(16, n // SCALE) for n in counts)
                 for cat, counts in grid.sizes.items()}
        spec = dataclasses.replace(
            spec, workflows=(dataclasses.replace(grid, sizes=sizes),))
    print(f"scenario: {spec.name} ({spec.size()} requests)\n{spec.description}\n")

    results = list(run_scenario(spec))  # add parallel=N / cache="dir/" here
    for result in results:
        result.raise_if_failed()

    betas = spec.platforms[0].bandwidths
    print(f"{'family':>12s} {'beta':>6s} {'relative_makespan':>18s}")
    by_key = {(r.tags["family"], r.bandwidth, r.algorithm): r for r in results}
    for family in ("bwa", "soykb"):
        series = []
        for beta in betas:
            base = by_key[(family, beta, "DagHetMem")]
            part = by_key[(family, beta, "DagHetPart")]
            rel = 100.0 * part.makespan / base.makespan
            series.append(rel)
            print(f"{family:>12s} {beta:6.1f} {rel:17.1f}%")
        swing = max(series) - min(series)
        print(f"{'':>12s} bandwidth swing for {family}: "
              f"{swing:.1f} percentage points\n")
    print("Reading: the fanned-out family reacts much more strongly to "
          "bandwidth than the chain-like one (Section 5.2.6).")
    print(f"(the grid is declared in {os.path.relpath(SPEC_PATH)}; "
          f"`python -m repro scenario run` executes the same file)")


if __name__ == "__main__":
    main()
