"""Mapping across two sites with a slow WAN link (future-work extension).

The paper closes with: "we plan ... to add one more level of heterogeneity
by considering different communication bandwidths." This example exercises
that extension: the default 36-node cluster is split into two sites with a
fast intra-site interconnect and a slow WAN between them, and we compare
the resulting mappings against the uniform-bandwidth model — both obtained
through ``repro.api.solve``.

Run:  python examples/multisite_mapping.py
(set REPRO_EXAMPLE_SCALE=10 for a tiny smoke-test corpus, as CI does)
"""

import os

from repro import DagHetPartConfig, default_cluster
from repro.api import ScheduleRequest, solve
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.platform.bandwidth import GroupedBandwidth

SCALE = int(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
CONFIG = DagHetPartConfig(k_prime_strategy="doubling")


def site_of(mapping, cluster, model):
    """Count how many cut edges cross the WAN under this mapping."""
    q = mapping.to_quotient()
    cross = 0.0
    intra = 0.0
    for bid, nbrs in q.succ.items():
        for other, cost in nbrs.items():
            pa = q.blocks[bid].proc
            pb = q.blocks[other].proc
            if model.group_of(pa) == model.group_of(pb):
                intra += cost
            else:
                cross += cost
    return intra, cross


def main() -> None:
    wf = generate_workflow("genome", max(16, 300 // SCALE), seed=17)
    base = scaled_cluster_for(wf, default_cluster())

    # split the cluster into two sites, half the nodes each
    names = [p.name for p in base.processors]
    groups = {n: ("site-a" if i % 2 == 0 else "site-b")
              for i, n in enumerate(names)}
    model = GroupedBandwidth(groups, intra_beta=2.0, inter_beta=0.2)
    multisite = base.with_bandwidth_model(model)

    uniform = solve(ScheduleRequest(workflow=wf, cluster=base,
                                    algorithm="daghetpart", config=CONFIG,
                                    validate=True)).raise_if_failed()
    split = solve(ScheduleRequest(workflow=wf, cluster=multisite,
                                  algorithm="daghetpart", config=CONFIG,
                                  validate=True)).raise_if_failed()

    print(f"workflow: {wf.name} ({wf.n_tasks} tasks)")
    print(f"\nuniform bandwidth (beta=1):    makespan={uniform.makespan:9.1f}  "
          f"blocks={uniform.n_blocks}")
    print(f"two sites (2.0 intra/0.2 WAN): makespan={split.makespan:9.1f}  "
          f"blocks={split.n_blocks}")

    intra, cross = site_of(split.mapping, multisite, model)
    print(f"\ncommunication of the multi-site mapping: "
          f"{intra:.0f} units intra-site, {cross:.0f} units over the WAN")
    print("The makespan model charges WAN edges at 10x the intra cost, so "
          "the k'-sweep + swaps gravitate toward mappings whose heavy cuts "
          "stay inside a site.")


if __name__ == "__main__":
    main()
