"""Mapping your own workflow: build, import, validate, inspect.

Shows the full user-facing path for a hand-written pipeline: construct a
Workflow programmatically (or import a nextflow-style DOT export), define
a custom heterogeneous cluster, schedule it, and read the block schedule
including each block's memory-optimal traversal order.

Run:  python examples/custom_workflow.py
"""

from repro import Cluster, DagHetPartConfig, Processor, Workflow
from repro.api import ScheduleRequest, solve
from repro.workflow.io import workflow_from_dot
from repro.workflow.validation import validate_workflow

VIDEO_PIPELINE_DOT = """
digraph "video-analytics" {
  ingest      [work=40,  memory=8];
  decode      [work=250, memory=24];
  detect      [work=900, memory=48];
  track       [work=350, memory=16];
  transcribe  [work=700, memory=32];
  summarize   [work=120, memory=8];
  index       [work=60,  memory=12];
  ingest -> decode      [cost=20];
  decode -> detect      [cost=16];
  decode -> transcribe  [cost=16];
  detect -> track       [cost=6];
  track -> summarize    [cost=2];
  transcribe -> summarize [cost=3];
  summarize -> index    [cost=1];
}
"""


def main() -> None:
    # 1. Import the DAG from a DOT export and validate the model rules.
    wf = workflow_from_dot(VIDEO_PIPELINE_DOT, name="video-analytics")
    validate_workflow(wf, require_single_source=True)
    print(f"imported {wf}: max task requirement "
          f"{wf.max_task_requirement():.0f}")

    # 2. A custom cluster: one big-memory node, two fast small ones.
    cluster = Cluster([
        Processor("bigmem", speed=8.0, memory=120.0),
        Processor("fast-a", speed=24.0, memory=40.0),
        Processor("fast-b", speed=24.0, memory=40.0),
    ], bandwidth=2.0, name="edge-rack")

    # 3. Schedule with the full k' sweep (tiny cluster, so it is cheap);
    #    validate=True re-checks memory, injectivity, and acyclicity.
    result = solve(ScheduleRequest(
        workflow=wf, cluster=cluster, algorithm="daghetpart",
        config=DagHetPartConfig(k_prime_strategy="all"), validate=True))
    result.raise_if_failed()
    mapping = result.mapping
    print(f"makespan: {result.makespan:.2f} time units over "
          f"{result.n_blocks} blocks (winning k'={result.k_prime})\n")

    # 4. Print the executable schedule: per block, the traversal order that
    #    realizes the block's memory requirement.
    for a in sorted(mapping.assignments, key=lambda a: a.processor.name):
        print(f"on {a.processor.name} (speed {a.processor.speed:g}, "
              f"mem {a.processor.memory:g}):")
        print(f"  peak memory {a.requirement:.1f}")
        print(f"  run order: {' -> '.join(str(t) for t in a.traversal)}")


if __name__ == "__main__":
    main()
