"""Scheduling-as-a-service: submit, stream, poll, stats, graceful drain.

Boots a real :class:`repro.service.ServiceApp` on an ephemeral port (the
same code path as ``repro serve``), then walks the whole client surface:

1. submit a single ``ScheduleRequest`` and poll it to completion —
   the result record matches an offline ``solve`` bit-for-bit;
2. submit a full ``ScenarioSpec`` (a 2-family x 2-algorithm grid) and
   watch its progress over the chunked ``/v1/jobs/{id}/events`` stream;
3. read ``/v1/stats`` — queue depth, per-backend throughput, and the
   shared result cache's hit rate (the same numbers
   ``repro cache stats URI`` prints offline);
4. drain gracefully via ``POST /v1/shutdown`` and show that a
   submission after the drain begins is refused with 503 while
   everything accepted earlier landed durably in the job store.

Run:  python examples/service_demo.py
(set REPRO_EXAMPLE_SCALE=10 for a tiny smoke-test corpus, as CI does)
"""

import asyncio
import os
import tempfile
import threading

from repro.api import (
    AlgorithmSpec,
    FamilyGridSource,
    PlatformAxis,
    ScenarioSpec,
    ScheduleRequest,
    solve,
)
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster
from repro.service import JobStore, ServiceApp, ServiceClient, ServiceError

#: divisor for task counts; CI's examples smoke job sets this to 10
SCALE = int(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
N_TASKS = max(16, 160 // SCALE)


def start_service(store_dir: str, cache_uri: str):
    """Run a ServiceApp in a background event-loop thread; return it."""
    holder = {}
    started = threading.Event()

    def run():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main():
            app = ServiceApp(store_dir, cache=cache_uri, workers=2)
            await app.start(host="127.0.0.1", port=0)
            holder["app"] = app
            started.set()
            await app.wait_closed()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    started.wait(20)
    return holder["app"], thread


def main():
    tmp = tempfile.mkdtemp(prefix="repro-service-demo-")
    store_dir = os.path.join(tmp, "store")
    cache_uri = "sqlite://" + os.path.join(tmp, "cache.db")
    app, thread = start_service(store_dir, cache_uri)
    client = ServiceClient(f"http://127.0.0.1:{app.port}")
    print(f"service up on http://127.0.0.1:{app.port} (store: {store_dir})")

    # -- 1. single request: service result == offline result -----------
    request = ScheduleRequest(
        workflow=generate_workflow("blast", N_TASKS, seed=11),
        cluster=default_cluster(), algorithm="daghetpart",
        scale_memory=True, tags={"origin": "service_demo"})
    accepted = client.submit_schedule(request.to_dict())
    print(f"\nsubmitted schedule job {accepted['id']} "
          f"({accepted['total']} request)")
    view = client.wait(accepted["id"])
    (record,) = view["result"]["results"]
    offline = solve(request)
    print(f"service makespan {record['makespan']:.2f} / "
          f"offline {offline.makespan:.2f} "
          f"(identical: {record['makespan'] == offline.makespan})")

    # -- 2. scenario job, followed over the event stream ----------------
    spec = ScenarioSpec(
        name="demo-grid",
        workflows=(FamilyGridSource(families=("blast", "bwa"),
                                    sizes=(N_TASKS,), seed=7),),
        platforms=(PlatformAxis(preset="default", bandwidths=(1.0,)),),
        algorithms=(AlgorithmSpec("daghetpart"), AlgorithmSpec("daghetmem")),
        scale_memory=True)
    accepted = client.submit_scenario(spec.to_dict())
    print(f"\nsubmitted scenario job {accepted['id']} "
          f"({accepted['total']} requests); streaming events:")
    for event in client.events(accepted["id"]):
        if event["event"] == "tick":
            print(f"  [{event['completed']}/{event['total']}] "
                  f"{event['workflow']} / {event['algorithm']}: "
                  f"makespan {event['makespan']:.2f}")
        elif event["event"] == "end":
            print(f"  job {event['state']}")

    # resubmitting the same spec is served from the shared cache
    repeat = client.submit_scenario(spec.to_dict())
    result = client.wait(repeat["id"])["result"]
    print(f"resubmitted: cache_hits={result['cache_hits']} "
          f"cache_misses={result['cache_misses']}")

    # -- 3. stats -------------------------------------------------------
    stats = client.stats()
    cache = stats["cache"]
    print(f"\nstats: {stats['completed_jobs']} jobs / "
          f"{stats['completed_requests']} requests completed, "
          f"queue depth {stats['queue_depth']}")
    for name, b in stats["backends"].items():
        print(f"  backend {name}: {b['requests']} requests "
              f"at {b['requests_per_s']:.1f}/s")
    print(f"  cache {cache['kind']} ({cache['location']}): "
          f"{cache['entries']} entries, hit rate {cache['hit_rate']}")

    # -- 4. graceful drain ---------------------------------------------
    client.shutdown()
    thread.join(30)
    try:
        client.submit_schedule(request.to_dict())
    except (ServiceError, OSError) as exc:
        print(f"\nsubmission after shutdown refused: {exc}")
    with JobStore(store_dir) as store:
        print(f"job store after drain: {store.counts()} (all durable)")


if __name__ == "__main__":
    main()
