"""Robustness study: three reaction policies under one perturbation storm.

Plans a genome-like workflow once, then replays that plan under an
identical dynamic scenario — two Poisson job arrivals, the *busiest*
processor failing mid-run, and a runtime-inflation shock — once per
registered reaction policy:

* ``static``    never re-plans (forced repairs only);
* ``resolve``   cold full re-solve at every event (pays solver latency);
* ``warmstart`` incremental repair priced by evaluator deltas (zero
  full bottom-weight passes — asserted below).

The comparison every robustness table in the paper family rests on:
how much of the disturbance each policy absorbs (makespan degradation),
at what re-planning price (full passes, migrations).

Run:  python examples/robustness_study.py
(set REPRO_EXAMPLE_SCALE=10 for a tiny smoke-test corpus, as CI does)
"""

import os

from repro import generate_workflow
from repro.api import ScheduleRequest, solve
from repro.platform.presets import cluster_by_name
from repro.sim import (
    DynamicsSpec,
    PoissonArrivals,
    ProcessorChurn,
    RuntimeInflation,
    available_policies,
    simulate_request,
)

#: divisor for task counts; CI's examples smoke job sets this to 10
SCALE = int(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def main() -> None:
    n_tasks = max(40, 200 // SCALE)
    wf = generate_workflow("genome", n_tasks=n_tasks, seed=11)
    request = ScheduleRequest(workflow=wf, cluster=cluster_by_name("default"),
                              algorithm="cpack", scale_memory=True,
                              want_mapping=True)
    print(f"workflow: {wf.name}  tasks={wf.n_tasks}  cluster: default")

    # plan once to aim the failure where it hurts: the processor holding
    # the most tasks (a random victim usually hits an idle machine)
    plan = solve(request)
    assert plan.failure is None, plan.failure
    victim = max(plan.mapping.assignments,
                 key=lambda a: len(a.tasks)).processor.name
    print(f"plan    : makespan={plan.makespan:.1f}  "
          f"blocks={plan.n_blocks}  victim={victim}")

    # one storm, replayed identically under every policy: times are
    # fractions of the undisturbed plan's makespan (relative_times)
    models = (
        PoissonArrivals(rate=3.0, count=2, family="genome",
                        n_tasks=max(10, n_tasks // 8), start=0.1),
        ProcessorChurn(fail_times=(0.4,), victims=(victim,)),
        RuntimeInflation(times=(0.55,), sigma=0.25, fraction=1.0),
    )

    print(f"\n{'policy':10s} {'plan':>10s} {'realized':>10s} "
          f"{'degr%':>7s} {'migr':>5s} {'replans':>7s} {'passes':>6s}")
    reports = {}
    for policy in available_policies():
        dynamics = DynamicsSpec(models=models, seed=23, policy=policy)
        result = simulate_request(request, dynamics)
        assert result.failure is None, result.failure
        sim = result.extra
        reports[policy] = sim
        print(f"{policy:10s} {sim['sim_plan_makespan']:10.1f} "
              f"{sim['sim_realized_makespan']:10.1f} "
              f"{sim['sim_degradation_pct']:7.1f} "
              f"{sim['sim_task_migrations']:5d} "
              f"{sim['sim_replans']:7d} {sim['sim_full_passes']:6d}")

    warm = reports["warmstart"]
    static = reports["static"]
    # the warm-start contract: every repair priced through evaluator
    # deltas, never a full bottom-weight pass
    assert warm["sim_full_passes"] == 0
    # priced repairs may not lose to blind ones beyond float noise
    assert warm["sim_realized_makespan"] <= \
        static["sim_realized_makespan"] * (1 + 1e-9)
    print(f"\nwarm-start absorbed the storm at "
          f"{warm['sim_degradation_pct']:.1f}% degradation with "
          f"{warm['sim_full_passes']} full passes "
          f"({warm['sim_task_migrations']} task migrations)")


if __name__ == "__main__":
    main()
