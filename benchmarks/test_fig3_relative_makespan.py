"""Fig. 3: relative makespan of DagHetPart vs DagHetMem.

Left: by workflow type on the default cluster (paper: geometric mean 41%,
i.e. 2.44x better, improving with workflow size). Right: across cluster
sizes 18/36/60 (paper: bigger clusters help more, up to ~5x on big
workflows).
"""

from conftest import bench_kwargs, show

from repro.experiments import figures


def test_fig3_left_relative_makespan_by_type(benchmark):
    result = benchmark.pedantic(
        figures.fig3_left, kwargs=bench_kwargs(), rounds=1, iterations=1)
    show(result, "Fig. 3 (left): relative makespan (%) by workflow type")
    rows = {r["workflow_type"]: r["relative_makespan_pct"] for r in result["rows"]}
    # DagHetPart must beat the baseline overall (paper: 41%)
    assert rows["all"] < 100.0
    # synthetic categories must show a clear win
    for cat in ("small", "mid", "big"):
        if cat in rows:
            assert rows[cat] < 90.0


def test_fig3_right_cluster_sizes(benchmark):
    result = benchmark.pedantic(
        figures.fig3_right, kwargs=bench_kwargs(), rounds=1, iterations=1)
    show(result, "Fig. 3 (right): relative makespan (%) vs cluster size")
    # larger clusters give at least as much improvement on big workflows
    big = {r["n_cpus"]: r["relative_makespan_pct"]
           for r in result["rows"] if r["workflow_type"] == "big"}
    if {18, 60} <= set(big):
        assert big[60] <= big[18] + 5.0  # small tolerance for tiny corpora
