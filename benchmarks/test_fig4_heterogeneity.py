"""Fig. 4: impact of platform heterogeneity (NoHet/LessHet/default/MoreHet).

Paper: relative makespans *grow* with more heterogeneity (the baseline
benefits from the stronger big-memory nodes), yet DagHetPart improves on
the baseline at every level, including the homogeneous cluster.
"""

from conftest import bench_kwargs, show

from repro.experiments import figures


def test_fig4_heterogeneity_levels(benchmark):
    result = benchmark.pedantic(
        figures.fig4, kwargs=bench_kwargs(), rounds=1, iterations=1)
    show(result, "Fig. 4: relative (%) and absolute makespan vs heterogeneity")
    rows = result["rows"]
    levels = {r["heterogeneity"] for r in rows}
    assert levels == {"nohet", "lesshet", "default", "morehet"}
    # improvement over the baseline persists at every heterogeneity level
    # for the synthetic categories (paper Sec. 5.2.3)
    for r in rows:
        if r["workflow_type"] in ("small", "mid", "big"):
            assert r["relative_makespan_pct"] < 100.0 + 1e-6
