"""Shared configuration for the per-figure benchmarks.

Each benchmark regenerates one table or figure of the paper on a reduced
corpus (so the whole suite runs in minutes) and prints the rows it
produced. Environment knobs:

* ``REPRO_FULL=1``   — run the paper's workflow sizes (hours, full shape);
* ``REPRO_SCALE=n``  — divide the paper's sizes by ``n`` instead;
* ``REPRO_BENCH_FAMILIES`` — comma-separated family subset.

The relative-makespan *shapes* these produce are recorded and compared to
the paper in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.core.heuristic import DagHetPartConfig

#: reduced corpus used by default (full corpus via REPRO_FULL)
BENCH_SIZES = {"small": (24, 60), "mid": (120,), "big": (200,)}


def bench_families():
    env = os.environ.get("REPRO_BENCH_FAMILIES")
    if env:
        return tuple(f.strip() for f in env.split(",") if f.strip())
    return ("blast", "genome", "soykb")


def bench_kwargs():
    """Corpus kwargs passed to every figure driver."""
    kwargs = dict(seed=0, families=bench_families(),
                  config=DagHetPartConfig(k_prime_strategy="doubling"))
    if os.environ.get("REPRO_FULL") != "1":
        kwargs["sizes"] = BENCH_SIZES
    return kwargs


@pytest.fixture
def figure_kwargs():
    return bench_kwargs()


def show(result, title, columns=None):
    """Print a figure's rows under the benchmark output."""
    from repro.experiments.report import format_table
    print()
    print(format_table(result["rows"], columns=columns, title=title))
