"""Fig. 7: relative makespan vs interconnect bandwidth (CCR study).

Paper: higher bandwidth lets DagHetPart exploit heterogeneity better; the
effect is strongest for small workflows (~13 percentage points) and
smaller for big ones (~5), with fanned-out families reacting most.
"""

from conftest import bench_kwargs, show

from repro.experiments import figures

BETAS = (0.1, 1.0, 5.0)


def test_fig7_bandwidth_sweep(benchmark):
    result = benchmark.pedantic(
        figures.fig7, kwargs=dict(betas=BETAS, **bench_kwargs()),
        rounds=1, iterations=1)
    show(result, "Fig. 7: relative makespan (%) vs bandwidth")
    # The *relative* series is noisy at reduced corpus scale because the
    # baseline is bandwidth-sensitive too (EXPERIMENTS.md discusses this);
    # the robust form of the paper's claim is that DagHetPart's absolute
    # makespans improve monotonically-ish with bandwidth.
    from repro.experiments.metrics import aggregate_by
    part = [r for r in result["records"]
            if r.algorithm == "DagHetPart" and r.success]
    by_beta = aggregate_by(part, key=lambda r: (r.category, r.bandwidth),
                           value=lambda r: r.makespan)
    for cat in ("small", "mid", "big"):
        lo, hi = (cat, min(BETAS)), (cat, max(BETAS))
        if lo in by_beta and hi in by_beta:
            assert by_beta[hi] <= by_beta[lo] * 1.02, cat
