"""Ablation: Step 3's critical-path-avoiding merge preference.

The paper prefers merging unassigned blocks into vertices *off* the
critical path; this bench measures the makespan effect of disabling the
preference (merging into the best neighbour regardless).
"""

import math

from repro.core.heuristic import DagHetPartConfig, dag_het_part
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.platform.presets import small_cluster

FAMS = ("genome", "epigenomics", "montage")


def _geomean_makespan(prefer_off_cp: bool) -> float:
    values = []
    for fam in FAMS:
        wf = generate_workflow(fam, 120, seed=8)
        cluster = scaled_cluster_for(wf, small_cluster())
        cfg = DagHetPartConfig(k_prime_strategy="doubling",
                               prefer_off_critical_path=prefer_off_cp)
        try:
            values.append(dag_het_part(wf, cluster, cfg).makespan())
        except Exception:
            continue
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_ablation_merge_policy(benchmark):
    with_pref = benchmark.pedantic(
        _geomean_makespan, args=(True,), rounds=1, iterations=1)
    without_pref = _geomean_makespan(False)
    print(f"\nStep-3 merge policy ablation (geomean makespan):")
    print(f"  prefer off-critical-path: {with_pref:9.1f}")
    print(f"  any assigned neighbour  : {without_pref:9.1f}")
    # both must produce valid results; the preference should not hurt badly
    assert with_pref <= without_pref * 1.25
