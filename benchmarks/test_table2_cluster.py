"""Table 2: the default cluster configuration."""

from conftest import show

from repro.experiments import figures


def test_table2_default_cluster(benchmark):
    result = benchmark.pedantic(figures.table2, rounds=1, iterations=1)
    show(result, "Table 2: default cluster (6 nodes of each kind)")
    rows = result["rows"]
    assert [r["processor"] for r in rows] == ["local", "A1", "A2", "N1", "N2", "C2"]
    assert rows[-1]["memory_gb"] == 192.0
