"""Ablation: the memDag traversal engine composition.

Compares block-requirement quality (peak memory) and cost of the greedy
best-first engine alone against the full engine (best-first + layered +
series-parallel optimal merge). Tighter peaks let blocks fit smaller
processors, which is what Step 2 feeds on.
"""

import time

from repro.generators.families import generate_workflow
from repro.memdag.traversal import memdag_traversal


def _total_peak(methods):
    total = 0.0
    for fam in ("blast", "bwa", "epigenomics", "seismology", "genome"):
        wf = generate_workflow(fam, 200, seed=12)
        total += memdag_traversal(wf, methods=methods).peak
    return total


def test_ablation_traversal_engines(benchmark):
    full = benchmark.pedantic(
        _total_peak, args=(("best_first", "layered", "sp"),),
        rounds=1, iterations=1)
    start = time.perf_counter()
    greedy_only = _total_peak(("best_first",))
    greedy_time = time.perf_counter() - start
    print("\nmemDag engine ablation (sum of whole-graph peaks, 5 families):")
    print(f"  best_first + layered + sp : {full:12.1f}")
    print(f"  best_first only           : {greedy_only:12.1f} "
          f"({greedy_time:.2f}s)")
    # the full engine can only improve on any single engine
    assert full <= greedy_only + 1e-6
