"""Fig. 5: relative makespan per workflow family as size grows.

Paper: the fanned-out families (BWA, BLAST, Seismology) are consistently
easy (low relative makespan); SoyKB and Epigenomics are hardest but
improve with size as parallelism appears.
"""

from conftest import bench_kwargs, show

from repro.experiments import figures


def test_fig5_family_series(benchmark):
    kwargs = bench_kwargs()
    kwargs["families"] = ("blast", "bwa", "soykb", "epigenomics")
    result = benchmark.pedantic(
        figures.fig5, kwargs=kwargs, rounds=1, iterations=1)
    show(result, "Fig. 5: relative makespan (%) per family vs size")
    by_family = {}
    for r in result["rows"]:
        by_family.setdefault(r["family"], []).append(r["relative_makespan_pct"])
    import math
    geo = {f: math.exp(sum(math.log(max(v, 1e-9)) for v in vals) / len(vals))
           for f, vals in by_family.items()}
    # fanned-out families beat the chain-like ones (paper Sec. 5.2.5)
    assert geo["blast"] < geo["soykb"]
    assert geo["bwa"] < geo["epigenomics"]
