"""Table 4: average relative and absolute running times per workflow set."""

from conftest import bench_kwargs, show

from repro.experiments import figures


def test_table4_runtime_summary(benchmark):
    result = benchmark.pedantic(
        figures.table4, kwargs=bench_kwargs(), rounds=1, iterations=1)
    show(result, "Table 4: runtimes of DagHetPart (relative to DagHetMem)")
    rows = {r["workflow_set"]: r for r in result["rows"]}
    assert set(rows) <= {"real", "small", "mid", "big"}
    for r in rows.values():
        assert r["avg_absolute_runtime_sec"] >= 0.0
    # the paper's trend: relative runtime falls as workflows grow
    if "real" in rows and "big" in rows:
        assert rows["big"]["avg_relative_runtime"] <= \
            rows["real"]["avg_relative_runtime"]
