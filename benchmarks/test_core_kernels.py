"""Benchmark: the vectorized array kernels vs the dict reference kernels.

Runs the ``repro profile`` suite (:mod:`repro.core.profile`) and enforces
the PR's perf-trajectory contract:

* **equivalence** — every case's outputs are bit-for-bit identical
  across kernels (the same check the differential suite makes on small
  random DAGs, here at benchmark scale);
* **absolute floor** — the gated headline cases (full bottom-weight
  passes on the fan and wide shapes) clear :data:`SPEEDUP_FLOOR` (5x);
* **no regression** — when the committed ``BENCH_core.json`` baseline is
  present at the repo root, every case keeps at least half its committed
  speedup (the same gate CI runs via ``repro profile --check``).

Environment knobs:

* ``REPRO_FULL=1``       — run at the acceptance scale (n=100000)
  instead of the reduced default (n=20000);
* ``REPRO_BENCH_OUT=f``  — also write the JSON report to ``f`` (use this
  to refresh the committed baseline from a quiet machine).
"""

from __future__ import annotations

import os

import pytest

from repro.core.profile import (
    DEFAULT_N,
    SPEEDUP_FLOOR,
    compare_to_baseline,
    load_report,
    run_profile,
    write_report,
)

BASELINE = os.path.join(os.path.dirname(__file__), "..", "BENCH_core.json")

#: reduced scale used by default (acceptance scale via REPRO_FULL)
BENCH_N = 20_000


@pytest.fixture(scope="module")
def report():
    n = DEFAULT_N if os.environ.get("REPRO_FULL") == "1" else BENCH_N
    rep = run_profile(n=n, repeats=3)
    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        write_report(rep, out)
    print(f"\nkernel profile (n={n}):")
    for name, case in rep["cases"].items():
        print(f"  {name:<22} reference {case['reference_s']*1e3:9.2f}ms  "
              f"array {case['array_s']*1e3:8.2f}ms  "
              f"speedup {case['speedup']:6.1f}x  equal={case['equal']}")
    return rep


def test_kernels_bit_for_bit_equal(report):
    """Every case produced identical outputs from both kernels."""
    unequal = [n for n, c in report["cases"].items() if not c["equal"]]
    assert not unequal, f"kernels disagree on: {unequal}"


def test_gated_cases_clear_absolute_floor(report):
    """The headline full-pass cases are >= 5x over the reference kernel."""
    for name, case in report["cases"].items():
        if case["gated"]:
            assert case["speedup"] >= SPEEDUP_FLOOR, (
                f"{name}: {case['speedup']:.2f}x below the "
                f"{SPEEDUP_FLOOR:g}x floor")


def test_no_regression_vs_committed_baseline(report):
    """Same gate as ``repro profile --check BENCH_core.json`` in CI."""
    if not os.path.exists(BASELINE):
        pytest.skip("no committed BENCH_core.json baseline")
    problems = compare_to_baseline(report, load_report(BASELINE))
    assert not problems, "; ".join(problems)
