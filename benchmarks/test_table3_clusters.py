"""Table 3: the MoreHet and LessHet cluster configurations."""

from conftest import show

from repro.experiments import figures


def test_table3_heterogeneity_variants(benchmark):
    result = benchmark.pedantic(figures.table3, rounds=1, iterations=1)
    show(result, "Table 3: clusters with more / less heterogeneity")
    rows = result["rows"]
    assert len(rows) == 6
    # LessHet keeps the 192 top memory so big tasks still fit
    assert rows[-1]["memory'"] == 192.0
    # MoreHet doubles the big half: C2* has 384
    assert rows[-1]["memory*"] == 384.0
