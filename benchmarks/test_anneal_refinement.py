"""Benchmark: the refinement suite on the (tiny) paper grid.

Three contracts are enforced, matching the acceptance criteria of the
local-search suite:

* **determinism + monotonicity** — with the same seed, ``anneal``
  reproduces its makespan bit-for-bit and never returns a worse one than
  its ``dag_het_part_sweep`` seed mapping;
* **delta-only pricing** — the instrumented full bottom-weight counter
  records *zero* passes during refinement (every Metropolis trial is
  priced by the incremental evaluator);
* **portfolio argmin** — on the tiny grid the ``portfolio``
  meta-scheduler returns exactly the per-request minimum of its member
  algorithms.

The printed table reports seed vs refined makespans per instance and the
``refinement_gain`` experiment rows (geometric-mean anneal/DagHetPart
ratios per workflow type).
"""

from __future__ import annotations

import importlib

from conftest import BENCH_SIZES, bench_families, show

from repro.api import AnnealConfig, PortfolioConfig, ScheduleRequest, solve
from repro.core.anneal import anneal_refine
from repro.core.evaluator import MakespanEvaluator
from repro.core.heuristic import dag_het_part_sweep
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.memdag.requirement import RequirementCache
from repro.platform.presets import default_cluster

makespan_mod = importlib.import_module("repro.core.makespan")

ANNEAL = AnnealConfig(seed=0, iterations=800, restarts=2)


def _seeded_state(family: str, n: int):
    """The quotient the annealer starts from: best DagHetPart sweep mapping."""
    wf = generate_workflow(family, n, seed=6)
    cluster = scaled_cluster_for(wf, default_cluster())
    cache = RequirementCache(wf)
    outcome = dag_het_part_sweep(wf, cluster, cache=cache)
    q = outcome.mapping.to_quotient()
    return q, cluster, cache, outcome.mapping.makespan()


def test_refinement_zero_full_passes(benchmark):
    """Seed vs refined makespan per instance; zero full passes while refining."""
    rows = []

    def run():
        rows.clear()
        total_passes = 0
        for family in bench_families():
            q, cluster, cache, seed_mu = _seeded_state(family, 120)
            evaluator = MakespanEvaluator(q, cluster)  # init pass, pre-reset
            makespan_mod.reset_full_pass_counter()
            stats = anneal_refine(q, cluster, cache, config=ANNEAL,
                                  evaluator=evaluator)
            total_passes += makespan_mod.reset_full_pass_counter()
            rows.append({
                "instance": f"{family}-120",
                "seed_makespan": seed_mu,
                "refined_makespan": stats.final_makespan,
                "gain_pct": 100.0 * (1 - stats.final_makespan / seed_mu),
                "trials": stats.trials,
                "accepted": stats.accepted,
            })
        return total_passes

    passes = benchmark.pedantic(run, rounds=1, iterations=1)
    show({"rows": rows}, "refinement: seed vs annealed makespans")
    print(f"  full bottom-weight passes during refinement: {passes}")
    assert passes == 0  # every trial priced by the delta engine
    for row in rows:
        assert row["refined_makespan"] <= row["seed_makespan"]


def test_refinement_deterministic_per_seed():
    """The same AnnealConfig.seed reproduces the refinement bit-for-bit."""
    for family in bench_families():
        outcomes = []
        for _ in range(2):
            q, cluster, cache, _ = _seeded_state(family, 120)
            stats = anneal_refine(q, cluster, cache, config=ANNEAL)
            outcomes.append((stats.final_makespan, stats.trials,
                             stats.accepted, stats.improved))
        assert outcomes[0] == outcomes[1]


def test_refinement_gain_table(benchmark):
    """The refinement_gain experiment over the reduced corpus."""
    from repro.experiments import figures
    from repro.core.heuristic import DagHetPartConfig

    result = benchmark.pedantic(
        lambda: figures.refinement_gain(
            seed=0, families=bench_families(), sizes=BENCH_SIZES,
            config=DagHetPartConfig(k_prime_strategy="doubling"),
            anneal_config=AnnealConfig(seed=0, iterations=400,
                                       k_prime_strategy="doubling")),
        rounds=1, iterations=1)
    show(result, "refinement_gain (anneal vs DagHetPart seed, %)")
    assert result["rows"]
    for row in result["rows"]:
        # never worse than the seed: every geometric mean is <= 100%
        assert row["anneal_vs_daghetpart_pct"] <= 100.0 + 1e-9


def test_portfolio_argmin_on_tiny_grid(benchmark):
    """portfolio == per-request argmin of its members across the grid."""
    members = ("daghetmem", "daghetpart")
    grid = [(family, n) for family in bench_families()
            for n in BENCH_SIZES["small"]]

    def run():
        mismatches = []
        for family, n in grid:
            wf = generate_workflow(family, n, seed=6)
            cluster = scaled_cluster_for(wf, default_cluster())
            individual = {
                m: solve(ScheduleRequest(workflow=wf, cluster=cluster,
                                         algorithm=m)).makespan
                for m in members}
            port = solve(ScheduleRequest(
                workflow=wf, cluster=cluster, algorithm="portfolio",
                config=PortfolioConfig(algorithms=members)))
            best = min(individual.values())
            if port.makespan != best:
                mismatches.append((family, n, port.makespan, individual))
        return mismatches

    mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nportfolio argmin over {len(grid)} requests "
          f"x {len(members)} members: {len(mismatches)} mismatches")
    assert mismatches == []
