"""Fig. 6: absolute DagHetPart makespans per family vs size.

Paper: roughly linear growth in workflow size for most families.
"""

from conftest import bench_kwargs, show

from repro.experiments import figures


def test_fig6_absolute_makespans(benchmark):
    result = benchmark.pedantic(
        figures.fig6, kwargs=bench_kwargs(), rounds=1, iterations=1)
    show(result, "Fig. 6: absolute DagHetPart makespan per family vs size")
    # makespans grow with workflow size within each family
    by_family = {}
    for r in result["rows"]:
        by_family.setdefault(r["family"], []).append((r["n_tasks"], r["makespan"]))
    for family, series in by_family.items():
        series.sort()
        if len(series) >= 2:
            assert series[-1][1] > series[0][1], family
