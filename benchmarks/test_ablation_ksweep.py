"""Ablation: k' sweep granularity (DESIGN.md Section 5).

The paper sweeps every k' in 1..k; our default uses a doubling subset on
large clusters. This bench quantifies what the subset costs in makespan
and saves in runtime, and — via the surfaced sweep trace — reports the
winning k' of each strategy without any re-running.
"""

import time

from repro.core.heuristic import DagHetPartConfig, dag_het_part_sweep
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster


def _run(strategy):
    wf = generate_workflow("genome", 150, seed=4)
    cluster = scaled_cluster_for(wf, default_cluster())
    start = time.perf_counter()
    outcome = dag_het_part_sweep(wf, cluster,
                                 DagHetPartConfig(k_prime_strategy=strategy))
    return outcome, time.perf_counter() - start


def test_ablation_k_sweep(benchmark):
    (full, full_t) = benchmark.pedantic(
        _run, args=("all",), rounds=1, iterations=1)
    doubling, doubling_t = _run("doubling")
    full_ms = full.mapping.makespan()
    doubling_ms = doubling.mapping.makespan()
    print(f"\nk' sweep ablation (genome-150, default cluster):")
    print(f"  all      : makespan={full_ms:9.1f}  time={full_t:6.2f}s  "
          f"k'={full.k_prime}  ({len(full.sweep)} candidates)")
    print(f"  doubling : makespan={doubling_ms:9.1f}  time={doubling_t:6.2f}s  "
          f"k'={doubling.k_prime}  ({len(doubling.sweep)} candidates)")
    # the full sweep can only be better or equal in makespan
    assert full_ms <= doubling_ms + 1e-9
    # and the doubling subset must be meaningfully cheaper
    assert doubling_t < full_t
    # the trace is consistent: the winner realizes the best "ok" makespan
    for outcome in (full, doubling):
        ok = {p.k_prime: p.makespan for p in outcome.sweep
              if p.status == "ok"}
        assert outcome.k_prime in ok
        assert ok[outcome.k_prime] == min(ok.values())
        assert abs(outcome.mapping.makespan() - ok[outcome.k_prime]) <= 1e-6
