"""Benchmark: the incremental makespan engine vs full recomputation.

Two claims are enforced, matching the evaluator's contract:

* **equivalence** — DagHetPart with the evaluator returns bit-for-bit
  the same makespans as the full-recompute implementation across the
  fig3 corpus (reduced sizes by default, paper sizes via ``REPRO_FULL``);
* **work reduction** — during the Step-4 swap search on swap-heavy
  instances, the instrumented full-pass counter drops by at least 5x
  (in practice: two orders of magnitude — the delta path performs no
  full bottom-weight passes at all after initialization).
"""

from __future__ import annotations

import importlib
from dataclasses import asdict

from conftest import bench_families, BENCH_SIZES

from repro.core.assignment import biggest_assign
from repro.core.evaluator import MakespanEvaluator
from repro.core.heuristic import DagHetPartConfig, dag_het_part
from repro.core.merging import merge_unassigned_to_assigned
from repro.core.quotient import QuotientGraph
from repro.core.swaps import improve_by_swaps
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.memdag.requirement import RequirementCache
from repro.partition.api import acyclic_partition
from repro.platform.presets import default_cluster

makespan_mod = importlib.import_module("repro.core.makespan")


def _swap_ready_quotient(family: str, n: int, k_prime: int):
    """Deterministically rebuild the state improve_by_swaps starts from."""
    wf = generate_workflow(family, n, seed=6)
    cluster = scaled_cluster_for(wf, default_cluster())
    cache = RequirementCache(wf)
    partition = acyclic_partition(wf, k_prime)
    state = biggest_assign(wf, cluster, partition, cache=cache)
    q = QuotientGraph.from_partition(
        wf, [state.blocks[b] for b in state.blocks],
        [state.assigned.get(b) for b in state.blocks])
    assert q.is_acyclic()
    assert merge_unassigned_to_assigned(q, cluster, cache)
    return q, cluster, cache


def test_swap_search_full_pass_reduction(benchmark):
    """>= 5x fewer full bottom-weight passes in improve_by_swaps."""
    total_full = 0
    total_delta = 0
    swaps_full = []
    swaps_delta = []

    def run_delta():
        count = 0
        swaps_delta.clear()
        for family in bench_families():
            q, cluster, cache = _swap_ready_quotient(family, 120, 12)
            ev = MakespanEvaluator(q, cluster)  # one full pass, before reset
            makespan_mod.reset_full_pass_counter()
            swaps_delta.append(improve_by_swaps(q, cluster, cache, evaluator=ev))
            count += makespan_mod.reset_full_pass_counter()
        return count

    total_delta = benchmark.pedantic(run_delta, rounds=1, iterations=1)
    for family in bench_families():
        q, cluster, cache = _swap_ready_quotient(family, 120, 12)
        makespan_mod.reset_full_pass_counter()
        swaps_full.append(improve_by_swaps(q, cluster, cache))
        total_full += makespan_mod.reset_full_pass_counter()

    print(f"\nfull bottom-weight passes during improve_by_swaps "
          f"({len(swaps_full)} instances):")
    print(f"  full recompute : {total_full:6d} passes, swaps {swaps_full}")
    print(f"  delta engine   : {total_delta:6d} passes, swaps {swaps_delta}")
    assert swaps_delta == swaps_full  # identical search trajectory
    assert total_full >= 5 * max(1, total_delta)


def test_fig3_corpus_bit_for_bit_equivalence():
    """Evaluator on vs off: identical records over the fig3 corpus."""
    from repro.experiments import figures

    kwargs = dict(seed=0, families=bench_families(), sizes=BENCH_SIZES)

    def strip(records):
        return [{k: v for k, v in asdict(r).items() if k != "runtime"}
                for r in records]

    on = figures.fig3_left(config=DagHetPartConfig(
        k_prime_strategy="doubling", use_evaluator=True), **kwargs)
    off = figures.fig3_left(config=DagHetPartConfig(
        k_prime_strategy="doubling", use_evaluator=False), **kwargs)
    assert strip(on["records"]) == strip(off["records"])
    assert on["rows"] == off["rows"]


def test_single_instance_speed(benchmark):
    """End-to-end DagHetPart with the evaluator (tracked for regressions)."""
    wf = generate_workflow("genome", 160, seed=6)
    cluster = scaled_cluster_for(wf, default_cluster())
    cfg = DagHetPartConfig(k_prime_strategy="doubling")
    result = benchmark.pedantic(
        lambda: dag_het_part(wf, cluster, cfg).makespan(),
        rounds=1, iterations=1)
    assert result > 0
