"""Section 5.2.2: scheduling success counts per cluster size.

Paper: the large cluster schedules everything; the default misses two
workflows; the small cluster misses several for both algorithms.
"""

from conftest import bench_kwargs, show

from repro.experiments import figures


def test_success_counts(benchmark):
    result = benchmark.pedantic(
        figures.success_counts_experiment, kwargs=bench_kwargs(),
        rounds=1, iterations=1)
    show(result, "Sec. 5.2.2: scheduled workflows per cluster size")
    rows = result["rows"]
    # success never decreases when the cluster grows (per type+algorithm)
    by_key = {}
    order = {"small-18": 0, "default-36": 1, "large-60": 2}
    for r in rows:
        key = (r["workflow_type"], r["algorithm"])
        by_key.setdefault(key, {})[order[r["cluster"]]] = (
            r["scheduled"], r["total"])
    for key, series in by_key.items():
        if 0 in series and 2 in series:
            small_rate = series[0][0] / series[0][1]
            large_rate = series[2][0] / series[2][1]
            assert large_rate >= small_rate - 1e-9, key
