"""Fig. 9: absolute running time of DagHetPart by workflow type.

Paper: sub-second for real workflows, seconds for small, minutes for
mid/big (log-scale figure). At the reduced default scale everything is
seconds; the ordering real < small < mid < big must hold regardless.
"""

from conftest import bench_kwargs, show

from repro.experiments import figures


def test_fig9_absolute_runtime(benchmark):
    result = benchmark.pedantic(
        figures.fig9, kwargs=bench_kwargs(), rounds=1, iterations=1)
    show(result, "Fig. 9: absolute DagHetPart runtime (seconds)")
    by_cat = {}
    for r in result["rows"]:
        by_cat.setdefault(r["workflow_type"], []).append(r["runtime_sec"])
    means = {cat: sum(v) / len(v) for cat, v in by_cat.items()}
    # scheduling time grows with workflow size category
    if "real" in means and "big" in means:
        assert means["real"] <= means["big"]
