"""Benchmark + guard: the batch façade's per-request overhead.

Two claims are enforced:

* **no fingerprinting without a cache** — ``iter_solve_batch`` hashes the
  full workflow and cluster once per request *only* when a cache is
  attached; a cache-less sweep must never pay for it (the guard counts
  ``request_fingerprint`` calls and requires exactly zero);
* **façade overhead is bounded** — the serial backend's envelope
  machinery (routing, window bookkeeping, progress hooks) adds no more
  than a small constant factor on top of raw ``solve`` calls for tiny
  instances, where overhead would dominate if it existed.
"""

from __future__ import annotations

import repro.api.cache as cache_module
from repro.api import ResultCache, ScheduleRequest, iter_solve_batch, solve
from repro.core.heuristic import DagHetPartConfig
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster

FAST_CFG = DagHetPartConfig(k_prime_values=(1,))


def _requests(n: int):
    wf = generate_workflow("blast", 24, seed=5)
    cluster = default_cluster()
    return [ScheduleRequest(workflow=wf, cluster=cluster,
                            algorithm="daghetpart", config=FAST_CFG,
                            scale_memory=True, want_mapping=False,
                            tags={"i": i})
            for i in range(n)]


def test_cacheless_batch_never_fingerprints(monkeypatch):
    """The guard: zero fingerprint computations on a cache-less run."""
    calls = []
    real = cache_module.request_fingerprint
    monkeypatch.setattr(cache_module, "request_fingerprint",
                        lambda request: calls.append(request) or real(request))
    results = list(iter_solve_batch(_requests(8)))
    assert len(results) == 8 and all(r.success for r in results)
    assert calls == []  # fingerprinting is pure overhead without a cache


def test_cached_batch_fingerprints_once_per_request(monkeypatch, tmp_path):
    """The counterpart: with a cache, exactly one fingerprint per request."""
    calls = []
    real = cache_module.request_fingerprint
    monkeypatch.setattr(cache_module, "request_fingerprint",
                        lambda request: calls.append(request) or real(request))
    with ResultCache(str(tmp_path / "c")) as cache:
        list(iter_solve_batch(_requests(8), cache=cache))
    assert len(calls) == 8


def test_facade_overhead_bounded(benchmark):
    """Streaming 32 tiny solves through the façade vs raw solve calls.

    The timed assertion is the actual guard (it runs even under
    ``--benchmark-disable``): on instances small enough that envelope
    machinery would dominate, the serial façade must stay within a small
    multiple of bare ``solve`` calls — an accidental re-fingerprinting
    or per-request pool spin-up shows up here as an order of magnitude.
    """
    import time

    requests = _requests(32)
    start = time.perf_counter()
    baseline = [solve(r) for r in requests]
    raw_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    streamed = list(iter_solve_batch(requests))
    facade_elapsed = time.perf_counter() - start

    assert [r.makespan for r in streamed] == [r.makespan for r in baseline]
    # generous slack (3x + 250ms) so scheduler noise never flakes CI,
    # while catching any real per-request regression
    assert facade_elapsed <= 3.0 * raw_elapsed + 0.25, (
        f"façade took {facade_elapsed:.3f}s vs {raw_elapsed:.3f}s raw")

    results = benchmark(lambda: list(iter_solve_batch(requests)))
    assert [r.makespan for r in results] == [r.makespan for r in baseline]
