"""Section 5.2.4: four-times-bigger computational demands.

Paper: scaling every w_u by 4 leaves the relative makespans "virtually
identical" (e.g. real workflows 62.8% vs 61.73%).
"""

from conftest import bench_kwargs, show

from repro.experiments import figures


def test_demand_4x_invariance(benchmark):
    result = benchmark.pedantic(
        figures.demand4x, kwargs=bench_kwargs(), rounds=1, iterations=1)
    show(result, "Sec. 5.2.4: relative makespan (%), 1x vs 4x workloads")
    import math
    for r in result["rows"]:
        a, b = r["relative_makespan_pct_1x"], r["relative_makespan_pct_4x"]
        if math.isnan(a) or math.isnan(b):
            continue
        # "virtually identical": within 15 percentage points on tiny corpora
        assert abs(a - b) < 15.0, r
