"""Ablation: Step 4 (swaps and idle-processor moves).

Quantifies how much of DagHetPart's improvement comes from the local
search versus Steps 1-3 alone.
"""

import math

from repro.core.heuristic import DagHetPartConfig, dag_het_part
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster

FAMS = ("blast", "genome", "soykb")


def _geomean(enable_swaps, enable_idle):
    values = []
    for fam in FAMS:
        wf = generate_workflow(fam, 120, seed=6)
        cluster = scaled_cluster_for(wf, default_cluster())
        cfg = DagHetPartConfig(k_prime_strategy="doubling",
                               enable_swaps=enable_swaps,
                               enable_idle_moves=enable_idle)
        values.append(dag_het_part(wf, cluster, cfg).makespan())
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_ablation_step4(benchmark):
    full = benchmark.pedantic(_geomean, args=(True, True), rounds=1, iterations=1)
    no_swaps = _geomean(False, True)
    no_idle = _geomean(True, False)
    nothing = _geomean(False, False)
    print("\nStep-4 ablation (geomean makespan, 3 families @120 tasks):")
    print(f"  swaps + idle moves : {full:9.1f}")
    print(f"  idle moves only    : {no_swaps:9.1f}")
    print(f"  swaps only         : {no_idle:9.1f}")
    print(f"  neither            : {nothing:9.1f}")
    # Step 4 is monotone: the full configuration is never worse
    assert full <= nothing + 1e-9
    assert full <= no_swaps + 1e-9
    assert full <= no_idle + 1e-9
