"""Fig. 8: running time of DagHetPart relative to DagHetMem.

Paper (Table 4): ~406x on tiny real workflows (both sub-second), 1.63x on
small, ~1x on middle, 0.85x on big — the baseline's whole-graph optimal
traversal dominates at scale while DagHetPart traverses only blocks.
"""

from conftest import bench_kwargs, show

from repro.experiments import figures


def test_fig8_relative_runtime(benchmark):
    result = benchmark.pedantic(
        figures.fig8, kwargs=bench_kwargs(), rounds=1, iterations=1)
    show(result, "Fig. 8: DagHetPart runtime / DagHetMem runtime per workflow")
    assert result["rows"]
    for row in result["rows"]:
        assert row["relative_runtime"] > 0
