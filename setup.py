from setuptools import find_packages, setup

setup(
    name="repro",
    description="Memory-constrained workflow mapping onto heterogeneous "
                "platforms (ICPP 2024 reproduction)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # numpy backs the array kernels and the compiled CSR views; the
    # pure-python reference kernels (REPRO_KERNEL=reference) cover every
    # feature without it, but the default `auto` selection expects it
    install_requires=["numpy"],
)
