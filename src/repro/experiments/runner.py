"""Run DagHetMem / DagHetPart over instances and record everything.

One :class:`RunRecord` per (instance, algorithm). Failures to schedule are
legitimate outcomes (Section 5.2.2 counts them), so they are recorded, not
raised.

:func:`run_corpus` can fan instances out over worker processes
(``parallel=N``); records are merged back deterministically by instance
name, so a parallel run produces the same record list as a serial one up
to the measured ``runtime`` fields.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.baseline import dag_het_mem
from repro.core.heuristic import DagHetPartConfig, dag_het_part
from repro.experiments.instances import Instance, scaled_cluster_for
from repro.platform.cluster import Cluster
from repro.utils.errors import NoFeasibleMappingError, ReproError

ALGORITHMS = ("DagHetMem", "DagHetPart")

#: environment default for ``run_corpus(parallel=None)``; 0 = serial
PARALLEL_ENV = "REPRO_PARALLEL"


@dataclass(frozen=True)
class RunRecord:
    """Result of one algorithm on one instance."""

    instance: str
    family: str
    category: str
    n_tasks: int
    algorithm: str
    cluster: str
    bandwidth: float
    success: bool
    makespan: float  # inf when unsuccessful
    runtime: float  # wall-clock seconds of the scheduling algorithm
    n_blocks: int


def run_instance(inst: Instance, cluster: Cluster,
                 config: Optional[DagHetPartConfig] = None,
                 algorithms: Sequence[str] = ALGORITHMS,
                 validate: bool = False,
                 scale_memory: bool = True) -> List[RunRecord]:
    """Run the requested algorithms on one instance.

    ``scale_memory`` applies the paper's proportional memory scaling so the
    largest task fits somewhere (synthetic corpus rule).
    """
    cl = scaled_cluster_for(inst.workflow, cluster) if scale_memory else cluster
    records: List[RunRecord] = []
    for algorithm in algorithms:
        start = time.perf_counter()
        mapping = None
        try:
            if algorithm == "DagHetMem":
                mapping = dag_het_mem(inst.workflow, cl)
            elif algorithm == "DagHetPart":
                mapping = dag_het_part(inst.workflow, cl, config=config)
            else:
                raise ValueError(f"unknown algorithm {algorithm!r}")
        except (NoFeasibleMappingError, ReproError):
            mapping = None
        elapsed = time.perf_counter() - start
        if mapping is not None and validate:
            mapping.validate()
        records.append(RunRecord(
            instance=inst.name,
            family=inst.family,
            category=inst.category,
            n_tasks=inst.n_tasks,
            algorithm=algorithm,
            cluster=cl.name,
            bandwidth=cl.bandwidth,
            success=mapping is not None,
            makespan=mapping.makespan() if mapping is not None else float("inf"),
            runtime=elapsed,
            n_blocks=mapping.n_blocks if mapping is not None else 0,
        ))
    return records


def _worker(payload: Tuple) -> Tuple[int, str, List[RunRecord]]:
    """Top-level worker (must be picklable): one instance, all algorithms."""
    index, inst, cluster, config, algorithms, validate = payload
    return index, inst.name, run_instance(
        inst, cluster, config=config, algorithms=algorithms, validate=validate)


def resolve_parallel(parallel: Optional[int]) -> int:
    """Normalize the ``parallel`` knob to a worker count (0/1 = serial).

    ``None`` reads :data:`PARALLEL_ENV`; negative values mean "all
    available CPUs".
    """
    if parallel is None:
        try:
            parallel = int(os.environ.get(PARALLEL_ENV, "0"))
        except ValueError:
            parallel = 0
    if parallel < 0:
        parallel = os.cpu_count() or 1
    return parallel


def run_corpus(instances: Sequence[Instance], cluster: Cluster,
               config: Optional[DagHetPartConfig] = None,
               algorithms: Sequence[str] = ALGORITHMS,
               validate: bool = False,
               progress: Optional[Callable[[str], None]] = None,
               parallel: Optional[int] = None) -> List[RunRecord]:
    """Run all instances; returns the flat record list.

    ``parallel`` > 1 distributes instances over that many worker
    processes (``None`` consults the ``REPRO_PARALLEL`` environment
    variable, ``-1`` uses every CPU). Records are merged deterministically
    by instance name into the input instance order, so apart from the
    measured ``runtime`` fields the output is identical to a serial run.
    """
    workers = resolve_parallel(parallel)
    if workers > 1 and len(instances) > 1:
        return _run_corpus_parallel(instances, cluster, config, algorithms,
                                    validate, progress, workers)
    records: List[RunRecord] = []
    for inst in instances:
        if progress is not None:
            progress(f"running {inst.name} ({inst.n_tasks} tasks) on {cluster.name}")
        records.extend(run_instance(inst, cluster, config=config,
                                    algorithms=algorithms, validate=validate))
    return records


def _run_corpus_parallel(instances: Sequence[Instance], cluster: Cluster,
                         config: Optional[DagHetPartConfig],
                         algorithms: Sequence[str], validate: bool,
                         progress: Optional[Callable[[str], None]],
                         workers: int) -> List[RunRecord]:
    import multiprocessing

    workers = min(workers, len(instances))
    payloads = [(i, inst, cluster, config, tuple(algorithms), validate)
                for i, inst in enumerate(instances)]
    # fork shares the already-built corpus with the workers; fall back to
    # the default start method where fork is unavailable
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    by_key = {}
    with ctx.Pool(processes=workers) as pool:
        for index, name, records in pool.imap_unordered(_worker, payloads):
            if progress is not None:
                progress(f"finished {name} on {cluster.name} "
                         f"({len(by_key) + 1}/{len(instances)})")
            by_key[(index, name)] = records
    merged: List[RunRecord] = []
    for key in sorted(by_key):
        merged.extend(by_key[key])
    return merged
