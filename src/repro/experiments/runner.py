"""Run DagHetMem / DagHetPart over instances and record everything.

One :class:`RunRecord` per (instance, algorithm). Failures to schedule are
legitimate outcomes (Section 5.2.2 counts them), so they are recorded, not
raised.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.baseline import dag_het_mem
from repro.core.heuristic import DagHetPartConfig, dag_het_part
from repro.experiments.instances import Instance, scaled_cluster_for
from repro.platform.cluster import Cluster
from repro.utils.errors import NoFeasibleMappingError, ReproError

ALGORITHMS = ("DagHetMem", "DagHetPart")


@dataclass(frozen=True)
class RunRecord:
    """Result of one algorithm on one instance."""

    instance: str
    family: str
    category: str
    n_tasks: int
    algorithm: str
    cluster: str
    bandwidth: float
    success: bool
    makespan: float  # inf when unsuccessful
    runtime: float  # wall-clock seconds of the scheduling algorithm
    n_blocks: int


def run_instance(inst: Instance, cluster: Cluster,
                 config: Optional[DagHetPartConfig] = None,
                 algorithms: Sequence[str] = ALGORITHMS,
                 validate: bool = False,
                 scale_memory: bool = True) -> List[RunRecord]:
    """Run the requested algorithms on one instance.

    ``scale_memory`` applies the paper's proportional memory scaling so the
    largest task fits somewhere (synthetic corpus rule).
    """
    cl = scaled_cluster_for(inst.workflow, cluster) if scale_memory else cluster
    records: List[RunRecord] = []
    for algorithm in algorithms:
        start = time.perf_counter()
        mapping = None
        try:
            if algorithm == "DagHetMem":
                mapping = dag_het_mem(inst.workflow, cl)
            elif algorithm == "DagHetPart":
                mapping = dag_het_part(inst.workflow, cl, config=config)
            else:
                raise ValueError(f"unknown algorithm {algorithm!r}")
        except (NoFeasibleMappingError, ReproError):
            mapping = None
        elapsed = time.perf_counter() - start
        if mapping is not None and validate:
            mapping.validate()
        records.append(RunRecord(
            instance=inst.name,
            family=inst.family,
            category=inst.category,
            n_tasks=inst.n_tasks,
            algorithm=algorithm,
            cluster=cl.name,
            bandwidth=cl.bandwidth,
            success=mapping is not None,
            makespan=mapping.makespan() if mapping is not None else float("inf"),
            runtime=elapsed,
            n_blocks=mapping.n_blocks if mapping is not None else 0,
        ))
    return records


def run_corpus(instances: Sequence[Instance], cluster: Cluster,
               config: Optional[DagHetPartConfig] = None,
               algorithms: Sequence[str] = ALGORITHMS,
               validate: bool = False,
               progress: Optional[Callable[[str], None]] = None) -> List[RunRecord]:
    """Run all instances; returns the flat record list."""
    records: List[RunRecord] = []
    for inst in instances:
        if progress is not None:
            progress(f"running {inst.name} ({inst.n_tasks} tasks) on {cluster.name}")
        records.extend(run_instance(inst, cluster, config=config,
                                    algorithms=algorithms, validate=validate))
    return records
