"""Corpus adapter over :mod:`repro.api`: instances → requests → records.

One :class:`RunRecord` per (instance, algorithm). Failures to schedule are
legitimate outcomes (Section 5.2.2 counts them), so they are recorded —
with a ``failure_reason`` — not raised.

All execution (timing, failure capture, multiprocessing, deterministic
merge) lives in :func:`repro.api.solve_batch`; this module only translates
corpus :class:`Instance` objects into :class:`ScheduleRequest` envelopes
and flattens the resulting :class:`ScheduleResult` list into the flat
records the metrics layer aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.api import (
    PARALLEL_ENV,
    ScenarioSpec,
    ScheduleRequest,
    ScheduleResult,
    resolve_parallel,
    run_scenario,
    solve,
    solve_batch,
)
from repro.experiments.instances import Instance
from repro.platform.cluster import Cluster

#: the paper's pairing, in evaluation order (canonical registry aliases)
ALGORITHMS = ("DagHetMem", "DagHetPart")

__all__ = [
    "ALGORITHMS",
    "PARALLEL_ENV",
    "RunRecord",
    "corpus_requests",
    "record_from_result",
    "resolve_parallel",
    "run_corpus",
    "run_instance",
    "scenario_records",
]


@dataclass(frozen=True)
class RunRecord:
    """Result of one algorithm on one instance (flat, aggregation-ready)."""

    instance: str
    family: str
    category: str
    n_tasks: int
    algorithm: str
    cluster: str
    bandwidth: float
    success: bool
    makespan: float  # inf when unsuccessful
    runtime: float  # wall-clock seconds of the scheduling algorithm
    n_blocks: int
    failure_reason: str = ""  # "" on success, else "Kind: message"
    k_prime: Optional[int] = None  # winning k' (sweep algorithms only)


def corpus_requests(instances: Sequence[Instance], cluster: Cluster,
                    config=None, algorithms: Sequence[str] = ALGORITHMS,
                    validate: bool = False,
                    scale_memory: bool = True) -> List[ScheduleRequest]:
    """One :class:`ScheduleRequest` per (instance, algorithm), instance-major.

    Instance metadata rides along in ``tags`` so records can be rebuilt
    from results (or from persisted result JSON) without the corpus.
    ``scale_memory`` applies the paper's proportional memory scaling so the
    largest task fits somewhere (synthetic corpus rule).
    """
    return [
        ScheduleRequest(
            workflow=inst.workflow,
            cluster=cluster,
            algorithm=algorithm,
            config=config,
            scale_memory=scale_memory,
            validate=validate,
            want_mapping=False,  # records only need the scalars
            tags={"instance": inst.name, "family": inst.family,
                  "category": inst.category, "n_tasks": inst.n_tasks},
        )
        for inst in instances
        for algorithm in algorithms
    ]


def record_from_result(result: ScheduleResult) -> RunRecord:
    """Flatten one API result (tags + scalars) into a RunRecord."""
    tags = result.tags
    return RunRecord(
        instance=str(tags.get("instance", result.workflow)),
        family=str(tags.get("family", result.workflow)),
        category=str(tags.get("category", "")),
        n_tasks=int(tags.get("n_tasks", result.n_tasks)),
        algorithm=result.algorithm,
        cluster=result.cluster,
        bandwidth=result.bandwidth,
        success=result.success,
        makespan=result.makespan,
        runtime=result.runtime,
        n_blocks=result.n_blocks,
        failure_reason="" if result.failure is None else str(result.failure),
        k_prime=result.k_prime,
    )


def run_instance(inst: Instance, cluster: Cluster,
                 config=None,
                 algorithms: Sequence[str] = ALGORITHMS,
                 validate: bool = False,
                 scale_memory: bool = True) -> List[RunRecord]:
    """Run the requested algorithms on one instance (always in-process)."""
    requests = corpus_requests([inst], cluster, config=config,
                               algorithms=algorithms, validate=validate,
                               scale_memory=scale_memory)
    return [record_from_result(solve(request)) for request in requests]


def run_corpus(instances: Sequence[Instance], cluster: Cluster,
               config=None,
               algorithms: Sequence[str] = ALGORITHMS,
               validate: bool = False,
               progress: Optional[Callable[[str], None]] = None,
               parallel: Optional[int] = None) -> List[RunRecord]:
    """Run all instances; returns the flat record list.

    ``parallel`` > 1 distributes requests over that many worker processes
    (``None`` consults the ``REPRO_PARALLEL`` environment variable, ``-1``
    uses every CPU); see :func:`repro.api.solve_batch` for the merge
    guarantee — apart from the measured ``runtime`` fields the output is
    identical to a serial run. ``progress`` receives one message per
    *instance* (once all its algorithms finished).
    """
    instances = list(instances)
    algorithms = tuple(algorithms)
    requests = corpus_requests(instances, cluster, config=config,
                               algorithms=algorithms, validate=validate)

    hook = None
    if progress is not None and instances and algorithms:
        pending = {i: len(algorithms) for i in range(len(instances))}
        done = [0]

        def hook(index, request, result):
            key = index // len(algorithms)
            pending[key] -= 1
            if pending[key] == 0:
                done[0] += 1
                inst = instances[key]
                progress(f"finished {inst.name} ({inst.n_tasks} tasks) on "
                         f"{cluster.name} ({done[0]}/{len(instances)})")

    results = solve_batch(requests, parallel=parallel, progress=hook)
    return [record_from_result(r) for r in results]


def scenario_records(spec: ScenarioSpec,
                     parallel: Optional[int] = None,
                     progress: Optional[Callable[[str], None]] = None,
                     cache=None) -> List[RunRecord]:
    """Run a declarative scenario and flatten its results into records.

    The scenario counterpart of :func:`run_corpus`: results stream
    through :func:`repro.api.run_scenario` (so ``cache`` — a directory
    path or :class:`repro.api.ResultCache` — turns re-runs into disk
    reads) and are flattened as they arrive. ``progress`` receives one
    message per completed request.
    """
    hook = None
    if progress is not None:
        total = spec.size()

        def hook(index, request, result):
            progress(f"finished {result.workflow} / {result.algorithm} on "
                     f"{result.cluster} ({index + 1}/{total})")

    return [record_from_result(r)
            for r in run_scenario(spec, parallel=parallel, cache=cache,
                                  progress=hook)]
