"""Dependency-free ASCII plots for the experiment series.

The evaluation environment has no plotting stack, so the figure drivers
render their series as text: :func:`ascii_line_plot` draws multi-series
scatter/line charts with axis labels (used by the CLI and by
EXPERIMENTS.md snippets), :func:`ascii_bar_chart` draws labelled bars.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

Series = Mapping[float, float]

_MARKERS = "ox+*#@%&"


def ascii_line_plot(series: Mapping[str, Series], width: int = 64,
                    height: int = 16, title: str = "",
                    x_label: str = "", y_label: str = "") -> str:
    """Render ``{name: {x: y}}`` as an ASCII scatter chart.

    Each series gets a marker; collisions show the later series' marker.
    Returns a multi-line string.
    """
    points: List[Tuple[str, float, float]] = []
    for name, xy in series.items():
        for x, y in xy.items():
            points.append((name, float(x), float(y)))
    if not points:
        return f"{title}\n(no data)"

    xs = [p[1] for p in points]
    ys = [p[2] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    marker_of = {name: _MARKERS[i % len(_MARKERS)]
                 for i, name in enumerate(series)}
    for name, x, y in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = marker_of[name]

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{marker_of[n]}={n}" for n in series)
    lines.append(legend)
    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    gutter = max(len(y_hi_label), len(y_lo_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_hi_label.rjust(gutter)
        elif i == height - 1:
            prefix = y_lo_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}|")
    x_axis = f"{' ' * gutter}  {str(f'{x_lo:.4g}').ljust(width // 2)}" \
             f"{f'{x_hi:.4g}'.rjust(width - width // 2)}"
    lines.append(x_axis)
    if x_label or y_label:
        lines.append(f"{' ' * gutter}  x: {x_label}   y: {y_label}")
    return "\n".join(lines)


def ascii_bar_chart(values: Mapping[str, float], width: int = 50,
                    title: str = "", fmt: str = "{:.1f}") -> str:
    """Horizontal bar chart of ``{label: value}`` (non-negative values)."""
    if not values:
        return f"{title}\n(no data)"
    peak = max(values.values())
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar_len = 0 if peak <= 0 else int(round(value / peak * width))
        lines.append(f"{str(label).rjust(label_width)} |"
                     f"{'#' * bar_len}{' ' * (width - bar_len)}| "
                     f"{fmt.format(value)}")
    return "\n".join(lines)


def figure_series(rows: Sequence[Dict], x_key: str, y_key: str,
                  group_key: str) -> Dict[str, Dict[float, float]]:
    """Pivot figure rows into the ``{group: {x: y}}`` shape plots expect."""
    out: Dict[str, Dict[float, float]] = {}
    for row in rows:
        out.setdefault(str(row[group_key]), {})[float(row[x_key])] = float(row[y_key])
    return out
