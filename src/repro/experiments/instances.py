"""The evaluation corpus (Section 5.1.1) and platform scaling rules.

Paper sizes: 200 / 1 000 / 2 000 / 4 000 / 8 000 (small), 10 000 / 15 000 /
18 000 (middle), 20 000 / 25 000 / 30 000 (big), plus five real workflows of
11-58 tasks. A pure-Python run of the full corpus takes hours, so the
default sizes are the paper's divided by :data:`DEFAULT_SCALE` (size
*ordering and spread* are preserved; EXPERIMENTS.md records that the
result shapes are stable across scales). Set ``REPRO_FULL=1`` to run the
paper's sizes, or ``REPRO_SCALE=<divisor>`` for anything in between.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.scenario import (
    AlgorithmSpec,
    FamilyGridSource,
    PlatformAxis,
    RealWorkflowSource,
    ScenarioSpec,
)
from repro.generators.families import WORKFLOW_FAMILIES, generate_workflow
from repro.generators.realworld import REAL_WORKFLOW_NAMES, generate_real_workflow
from repro.platform.cluster import Cluster
from repro.utils.rng import SeedLike, stable_hash
from repro.workflow.graph import Workflow

#: paper task counts per size category
PAPER_SIZES: Dict[str, Tuple[int, ...]] = {
    "small": (200, 1_000, 2_000, 4_000, 8_000),
    "mid": (10_000, 15_000, 18_000),
    "big": (20_000, 25_000, 30_000),
}

SIZE_CATEGORIES = ("real", "small", "mid", "big")

#: default down-scaling divisor for laptop-scale runs
DEFAULT_SCALE = 50.0

#: never generate fewer tasks than this (degenerate graphs otherwise)
MIN_TASKS = 16


def synthetic_sizes(full: Optional[bool] = None) -> Dict[str, Tuple[int, ...]]:
    """Per-category task counts, honouring ``REPRO_FULL``/``REPRO_SCALE``."""
    if full is None:
        full = os.environ.get("REPRO_FULL", "") == "1"
    if full:
        return dict(PAPER_SIZES)
    scale = float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))
    return {
        cat: tuple(max(MIN_TASKS, round(n / scale)) for n in sizes)
        for cat, sizes in PAPER_SIZES.items()
    }


@dataclass(frozen=True)
class Instance:
    """One workflow of the corpus plus its grouping metadata."""

    name: str
    family: str
    category: str  # real | small | mid | big
    n_tasks_requested: int
    workflow: Workflow

    @property
    def n_tasks(self) -> int:
        return self.workflow.n_tasks


def seed_base(seed: SeedLike) -> int:
    """Normalize a corpus seed to the int the per-instance seeds build on.

    ``None`` means 0; ints pass through; a ``numpy`` ``Generator`` is
    reduced to a stable int derived from its bit-generator state (without
    consuming the stream), so two generators in the same state produce
    the same corpus. Anything else raises a clear ``TypeError`` instead
    of being silently collapsed to 0.
    """
    if seed is None:
        return 0
    if hasattr(seed, "bit_generator"):  # numpy.random.Generator
        state = json.dumps(seed.bit_generator.state, sort_keys=True, default=str)
        return stable_hash(state) % (2 ** 31)
    try:
        return int(seed)
    except (TypeError, ValueError):
        raise TypeError(
            f"corpus seed must be an int, None, or a numpy Generator, "
            f"got {type(seed).__name__}") from None


def synthetic_instances(seed: SeedLike = 0, full: Optional[bool] = None,
                        families: Optional[Sequence[str]] = None,
                        sizes: Optional[Dict[str, Tuple[int, ...]]] = None,
                        work_factor: float = 1.0) -> List[Instance]:
    """All synthetic instances: families x sizes, deterministic per (family, size)."""
    families = tuple(families) if families is not None else WORKFLOW_FAMILIES
    sizes = sizes if sizes is not None else synthetic_sizes(full)
    base = seed_base(seed)
    out: List[Instance] = []
    for family in families:
        for category, counts in sizes.items():
            for n in counts:
                inst_seed = (base + stable_hash(f"{family}:{n}")) % (2 ** 31)
                wf = generate_workflow(family, n, seed=inst_seed,
                                       work_factor=work_factor)
                out.append(Instance(
                    name=f"{family}-{n}",
                    family=family,
                    category=category,
                    n_tasks_requested=n,
                    workflow=wf,
                ))
    return out


def real_instances(seed: SeedLike = 0, work_factor: float = 1.0) -> List[Instance]:
    """The five real-world-like workflows (category ``"real"``)."""
    return [
        Instance(
            name=name,
            family=name,
            category="real",
            n_tasks_requested=0,
            workflow=generate_real_workflow(name, seed=seed, work_factor=work_factor),
        )
        for name in REAL_WORKFLOW_NAMES
    ]


def build_corpus(seed: SeedLike = 0, full: Optional[bool] = None,
                 families: Optional[Sequence[str]] = None,
                 include_real: bool = True,
                 sizes: Optional[Dict[str, Tuple[int, ...]]] = None,
                 work_factor: float = 1.0) -> List[Instance]:
    """The complete corpus: real + synthetic instances."""
    corpus: List[Instance] = []
    if include_real:
        corpus.extend(real_instances(seed=seed, work_factor=work_factor))
    corpus.extend(synthetic_instances(seed=seed, full=full, families=families,
                                      sizes=sizes, work_factor=work_factor))
    return corpus


def scaled_cluster_for(wf: Workflow, cluster: Cluster,
                       headroom: float = 1.001) -> Cluster:
    """Scale cluster memories so the biggest task has a host (Sec. 5.1.2).

    "For simulated workflows, we increase memory sizes proportionally until
    the task with the biggest memory requirement still has a processor it
    could be executed on." No-op when the workflow already fits.
    """
    peak = wf.max_task_requirement()
    if peak <= cluster.max_memory():
        return cluster
    return cluster.scaled_memories(peak / cluster.max_memory() * headroom)


#: The paper's evaluation grid (Section 5) as one declarative scenario:
#: the complete corpus (five real workflows + every family at the corpus
#: sizes — ``REPRO_FULL``/``REPRO_SCALE`` resolve at expansion time) on
#: every cluster configuration of Sections 5.1.2/5.2, with the default
#: cluster additionally swept over the Fig. 7 bandwidths, run with both
#: paper algorithms under the "doubling" k' strategy. Figures 3-9 and the
#: success/failure tables are aggregations over slices of this grid;
#: ``repro scenario run`` with a cache directory executes it resumably.
#: The one record set *not* in this grid is Section 5.2.4's 4x-demand
#: variant — the same corpus with ``work_factor=4.0`` on the default
#: cluster only (``figures.corpus_scenario("demand4x", work_factor=4.0)``
#: builds it, and ``scripts/run_all_experiments.py`` runs it alongside).
PAPER_SCENARIO = ScenarioSpec(
    name="icpp24-kulagina-evaluation",
    description="Full ICPP'24 evaluation grid: corpus x clusters x "
                "bandwidths x {DagHetMem, DagHetPart}",
    workflows=(RealWorkflowSource(seed=0),
               FamilyGridSource(seed=0)),
    platforms=(
        PlatformAxis(preset="small"),
        PlatformAxis(preset="default", bandwidths=(0.1, 0.5, 1.0, 2.0, 5.0)),
        PlatformAxis(preset="large"),
        PlatformAxis(preset="nohet"),
        PlatformAxis(preset="lesshet"),
        PlatformAxis(preset="morehet"),
    ),
    algorithms=(
        AlgorithmSpec("daghetmem"),
        AlgorithmSpec("daghetpart", config={"k_prime_strategy": "doubling"}),
    ),
    tags={"scenario": "{scenario}"},
    scale_memory=True,
)


#: The local-search refinement companion grid: the same corpus on the
#: default cluster, run with the DagHetPart seed, its simulated-annealing
#: refinement, and the best-of-N portfolio — the two registry-unlocked
#: contenders beyond the paper. ``figures.refinement_gain`` aggregates the
#: anneal-vs-seed ratios; ``repro scenario run`` on this spec's JSON dump
#: executes the whole suite resumably (fresh results cached per request).
REFINEMENT_SCENARIO = ScenarioSpec(
    name="icpp24-refinement-suite",
    description="Refinement suite: corpus x default cluster x "
                "{DagHetPart, Anneal, Portfolio}",
    workflows=(RealWorkflowSource(seed=0),
               FamilyGridSource(seed=0)),
    platforms=(PlatformAxis(preset="default"),),
    algorithms=(
        AlgorithmSpec("daghetpart", config={"k_prime_strategy": "doubling"}),
        AlgorithmSpec("anneal", config={"k_prime_strategy": "doubling"}),
        AlgorithmSpec("portfolio"),
    ),
    tags={"scenario": "{scenario}"},
    scale_memory=True,
)
