"""Experiment harness: regenerates every table and figure of Section 5.

* :mod:`repro.experiments.instances` — the evaluation corpus (workflow
  families x sizes + real-world workflows) with laptop-scale defaults and
  ``REPRO_FULL=1`` for the paper's sizes;
* :mod:`repro.experiments.runner` — thin corpus→request adapter over
  :mod:`repro.api`; records makespans, runtimes, success, failure reasons
  and the winning ``k'`` per run;
* :mod:`repro.experiments.metrics` — geometric means and relative
  makespans, matching the paper's aggregation;
* :mod:`repro.experiments.figures` — one driver per table/figure
  (``fig3_left`` ... ``fig9``, ``table4``, ``success_counts``,
  ``demand4x``);
* :mod:`repro.experiments.report` — plain-text rendering of the results.
"""

from repro.experiments.instances import (
    Instance,
    PAPER_SCENARIO,
    build_corpus,
    real_instances,
    synthetic_instances,
    synthetic_sizes,
    scaled_cluster_for,
    SIZE_CATEGORIES,
)
from repro.experiments.runner import (
    RunRecord,
    run_instance,
    run_corpus,
    scenario_records,
)
from repro.experiments.metrics import (
    geometric_mean,
    relative_makespan_by,
    aggregate_by,
)
from repro.experiments import figures
from repro.experiments.report import format_table

__all__ = [
    "Instance",
    "PAPER_SCENARIO",
    "build_corpus",
    "real_instances",
    "synthetic_instances",
    "synthetic_sizes",
    "scaled_cluster_for",
    "SIZE_CATEGORIES",
    "RunRecord",
    "run_instance",
    "run_corpus",
    "scenario_records",
    "geometric_mean",
    "relative_makespan_by",
    "aggregate_by",
    "figures",
    "format_table",
]
