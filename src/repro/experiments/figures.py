"""One driver per table and figure of the paper's evaluation (Section 5.2).

Every function returns ``{"rows": [...], "records": [...]}`` — ``rows``
holds exactly the series the paper plots (ready for
:func:`repro.experiments.report.format_table`), ``records`` the raw
per-run data. Corpus size is controlled by the same knobs everywhere
(``seed``, ``full``, ``families``, ``sizes``) so the benchmarks can run
reduced corpora while ``REPRO_FULL=1`` reproduces the paper's scale.

Every driver is now a thin aggregation over a declarative
:class:`~repro.api.ScenarioSpec` (:func:`corpus_scenario` builds the spec,
:func:`repro.experiments.runner.scenario_records` streams it through
``repro.api``), so records carry structured failure reasons and the
winning ``k'`` per run; :func:`failure_report` turns the former into a
table of its own, and any figure's workload can be exported as a JSON
spec and re-run — cached and resumable — with ``repro scenario run``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api import (
    AlgorithmSpec,
    FamilyGridSource,
    PlatformAxis,
    RealWorkflowSource,
    ScenarioSpec,
    get_algorithm,
)
from repro.core.heuristic import DagHetPartConfig
from repro.experiments.instances import SIZE_CATEGORIES, synthetic_sizes
from repro.experiments.metrics import (
    aggregate_by,
    makespan_ratios,
    relative_makespan_by,
    success_counts,
)
from repro.experiments.runner import ALGORITHMS, RunRecord, scenario_records
from repro.platform.presets import (
    MACHINE_KINDS,
    MACHINE_KINDS_LESSHET,
    MACHINE_KINDS_MOREHET,
    cluster_by_name,
)

_CAT_ORDER = {cat: i for i, cat in enumerate(SIZE_CATEGORIES)}


def corpus_scenario(name: str, preset: str = "default", bandwidth: float = 1.0,
                    seed=0, full=None, families=None, sizes=None,
                    include_real: bool = True, work_factor: float = 1.0,
                    config: Optional[DagHetPartConfig] = None,
                    algorithms: Sequence[str] = ALGORITHMS,
                    algorithm_specs: Optional[Sequence[AlgorithmSpec]] = None,
                    ) -> ScenarioSpec:
    """The classic corpus sweep (Section 5.1.1 corpus on one cluster) as a
    declarative scenario.

    Expansion order matches the old ``build_corpus`` + ``run_corpus``
    pipeline exactly (real workflows first, then the family grid,
    instance-major / algorithm-minor), so the records a figure driver
    aggregates are bit-for-bit those of the hand-written sweep. ``config``
    is attached to every algorithm that declares a config class;
    ``algorithm_specs`` overrides the whole algorithm grid for drivers
    whose algorithms take *different* config types (e.g. the refinement
    suite's DagHetPartConfig + AnnealConfig pairing).
    """
    sources: List = []
    if include_real:
        sources.append(RealWorkflowSource(seed=seed, work_factor=work_factor))
    sources.append(FamilyGridSource(
        families=None if families is None else tuple(families),
        sizes=sizes if sizes is not None else synthetic_sizes(full),
        seed=seed, work_factor=work_factor))
    if algorithm_specs is None:
        algorithm_specs = tuple(
            AlgorithmSpec(alg, config=config
                          if get_algorithm(alg).config_cls is not None else None)
            for alg in algorithms)
    return ScenarioSpec(
        name=name,
        workflows=tuple(sources),
        platforms=(PlatformAxis(preset=preset, bandwidths=(bandwidth,)),),
        algorithms=tuple(algorithm_specs),
        scale_memory=True,
    )


def _records(preset, seed=0, full=None, families=None, sizes=None,
             include_real=True, config=None, work_factor=1.0,
             progress=None, parallel=None, bandwidth=1.0,
             algorithms: Sequence[str] = ALGORITHMS) -> List[RunRecord]:
    spec = corpus_scenario(f"corpus-{preset}", preset=preset,
                           bandwidth=bandwidth, seed=seed, full=full,
                           families=families, sizes=sizes,
                           include_real=include_real,
                           work_factor=work_factor, config=config,
                           algorithms=algorithms)
    return scenario_records(spec, parallel=parallel, progress=progress)


# ----------------------------------------------------------------------
# Tables 2 and 3 — cluster configurations (pure data, kept as experiments
# so the benches can assert the presets never drift from the paper)
# ----------------------------------------------------------------------
def table2() -> Dict[str, List[Dict]]:
    """Table 2: the default cluster's machine kinds."""
    rows = [{"processor": kind, "speed_ghz": float(s), "memory_gb": float(m)}
            for kind, s, m in MACHINE_KINDS]
    return {"rows": rows, "records": []}


def table3() -> Dict[str, List[Dict]]:
    """Table 3: MoreHet and LessHet machine kinds."""
    rows = []
    for (k1, s1, m1), (k2, s2, m2) in zip(MACHINE_KINDS_MOREHET, MACHINE_KINDS_LESSHET):
        rows.append({"morehet": k1, "speed*": float(s1), "memory*": float(m1),
                     "lesshet": k2, "speed'": float(s2), "memory'": float(m2)})
    return {"rows": rows, "records": []}


# ----------------------------------------------------------------------
# Fig. 3 (left): relative makespan by workflow type, default cluster
# ----------------------------------------------------------------------
def fig3_left(seed=0, full=None, families=None, sizes=None,
              config: Optional[DagHetPartConfig] = None,
              progress=None, parallel=None) -> Dict[str, List]:
    """Relative makespan (%) of DagHetPart vs DagHetMem per workflow type."""
    records = _records("default", seed=seed, full=full,
                       families=families, sizes=sizes, config=config,
                       progress=progress, parallel=parallel)
    rel = relative_makespan_by(records, key=lambda r: r.category)
    rows = [{"workflow_type": cat, "relative_makespan_pct": rel[cat]}
            for cat in SIZE_CATEGORIES if cat in rel]
    overall = relative_makespan_by(records, key=lambda r: "all").get("all")
    if overall is not None:
        rows.append({"workflow_type": "all", "relative_makespan_pct": overall})
    return {"rows": rows, "records": records}


# ----------------------------------------------------------------------
# Fig. 3 (right): relative makespan on different cluster sizes
# ----------------------------------------------------------------------
def fig3_right(seed=0, full=None, families=None, sizes=None,
               config: Optional[DagHetPartConfig] = None,
               progress=None, parallel=None) -> Dict[str, List]:
    """Relative makespan (%) across small/default/large clusters (18/36/60)."""
    rows: List[Dict] = []
    all_records: List[RunRecord] = []
    for preset in ("small", "default", "large"):
        records = _records(preset, seed=seed, full=full, families=families,
                           sizes=sizes, config=config, progress=progress, parallel=parallel)
        all_records.extend(records)
        rel = relative_makespan_by(records, key=lambda r: r.category)
        n_cpus = cluster_by_name(preset).k
        for cat in SIZE_CATEGORIES:
            if cat in rel:
                rows.append({"n_cpus": n_cpus, "workflow_type": cat,
                             "relative_makespan_pct": rel[cat]})
    rows.sort(key=lambda r: (r["n_cpus"], _CAT_ORDER[r["workflow_type"]]))
    return {"rows": rows, "records": all_records}


# ----------------------------------------------------------------------
# Fig. 4: impact of heterogeneity (relative + absolute makespans)
# ----------------------------------------------------------------------
def fig4(seed=0, full=None, families=None, sizes=None,
         config: Optional[DagHetPartConfig] = None,
         progress=None, parallel=None) -> Dict[str, List]:
    """NoHet / LessHet / default / MoreHet: relative and absolute makespan."""
    rows: List[Dict] = []
    all_records: List[RunRecord] = []
    for label in ("nohet", "lesshet", "default", "morehet"):
        records = _records(label, seed=seed, full=full, families=families,
                           sizes=sizes, config=config, progress=progress, parallel=parallel)
        all_records.extend(records)
        rel = relative_makespan_by(records, key=lambda r: r.category)
        absolute = aggregate_by(
            [r for r in records if r.algorithm == "DagHetPart" and r.success],
            key=lambda r: r.category, value=lambda r: r.makespan)
        for cat in SIZE_CATEGORIES:
            if cat in rel:
                rows.append({"heterogeneity": label, "workflow_type": cat,
                             "relative_makespan_pct": rel[cat],
                             "absolute_makespan": absolute.get(cat, float("nan"))})
    return {"rows": rows, "records": all_records}


# ----------------------------------------------------------------------
# Fig. 5 / Fig. 6: per-family behaviour when scaling workflow size
# ----------------------------------------------------------------------
def fig5(seed=0, full=None, families=None, sizes=None,
         config: Optional[DagHetPartConfig] = None,
         progress=None, parallel=None) -> Dict[str, List]:
    """Relative makespan per workflow family as a function of size."""
    records = _records("default", seed=seed, full=full,
                       families=families, sizes=sizes, include_real=False,
                       config=config, progress=progress, parallel=parallel)
    rows = [
        {"family": rec.family, "n_tasks": rec.n_tasks,
         "relative_makespan_pct": 100.0 * ratio}
        for rec, ratio in makespan_ratios(records)
    ]
    rows.sort(key=lambda r: (r["family"], r["n_tasks"]))
    return {"rows": rows, "records": records}


def fig6(seed=0, full=None, families=None, sizes=None,
         config: Optional[DagHetPartConfig] = None,
         progress=None, parallel=None) -> Dict[str, List]:
    """Absolute DagHetPart makespan per family as a function of size."""
    records = _records("default", seed=seed, full=full,
                       families=families, sizes=sizes, include_real=False,
                       config=config, progress=progress, parallel=parallel)
    rows = [
        {"family": r.family, "n_tasks": r.n_tasks, "makespan": r.makespan}
        for r in records if r.algorithm == "DagHetPart" and r.success
    ]
    rows.sort(key=lambda r: (r["family"], r["n_tasks"]))
    return {"rows": rows, "records": records}


# ----------------------------------------------------------------------
# Fig. 7: impact of the communication-to-computation ratio (bandwidth)
# ----------------------------------------------------------------------
def fig7(betas: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 5.0),
         seed=0, full=None, families=None, sizes=None,
         config: Optional[DagHetPartConfig] = None,
         progress=None, parallel=None) -> Dict[str, List]:
    """Relative makespan vs bandwidth, by workflow type."""
    rows: List[Dict] = []
    all_records: List[RunRecord] = []
    for beta in betas:
        records = _records("default", bandwidth=beta, seed=seed,
                           full=full, families=families, sizes=sizes,
                           config=config, progress=progress, parallel=parallel)
        all_records.extend(records)
        rel = relative_makespan_by(records, key=lambda r: r.category)
        for cat in SIZE_CATEGORIES:
            if cat in rel:
                rows.append({"bandwidth": beta, "workflow_type": cat,
                             "relative_makespan_pct": rel[cat]})
    rows.sort(key=lambda r: (_CAT_ORDER[r["workflow_type"]], r["bandwidth"]))
    return {"rows": rows, "records": all_records}


# ----------------------------------------------------------------------
# Figs. 8-9 and Table 4: running times
# ----------------------------------------------------------------------
def fig8(seed=0, full=None, families=None, sizes=None,
         config: Optional[DagHetPartConfig] = None,
         progress=None, parallel=None) -> Dict[str, List]:
    """Per-workflow running time of DagHetPart relative to DagHetMem."""
    records = _records("default", seed=seed, full=full,
                       families=families, sizes=sizes, config=config,
                       progress=progress, parallel=parallel)
    by_instance: Dict[str, Dict[str, RunRecord]] = {}
    for r in records:
        by_instance.setdefault(r.instance, {})[r.algorithm] = r
    rows = []
    for name, algs in sorted(by_instance.items()):
        mem, part = algs.get("DagHetMem"), algs.get("DagHetPart")
        if mem is None or part is None or mem.runtime <= 0:
            continue
        rows.append({"instance": name, "family": part.family,
                     "n_tasks": part.n_tasks,
                     "relative_runtime": part.runtime / mem.runtime})
    return {"rows": rows, "records": records}


def fig9(seed=0, full=None, families=None, sizes=None,
         config: Optional[DagHetPartConfig] = None,
         progress=None, parallel=None) -> Dict[str, List]:
    """Absolute running time of DagHetPart by workflow type (log-scale plot)."""
    records = _records("default", seed=seed, full=full,
                       families=families, sizes=sizes, config=config,
                       progress=progress, parallel=parallel)
    rows = [
        {"workflow_type": r.category, "instance": r.instance,
         "n_tasks": r.n_tasks, "runtime_sec": r.runtime}
        for r in records if r.algorithm == "DagHetPart"
    ]
    rows.sort(key=lambda r: (_CAT_ORDER[r["workflow_type"]], r["n_tasks"]))
    return {"rows": rows, "records": records}


def table4(seed=0, full=None, families=None, sizes=None,
           config: Optional[DagHetPartConfig] = None,
           progress=None, parallel=None) -> Dict[str, List]:
    """Table 4: avg relative and absolute running times per workflow set."""
    data = fig8(seed=seed, full=full, families=families, sizes=sizes,
                config=config, progress=progress, parallel=parallel)
    records = data["records"]
    by_cat_rel: Dict[str, List[float]] = {}
    by_cat_abs: Dict[str, List[float]] = {}
    by_instance: Dict[str, Dict[str, RunRecord]] = {}
    for r in records:
        by_instance.setdefault(r.instance, {})[r.algorithm] = r
    for algs in by_instance.values():
        mem, part = algs.get("DagHetMem"), algs.get("DagHetPart")
        if mem is None or part is None:
            continue
        by_cat_abs.setdefault(part.category, []).append(part.runtime)
        if mem.runtime > 0:
            by_cat_rel.setdefault(part.category, []).append(part.runtime / mem.runtime)
    rows = []
    for cat in SIZE_CATEGORIES:
        if cat not in by_cat_abs:
            continue
        rel = by_cat_rel.get(cat, [])
        rows.append({
            "workflow_set": cat,
            "avg_relative_runtime": sum(rel) / len(rel) if rel else float("nan"),
            "avg_absolute_runtime_sec": sum(by_cat_abs[cat]) / len(by_cat_abs[cat]),
        })
    return {"rows": rows, "records": records}


# ----------------------------------------------------------------------
# Section 5.2.2: scheduling success counts per cluster size
# ----------------------------------------------------------------------
def success_counts_experiment(seed=0, full=None, families=None, sizes=None,
                              config: Optional[DagHetPartConfig] = None,
                              progress=None, parallel=None) -> Dict[str, List]:
    """How many workflows each algorithm schedules on each cluster size."""
    rows: List[Dict] = []
    all_records: List[RunRecord] = []
    for preset in ("small", "default", "large"):
        records = _records(preset, seed=seed, full=full, families=families,
                           sizes=sizes, config=config, progress=progress, parallel=parallel)
        all_records.extend(records)
        cluster_name = cluster_by_name(preset).name
        for (cat, alg), (ok, total) in sorted(success_counts(records).items()):
            rows.append({"cluster": cluster_name, "workflow_type": cat,
                         "algorithm": alg, "scheduled": ok, "total": total})
    return {"rows": rows, "records": all_records}


# ----------------------------------------------------------------------
# Failure audit: which runs failed and why (uses RunRecord.failure_reason)
# ----------------------------------------------------------------------
def failure_report(seed=0, full=None, families=None, sizes=None,
                   config: Optional[DagHetPartConfig] = None,
                   progress=None, parallel=None) -> Dict[str, List]:
    """Every failed run on the small cluster, with its structured reason.

    The small (18-proc) cluster is where the paper's corpus actually
    fails to schedule (Section 5.2.2); the rows break the bare success
    counts down into *why* — the exception kind and message the runner
    used to discard.
    """
    records = _records("small", seed=seed, full=full,
                       families=families, sizes=sizes, config=config,
                       progress=progress, parallel=parallel,
                       algorithms=ALGORITHMS + ("HeftList",))
    rows = [
        {"instance": r.instance, "workflow_type": r.category,
         "algorithm": r.algorithm, "failure_reason": r.failure_reason}
        for r in records if not r.success
    ]
    rows.sort(key=lambda r: (_CAT_ORDER[r["workflow_type"]],
                             r["instance"], r["algorithm"]))
    if not rows:
        rows = [{"instance": "(none)", "workflow_type": "-", "algorithm": "-",
                 "failure_reason": "all runs scheduled successfully"}]
    return {"rows": rows, "records": records}


# ----------------------------------------------------------------------
# HEFT baseline: what does the memory constraint cost?
# ----------------------------------------------------------------------
def heft_relative(seed=0, full=None, families=None, sizes=None,
                  config: Optional[DagHetPartConfig] = None,
                  progress=None, parallel=None) -> Dict[str, List]:
    """Memory-aware algorithms vs the memory-oblivious HeftList baseline.

    HeftList ignores memory entirely, so its makespan is what a classic
    list scheduler achieves when the memory constraint is dropped; the
    relative makespans (geometric mean, in %) of DagHetPart and DagHetMem
    against it bound how much respecting memory costs on the default
    cluster.
    """
    records = _records("default", seed=seed, full=full,
                       families=families, sizes=sizes, config=config,
                       progress=progress, parallel=parallel,
                       algorithms=ALGORITHMS + ("HeftList",))
    part = relative_makespan_by(records, key=lambda r: r.category,
                                numerator="DagHetPart", denominator="HeftList")
    mem = relative_makespan_by(records, key=lambda r: r.category,
                               numerator="DagHetMem", denominator="HeftList")
    rows = [
        {"workflow_type": cat,
         "daghetpart_vs_heft_pct": part[cat],
         "daghetmem_vs_heft_pct": mem.get(cat, float("nan"))}
        for cat in SIZE_CATEGORIES if cat in part
    ]
    overall = relative_makespan_by(records, key=lambda r: "all",
                                   numerator="DagHetPart",
                                   denominator="HeftList").get("all")
    if overall is not None:
        rows.append({"workflow_type": "all",
                     "daghetpart_vs_heft_pct": overall,
                     "daghetmem_vs_heft_pct": relative_makespan_by(
                         records, key=lambda r: "all", numerator="DagHetMem",
                         denominator="HeftList").get("all", float("nan"))})
    return {"rows": rows, "records": records}


# ----------------------------------------------------------------------
# Refinement suite: what does simulated annealing buy over DagHetPart?
# ----------------------------------------------------------------------
def refinement_gain(seed=0, full=None, families=None, sizes=None,
                    config: Optional[DagHetPartConfig] = None,
                    anneal_config: Optional["AnnealConfig"] = None,
                    progress=None, parallel=None) -> Dict[str, List]:
    """Relative makespan (%) of ``anneal`` vs its ``daghetpart`` seed.

    The annealer is seeded from the best DagHetPart sweep mapping and
    never returns a worse one, so every per-instance ratio is <= 100%;
    the geometric means per workflow type quantify what the Metropolis
    local search buys beyond the paper's greedy Step 4. The annealer's
    ``k'`` strategy follows ``config`` so both columns sweep the same
    candidate partitions.
    """
    from repro.core.anneal import AnnealConfig

    part_config = config or DagHetPartConfig()
    if anneal_config is None:
        anneal_config = AnnealConfig(
            k_prime_strategy=part_config.k_prime_strategy)
    spec = corpus_scenario(
        "refinement-gain", seed=seed, full=full, families=families,
        sizes=sizes, algorithm_specs=(
            AlgorithmSpec("daghetpart", config=part_config),
            AlgorithmSpec("anneal", config=anneal_config),
        ))
    records = scenario_records(spec, parallel=parallel, progress=progress)
    rel = relative_makespan_by(records, key=lambda r: r.category,
                               numerator="Anneal", denominator="DagHetPart")
    rows = [{"workflow_type": cat, "anneal_vs_daghetpart_pct": rel[cat]}
            for cat in SIZE_CATEGORIES if cat in rel]
    overall = relative_makespan_by(records, key=lambda r: "all",
                                   numerator="Anneal",
                                   denominator="DagHetPart").get("all")
    if overall is not None:
        rows.append({"workflow_type": "all",
                     "anneal_vs_daghetpart_pct": overall})
    return {"rows": rows, "records": records}


# ----------------------------------------------------------------------
# Section 5.2.4: four-times-bigger computational demands
# ----------------------------------------------------------------------
def demand4x(seed=0, full=None, families=None, sizes=None,
             config: Optional[DagHetPartConfig] = None,
             progress=None, parallel=None) -> Dict[str, List]:
    """Relative makespans with normal vs 4x workloads, side by side."""
    rows: List[Dict] = []
    all_records: List[RunRecord] = []
    rel_by_factor: Dict[float, Dict[str, float]] = {}
    for factor in (1.0, 4.0):
        records = _records("default", seed=seed, full=full,
                           families=families, sizes=sizes, config=config,
                           work_factor=factor, progress=progress, parallel=parallel)
        all_records.extend(records)
        rel_by_factor[factor] = relative_makespan_by(records, key=lambda r: r.category)
    for cat in SIZE_CATEGORIES:
        if cat in rel_by_factor[1.0] or cat in rel_by_factor[4.0]:
            rows.append({
                "workflow_type": cat,
                "relative_makespan_pct_1x": rel_by_factor[1.0].get(cat, float("nan")),
                "relative_makespan_pct_4x": rel_by_factor[4.0].get(cat, float("nan")),
            })
    return {"rows": rows, "records": all_records}


# ----------------------------------------------------------------------
# Dynamic scenarios: robustness of the reaction policies (ROADMAP item 4)
# ----------------------------------------------------------------------
def robustness(seed=0, full=None, families=None, sizes=None,
               config: Optional[DagHetPartConfig] = None,
               progress=None, parallel=None) -> Dict[str, List]:
    """Robustness table: each reaction policy under one perturbation mix.

    Every (family, policy) cell replays the same ``daghetpart`` plan for
    the same seeded dynamics — Poisson job arrivals, one mid-run
    processor failure, one runtime-inflation shock — so the columns
    isolate the policy: makespan degradation over the undisturbed plan,
    task migrations, wholesale re-solves, and reaction latency.
    ``parallel`` is accepted for signature parity; the replay is
    sequential by design.
    """
    from repro.api.envelopes import ScheduleRequest
    from repro.generators.families import generate_workflow
    from repro.platform.presets import cluster_by_name
    from repro.sim.events import (
        DynamicsSpec,
        PoissonArrivals,
        ProcessorChurn,
        RuntimeInflation,
    )
    from repro.sim.policies import available_policies
    from repro.sim.runner import simulate_request

    families = tuple(families) if families else ("blast", "genome", "montage")
    n_tasks = int(sizes[0]) if sizes else (300 if full else 80)
    part_config = config or DagHetPartConfig()

    rows: List[Dict] = []
    records = []
    for family in families:
        wf = generate_workflow(family, n_tasks, seed=seed)
        request = ScheduleRequest(
            workflow=wf, cluster=cluster_by_name("default"),
            algorithm="daghetpart", config=part_config,
            scale_memory=True,
            tags={"instance": f"{family}-{n_tasks}", "family": family})
        models = (
            PoissonArrivals(rate=3.0, count=2, family=family,
                            n_tasks=max(10, n_tasks // 8), start=0.1),
            ProcessorChurn(fail_times=(0.4,)),
            RuntimeInflation(times=(0.55,), sigma=0.25, fraction=0.5),
        )
        for policy in available_policies():
            if progress is not None:
                progress(f"robustness: {family}-{n_tasks} / {policy}")
            result = simulate_request(
                request, DynamicsSpec(models=models, seed=seed + 17,
                                      policy=policy))
            records.append(result)
            if result.failure is not None:
                rows.append({"family": family, "policy": policy,
                             "failure": result.failure.kind})
                continue
            extra = result.extra
            rows.append({
                "family": family,
                "policy": policy,
                "plan_makespan": round(extra["sim_plan_makespan"], 2),
                "realized_makespan": round(extra["sim_realized_makespan"], 2),
                "degradation_pct": round(extra["sim_degradation_pct"], 1),
                "migrations": extra["sim_task_migrations"],
                "replans": extra["sim_replans"],
                "full_passes": extra["sim_full_passes"],
                "react_total_s": round(extra["sim_react_total_s"], 4),
            })
    return {"rows": rows, "records": records}


# ----------------------------------------------------------------------
# Optimality gap: heuristics vs the exhaustive reference solver
# ----------------------------------------------------------------------
def optimality_gap(seed=0, full=None, families=None, sizes=None,
                   config: Optional[DagHetPartConfig] = None,
                   progress=None, parallel=None) -> Dict[str, List]:
    """How far from optimal are the heuristics on tiny instances?

    Every family x size instance small enough for the ``exact`` reference
    solver (<= 8 tasks after generation; the topology builders treat
    ``n_tasks`` as approximate, so oversized outputs are skipped and
    reported) is solved by ``exact`` and by every memory-aware heuristic;
    the table shows each heuristic's geometric-mean and worst gap
    (``makespan / optimum - 1``, in %) plus how many instances it solved
    to proven optimality. ``full``/``config`` are accepted for driver
    signature parity; the instance sizes are intrinsically capped by the
    solver, so the corpus knobs do not grow this table.
    """
    import math

    from repro.api import ScheduleRequest, solve_batch
    from repro.core.exact import DEFAULT_MAX_TASKS
    from repro.generators.families import WORKFLOW_FAMILIES, generate_workflow
    from repro.utils.rng import stable_hash

    families = tuple(families) if families else WORKFLOW_FAMILIES
    size_list = tuple(int(n) for n in sizes) if sizes else (5, 6, 7, 8)
    heuristics = ("daghetpart", "daghetmem", "cpack", "anneal")
    cluster = cluster_by_name("default")

    instances = []
    skipped = []
    for family in families:
        for n in size_list:
            inst_seed = (seed + stable_hash(f"{family}:{n}")) % (2 ** 31)
            wf = generate_workflow(family, n, seed=inst_seed)
            if wf.n_tasks > DEFAULT_MAX_TASKS:
                skipped.append(f"{family}-{n}")
                continue
            instances.append((f"{family}-{n}", wf))
    if progress is not None and skipped:
        progress(f"optimality_gap: skipped oversized {', '.join(skipped)}")

    requests = [
        ScheduleRequest(workflow=wf, cluster=cluster, algorithm=alg,
                        scale_memory=True,
                        tags={"instance": name, "algorithm_name": alg})
        for name, wf in instances
        for alg in ("exact",) + heuristics
    ]
    results = solve_batch(requests, parallel=parallel)

    by_instance: Dict[str, Dict[str, object]] = {}
    for req, res in zip(requests, results):
        by_instance.setdefault(req.tags["instance"], {})[req.algorithm] = res

    gaps: Dict[str, List[float]] = {alg: [] for alg in heuristics}
    optimal_counts: Dict[str, int] = {alg: 0 for alg in heuristics}
    attempted: Dict[str, int] = {alg: 0 for alg in heuristics}
    for name, _ in instances:
        per_alg = by_instance[name]
        exact_res = per_alg["exact"]
        if not exact_res.success:
            continue  # infeasible instance: no optimum to compare against
        optimum = exact_res.makespan
        for alg in heuristics:
            res = per_alg[alg]
            if not res.success:
                continue
            attempted[alg] += 1
            gap = res.makespan / optimum - 1.0
            gaps[alg].append(gap)
            if gap <= 1e-9:
                optimal_counts[alg] += 1

    rows: List[Dict] = []
    for alg in heuristics:
        if not attempted[alg]:
            continue
        display = get_algorithm(alg).display_name
        # shift by +1 so zero gaps survive the geometric mean
        geo_gap = 100.0 * (math.exp(
            sum(math.log(1.0 + g) for g in gaps[alg]) / len(gaps[alg])) - 1.0)
        rows.append({
            "algorithm": display,
            "instances": attempted[alg],
            "optimal": optimal_counts[alg],
            "geo_gap_pct": round(geo_gap, 3),
            "worst_gap_pct": round(100.0 * max(gaps[alg]), 3),
        })
    return {"rows": rows, "records": results}
