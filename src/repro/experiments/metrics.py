"""Aggregation matching the paper: geometric means of per-workflow ratios.

Fig. 3's "relative makespan" is "the ratio of makespans by DagHetPart and
DagHetMem, in %, ... geometric mean over the ratios of each workflow". A
ratio only exists where *both* algorithms succeeded; other instances are
excluded (the paper counts them separately in Section 5.2.2).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.experiments.runner import RunRecord


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; 0 and inf values are rejected (caller filters)."""
    vals = list(values)
    if not vals:
        return float("nan")
    if any(v <= 0 or math.isinf(v) for v in vals):
        raise ValueError("geometric mean requires finite positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _pair_up(records: Iterable[RunRecord]) -> Dict[Tuple[str, str, float], Dict[str, RunRecord]]:
    """Group records of the same (instance, cluster, bandwidth) by algorithm."""
    pairs: Dict[Tuple[str, str, float], Dict[str, RunRecord]] = {}
    for rec in records:
        pairs.setdefault((rec.instance, rec.cluster, rec.bandwidth), {})[rec.algorithm] = rec
    return pairs


def makespan_ratios(records: Iterable[RunRecord],
                    numerator: str = "DagHetPart",
                    denominator: str = "DagHetMem") -> List[Tuple[RunRecord, float]]:
    """Per-instance ratio numerator/denominator where both succeeded.

    Returns (numerator record, ratio) pairs so callers can group by any
    record attribute.
    """
    out: List[Tuple[RunRecord, float]] = []
    for algs in _pair_up(records).values():
        num = algs.get(numerator)
        den = algs.get(denominator)
        if num is None or den is None or not (num.success and den.success):
            continue
        if den.makespan <= 0:
            continue
        out.append((num, num.makespan / den.makespan))
    return out


def relative_makespan_by(records: Iterable[RunRecord],
                         key: Callable[[RunRecord], Hashable],
                         numerator: str = "DagHetPart",
                         denominator: str = "DagHetMem") -> Dict[Hashable, float]:
    """Geometric-mean relative makespan (in %) grouped by ``key``."""
    grouped: Dict[Hashable, List[float]] = {}
    for rec, ratio in makespan_ratios(records, numerator, denominator):
        grouped.setdefault(key(rec), []).append(ratio)
    return {k: 100.0 * geometric_mean(v) for k, v in grouped.items()}


def aggregate_by(records: Iterable[RunRecord],
                 key: Callable[[RunRecord], Hashable],
                 value: Callable[[RunRecord], float],
                 agg: str = "geomean") -> Dict[Hashable, float]:
    """Aggregate any record attribute by group (geomean / mean / max / sum)."""
    grouped: Dict[Hashable, List[float]] = {}
    for rec in records:
        v = value(rec)
        if math.isinf(v) or math.isnan(v):
            continue
        grouped.setdefault(key(rec), []).append(v)
    if agg == "geomean":
        return {k: geometric_mean([x for x in v if x > 0]) for k, v in grouped.items()}
    if agg == "mean":
        return {k: sum(v) / len(v) for k, v in grouped.items()}
    if agg == "max":
        return {k: max(v) for k, v in grouped.items()}
    if agg == "sum":
        return {k: sum(v) for k, v in grouped.items()}
    raise ValueError(f"unknown aggregation {agg!r}")


def success_counts(records: Iterable[RunRecord]) -> Dict[Tuple[str, str], Tuple[int, int]]:
    """(category, algorithm) -> (successes, attempts) — Section 5.2.2."""
    out: Dict[Tuple[str, str], List[int]] = {}
    for rec in records:
        key = (rec.category, rec.algorithm)
        counts = out.setdefault(key, [0, 0])
        counts[1] += 1
        if rec.success:
            counts[0] += 1
    return {k: (v[0], v[1]) for k, v in out.items()}
