"""Plain-text rendering of experiment results (the "figures" as tables)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_table(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None,
                 title: str = "", floatfmt: str = "{:.2f}") -> str:
    """Render dict rows as an aligned ASCII table.

    Column order follows ``columns`` or the first row's key order. Floats
    go through ``floatfmt``; everything else through ``str``.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    rendered = [[cell(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None,
                title: str = "", floatfmt: str = "{:.2f}") -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, columns=columns, title=title, floatfmt=floatfmt))
