"""Workflow transformations used by the experiment harness.

* :func:`scale_work` — the 4x computational-demand experiment (Sec. 5.2.4);
* :func:`normalize_memory_to` — the paper normalizes real-workflow memory
  weights "to the maximum size of 192 to make sure they fit" (Sec. 5.1.2);
* :func:`induced_subworkflow` — block extraction for the partitioner and the
  memDag requirement computation;
* :func:`merge_linear_chains` — the pseudo-task cleanup the paper applies to
  nextflow exports (internal chain nodes collapsed).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional, Set

from repro.workflow.graph import Workflow

Node = Hashable


def scale_work(wf: Workflow, factor: float, name: Optional[str] = None) -> Workflow:
    """Return a copy with every ``w_u`` multiplied by ``factor``."""
    out = wf.copy(name or f"{wf.name}-work{factor:g}x")
    for u in out.tasks():
        out.set_work(u, wf.work(u) * factor)
    return out


def scale_memory(wf: Workflow, factor: float, name: Optional[str] = None) -> Workflow:
    """Return a copy with every ``m_u`` and edge cost multiplied by ``factor``.

    Edge costs scale together with task memory because both occupy RAM in
    the model; scaling only ``m_u`` would silently change the
    memory-to-communication balance.
    """
    out = Workflow(name or f"{wf.name}-mem{factor:g}x")
    for u in wf.tasks():
        out.add_task(u, wf.work(u), wf.memory(u) * factor)
    for u, v, c in wf.edges():
        out.add_edge(u, v, c * factor)
    return out


def normalize_memory_to(wf: Workflow, max_requirement: float, name: Optional[str] = None) -> Workflow:
    """Scale memory weights so the largest task requirement equals ``max_requirement``.

    Mirrors the paper's normalization of real workflows to the largest node
    memory (192). No-op when the workflow already fits.
    """
    peak = wf.max_task_requirement()
    if peak <= max_requirement or peak == 0.0:
        return wf.copy(name)
    return scale_memory(wf, max_requirement / peak, name or f"{wf.name}-norm{max_requirement:g}")


def induced_subworkflow(wf: Workflow, nodes: Iterable[Node], name: str = "block") -> Workflow:
    """Induced sub-DAG on ``nodes`` with internal edges only.

    External edges are intentionally dropped here; block-level memory
    accounting of cut edges is handled by
    :func:`repro.memdag.requirement.block_requirement`, which receives the
    full workflow plus the block set.
    """
    node_set: Set[Node] = set(nodes)
    sub = Workflow(name)
    for u in wf.tasks():
        if u in node_set:
            sub.add_task(u, wf.work(u), wf.memory(u))
    for u in sub.tasks():
        for v, c in wf.out_edges(u):
            if v in node_set:
                sub.add_edge(u, v, c)
    return sub


def relabel_tasks(wf: Workflow, mapping: Optional[Dict[Node, Node]] = None,
                  key: Optional[Callable[[Node], Node]] = None) -> Workflow:
    """Relabel tasks via an explicit ``mapping`` or a ``key`` function."""
    if (mapping is None) == (key is None):
        raise ValueError("provide exactly one of 'mapping' or 'key'")
    fn = (lambda u: mapping[u]) if mapping is not None else key
    out = Workflow(wf.name)
    seen: Set[Node] = set()
    for u in wf.tasks():
        new = fn(u)
        if new in seen:
            raise ValueError(f"relabeling collides on {new!r}")
        seen.add(new)
        out.add_task(new, wf.work(u), wf.memory(u))
    for u, v, c in wf.edges():
        out.add_edge(fn(u), fn(v), c)
    return out


def merge_linear_chains(wf: Workflow, protect: Optional[Set[Node]] = None) -> Workflow:
    """Collapse maximal linear chains ``a -> b -> c`` into single tasks.

    A task is absorbed into its predecessor when it has exactly one parent
    and that parent has exactly one child. Work and memory weights are
    summed; the chain's internal edge cost is added to the merged task's
    memory (the file still exists, it just never leaves the node). Used to
    strip nextflow pseudo-task chains from exported DAGs.
    """
    protect = protect or set()
    out = wf.copy(f"{wf.name}-chained")
    changed = True
    while changed:
        changed = False
        for v in list(out.tasks()):
            if v in protect:
                continue
            parents = list(out.parents(v))
            if len(parents) != 1:
                continue
            u = parents[0]
            if out.out_degree(u) != 1 or u in protect:
                continue
            cost_uv = out.edge_cost(u, v)
            out.set_work(u, out.work(u) + out.work(v))
            out.set_memory(u, out.memory(u) + out.memory(v) + cost_uv)
            for w, c in list(out.out_edges(v)):
                out.add_edge(u, w, c)
            out.remove_task(v)
            changed = True
    return out
