"""Immutable flat-array (CSR) view of a :class:`Workflow`.

The dict-of-dict :class:`~repro.workflow.graph.Workflow` is the right
structure for *construction and mutation*; the numeric kernels
(:mod:`repro.core.kernels`) want the opposite trade-off: an immutable,
cache-friendly view they can sweep with vectorized passes. A
:class:`CompiledWorkflow` is that view — built once per mutation epoch
(see :meth:`Workflow.compiled`), or emitted *directly* by the array-native
generators (:mod:`repro.generators.synthetic_arrays`) without ever
materializing the dicts, which is how million-task instances stay cheap.

Layout
------
Tasks are interned to dense indices ``0..n-1`` in the workflow's
insertion order (``nodes[i]`` is the label, ``index[label]`` the inverse).
Adjacency is stored twice in CSR form::

    out_indptr[i] : out_indptr[i+1]  ->  slice of out_indices / out_costs
    in_indptr[i]  : in_indptr[i+1]   ->  slice of in_indices / in_costs

with per-node neighbour order equal to the dicts' insertion order, so any
per-node left-to-right reduction over a CSR row reproduces the dict
iteration bit for bit. ``work`` / ``memory`` / ``requirement`` are dense
float64 vectors; ``topo_order`` and ``level`` come from a vectorized
level-peeling Kahn pass that also proves acyclicity.

Numerical contract
------------------
Everything derived here must equal the dict-based code bit for bit:
``requirement`` uses :func:`numpy.bincount` (scan-order accumulation, the
same left-to-right association as ``sum()`` over the dicts) — never
``np.sum``/``reduceat``, whose pairwise summation rounds differently.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.utils.errors import CyclicWorkflowError

Node = Hashable

try:  # soft dependency: everything here needs numpy, nothing else does
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None


def _require_numpy():
    if np is None:  # pragma: no cover
        raise ImportError(
            "CompiledWorkflow requires numpy; install it or stay on the "
            "dict-based Workflow API (REPRO_KERNEL=reference)")
    return np


class CompiledWorkflow:
    """Frozen CSR snapshot of a workflow DAG (see module docstring).

    Construct via :meth:`compile` (from a ``Workflow``) or
    :meth:`from_arrays` (array-native, used by the synthetic generators).
    The instance is immutable by convention: kernels only read it.
    """

    __slots__ = ("name", "n_tasks", "n_edges", "nodes", "index",
                 "work", "memory",
                 "out_indptr", "out_indices", "out_costs",
                 "in_indptr", "in_indices", "in_costs",
                 "topo_order", "level", "n_levels",
                 "_requirement")

    def __init__(self, *, name, nodes, index, work, memory,
                 out_indptr, out_indices, out_costs,
                 in_indptr, in_indices, in_costs,
                 topo_order, level, n_levels):
        self.name = name
        self.n_tasks = len(nodes)
        self.n_edges = int(len(out_indices))
        self.nodes = nodes
        self.index = index
        self.work = work
        self.memory = memory
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self.out_costs = out_costs
        self.in_indptr = in_indptr
        self.in_indices = in_indices
        self.in_costs = in_costs
        self.topo_order = topo_order
        self.level = level
        self.n_levels = n_levels
        self._requirement = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def compile(cls, wf) -> "CompiledWorkflow":
        """Snapshot ``wf`` into flat arrays; raises on a cyclic graph."""
        _require_numpy()
        nodes: List[Node] = list(wf.tasks())
        n = len(nodes)
        index: Dict[Node, int] = {u: i for i, u in enumerate(nodes)}
        work = np.fromiter((wf.work(u) for u in nodes), dtype=np.float64,
                           count=n)
        memory = np.fromiter((wf.memory(u) for u in nodes), dtype=np.float64,
                             count=n)

        m = wf.n_edges
        out_indptr = np.zeros(n + 1, dtype=np.intp)
        out_indices = np.empty(m, dtype=np.intp)
        out_costs = np.empty(m, dtype=np.float64)
        pos = 0
        for i, u in enumerate(nodes):
            for v, c in wf.out_edges(u):
                out_indices[pos] = index[v]
                out_costs[pos] = c
                pos += 1
            out_indptr[i + 1] = pos

        in_indptr = np.zeros(n + 1, dtype=np.intp)
        in_indices = np.empty(m, dtype=np.intp)
        in_costs = np.empty(m, dtype=np.float64)
        pos = 0
        for i, u in enumerate(nodes):
            for p, c in wf.in_edges(u):
                in_indices[pos] = index[p]
                in_costs[pos] = c
                pos += 1
            in_indptr[i + 1] = pos

        topo_order, level, n_levels = _peel_levels(
            n, out_indptr, out_indices, in_indptr, in_indices)
        if topo_order is None:
            raise CyclicWorkflowError(wf.find_cycle())
        return cls(name=wf.name, nodes=nodes, index=index, work=work,
                   memory=memory, out_indptr=out_indptr,
                   out_indices=out_indices, out_costs=out_costs,
                   in_indptr=in_indptr, in_indices=in_indices,
                   in_costs=in_costs, topo_order=topo_order, level=level,
                   n_levels=n_levels)

    @classmethod
    def from_arrays(cls, src, dst, cost, work, memory, *,
                    name: str = "compiled",
                    nodes: Optional[Sequence[Node]] = None,
                    ) -> "CompiledWorkflow":
        """Build directly from edge/weight arrays — no dicts materialized.

        ``src``/``dst`` are integer task indices into ``work``/``memory``;
        parallel ``(u, v)`` edges are collapsed by summing their costs,
        matching :meth:`Workflow.add_edge`. ``nodes`` optionally names the
        tasks (default: their indices). Raises on cycles and self-loops.
        """
        _require_numpy()
        src = np.asarray(src, dtype=np.intp)
        dst = np.asarray(dst, dtype=np.intp)
        cost = np.asarray(cost, dtype=np.float64)
        work = np.asarray(work, dtype=np.float64)
        memory = np.asarray(memory, dtype=np.float64)
        n = int(work.shape[0])
        if memory.shape[0] != n:
            raise ValueError("work and memory must have the same length")
        if not (src.shape[0] == dst.shape[0] == cost.shape[0]):
            raise ValueError("src, dst and cost must have the same length")
        if src.size and (src.min() < 0 or src.max() >= n
                         or dst.min() < 0 or dst.max() >= n):
            raise ValueError("edge endpoints out of range")
        if np.any(src == dst):
            bad = int(src[src == dst][0])
            raise CyclicWorkflowError([bad], f"self-loop on task {bad}")

        # collapse parallel edges (sum costs in first-occurrence order),
        # then group by source, preserving first-occurrence order per node
        if src.size:
            key = src * n + dst
            uniq, inverse = np.unique(key, return_inverse=True)
            summed = np.bincount(inverse, weights=cost,
                                 minlength=uniq.shape[0])
            first = np.full(uniq.shape[0], src.size, dtype=np.intp)
            np.minimum.at(first, inverse, np.arange(src.size, dtype=np.intp))
            keep = np.argsort(first, kind="stable")
            e_src = (uniq // n)[keep]
            e_dst = (uniq % n)[keep]
            e_cost = summed[keep]
            order = np.argsort(e_src, kind="stable")
            e_src, e_dst, e_cost = e_src[order], e_dst[order], e_cost[order]
        else:
            e_src = np.empty(0, dtype=np.intp)
            e_dst = np.empty(0, dtype=np.intp)
            e_cost = np.empty(0, dtype=np.float64)
        m = int(e_src.shape[0])

        out_indptr = np.zeros(n + 1, dtype=np.intp)
        np.add.at(out_indptr, e_src + 1, 1)
        out_indptr = np.cumsum(out_indptr)
        out_indices = e_dst.astype(np.intp, copy=True)
        out_costs = e_cost.astype(np.float64, copy=True)

        rev = np.argsort(e_dst, kind="stable")
        in_indptr = np.zeros(n + 1, dtype=np.intp)
        np.add.at(in_indptr, e_dst + 1, 1)
        in_indptr = np.cumsum(in_indptr)
        in_indices = e_src[rev].astype(np.intp, copy=True)
        in_costs = e_cost[rev].astype(np.float64, copy=True)

        node_list = list(nodes) if nodes is not None else list(range(n))
        if len(node_list) != n:
            raise ValueError(f"expected {n} node labels, got {len(node_list)}")
        index = {u: i for i, u in enumerate(node_list)}

        topo_order, level, n_levels = _peel_levels(
            n, out_indptr, out_indices, in_indptr, in_indices)
        if topo_order is None:
            raise CyclicWorkflowError(
                message=f"edge arrays of {name!r} contain a cycle")
        return cls(name=name, nodes=node_list, index=index, work=work,
                   memory=memory, out_indptr=out_indptr,
                   out_indices=out_indices, out_costs=out_costs,
                   in_indptr=in_indptr, in_indices=in_indices,
                   in_costs=in_costs, topo_order=topo_order, level=level,
                   n_levels=n_levels)

    # ------------------------------------------------------------------
    # derived vectors
    # ------------------------------------------------------------------
    def requirements(self):
        """``r_u = sum_in c + sum_out c + m_u`` for every task, vectorized.

        Bit-for-bit equal to :meth:`Workflow.task_requirement` for every
        node: ``bincount`` accumulates in scan order, i.e. the same
        left-to-right association as ``sum()`` over the adjacency dicts.
        """
        if self._requirement is None:
            n = self.n_tasks
            if self.out_costs.size:
                out_ids = np.repeat(np.arange(n, dtype=np.intp),
                                    np.diff(self.out_indptr))
                out_sum = np.bincount(out_ids, weights=self.out_costs,
                                      minlength=n)
                in_ids = np.repeat(np.arange(n, dtype=np.intp),
                                   np.diff(self.in_indptr))
                in_sum = np.bincount(in_ids, weights=self.in_costs,
                                     minlength=n)
            else:
                out_sum = np.zeros(n)
                in_sum = np.zeros(n)
            self._requirement = in_sum + out_sum + self.memory
        return self._requirement

    def total_work(self) -> float:
        return float(sum(self.work.tolist()))

    def max_task_requirement(self) -> float:
        if self.n_tasks == 0:
            return 0.0
        return float(self.requirements().max())

    # ------------------------------------------------------------------
    # interoperability
    # ------------------------------------------------------------------
    def iter_edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Stream ``(u, v, cost)`` labels without building any dict."""
        nodes = self.nodes
        indptr, indices, costs = self.out_indptr, self.out_indices, self.out_costs
        for i in range(self.n_tasks):
            u = nodes[i]
            for e in range(indptr[i], indptr[i + 1]):
                yield u, nodes[indices[e]], float(costs[e])

    def to_workflow(self):
        """Materialize the dict-based :class:`Workflow` (small graphs only)."""
        from repro.workflow.graph import Workflow

        wf = Workflow(self.name)
        work, memory = self.work.tolist(), self.memory.tolist()
        for i, u in enumerate(self.nodes):
            wf.add_task(u, work[i], memory[i])
        for u, v, c in self.iter_edges():
            wf.add_edge(u, v, c)
        return wf

    def __len__(self) -> int:
        return self.n_tasks

    def __repr__(self) -> str:
        return (f"CompiledWorkflow({self.name!r}, tasks={self.n_tasks}, "
                f"edges={self.n_edges}, levels={self.n_levels})")


def _peel_levels(n, out_indptr, out_indices, in_indptr, in_indices):
    """Vectorized Kahn peeling from the sinks, one whole level per round.

    Returns ``(topo_order, level, n_levels)`` where ``level[v]`` is the
    longest path (in edges) from ``v`` to a sink, and ``topo_order`` lists
    vertices by *decreasing* level (i.e. a valid topological order of the
    DAG, sinks last). Returns ``(None, None, 0)`` on a cycle.
    """
    if n == 0:
        return (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.int64), 0)
    remaining = np.diff(out_indptr).astype(np.int64)
    level = np.zeros(n, dtype=np.int64)
    frontier = np.nonzero(remaining == 0)[0]
    peeled_chunks = []
    current = 0
    n_done = 0
    while frontier.size:
        peeled_chunks.append(frontier)
        level[frontier] = current
        n_done += frontier.size
        if n_done == n:
            break
        # decrement the out-degree of every parent of the frontier
        counts = in_indptr[frontier + 1] - in_indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        starts = in_indptr[frontier]
        take = (np.repeat(starts - np.concatenate(
            ([0], np.cumsum(counts)[:-1])), counts)
            + np.arange(total, dtype=np.intp))
        parents = in_indices[take]
        dec = np.bincount(parents, minlength=n)
        newly = np.nonzero((remaining > 0) & (remaining == dec))[0]
        remaining -= dec
        frontier = newly
        current += 1
    if n_done != n:
        return (None, None, 0)
    n_levels = current + 1
    # decreasing level = topological order (parents strictly above children)
    order = np.concatenate(peeled_chunks[::-1]) if peeled_chunks \
        else np.empty(0, dtype=np.intp)
    return (order.astype(np.intp), level, n_levels)
