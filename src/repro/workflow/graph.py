"""The :class:`Workflow` DAG with task and edge weights.

Implementation notes
--------------------
The class stores its own adjacency dictionaries rather than wrapping
``networkx.DiGraph``. Profiling the heuristics on 30k-task workflows showed
the hot paths are (a) repeated parent/children iteration during traversals
and (b) quotient-graph rebuilds; plain dicts with insertion-ordered
iteration are both faster and give deterministic iteration order without a
``sort`` on every query. Conversion helpers to/from networkx are provided
for interoperability and for tests that cross-check against networkx.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.utils.errors import CyclicWorkflowError

Node = Hashable


class Workflow:
    """A directed acyclic workflow graph (Section 3.1 of the paper).

    Vertices (tasks) carry:

    * ``work``   — ``w_u``, the number of operations (makespan weight);
    * ``memory`` — ``m_u``, the memory needed by the computation itself.

    Edges ``(u, v)`` carry ``cost`` — ``c_{u,v}``, the size of the files
    written by ``u`` and read by ``v``.

    The *task memory requirement* is
    ``r_u = sum_in c + sum_out c + m_u`` (:meth:`task_requirement`).

    Acyclicity is **not** enforced on every ``add_edge`` (that would make
    construction quadratic); call :meth:`check_acyclic` or
    :func:`repro.workflow.validation.validate_workflow` after construction.
    All mutating generators in this library do so.
    """

    __slots__ = ("name", "_work", "_memory", "_succ", "_pred", "_n_edges",
                 "_in_total", "_out_total", "_version", "_compiled")

    def __init__(self, name: str = "workflow"):
        self.name = name
        self._work: Dict[Node, float] = {}
        self._memory: Dict[Node, float] = {}
        self._succ: Dict[Node, Dict[Node, float]] = {}
        self._pred: Dict[Node, Dict[Node, float]] = {}
        self._n_edges = 0
        # per-node in/out-cost totals, memoized lazily and dropped on the
        # mutations that touch them (the partitioner calls
        # task_requirement for every node on every k' of the sweep)
        self._in_total: Dict[Node, float] = {}
        self._out_total: Dict[Node, float] = {}
        #: bumped on every mutation; keys the compiled-view cache
        self._version = 0
        self._compiled = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        self._version += 1
        self._compiled = None

    def add_task(self, u: Node, work: float = 1.0, memory: float = 0.0) -> None:
        """Add task ``u``; re-adding updates its weights in place."""
        if u not in self._work:
            self._succ[u] = {}
            self._pred[u] = {}
        self._work[u] = float(work)
        self._memory[u] = float(memory)
        self._touch()

    def add_edge(self, u: Node, v: Node, cost: float = 0.0) -> None:
        """Add edge ``(u, v)`` with file size ``cost``.

        Endpoints missing from the graph are created with default weights.
        Parallel edges are collapsed by summing their costs, matching the
        quotient-graph edge-weight definition.
        """
        if u == v:
            raise CyclicWorkflowError([u], f"self-loop on task {u!r}")
        if u not in self._work:
            self.add_task(u)
        if v not in self._work:
            self.add_task(v)
        if v in self._succ[u]:
            self._succ[u][v] += float(cost)
            self._pred[v][u] += float(cost)
        else:
            self._succ[u][v] = float(cost)
            self._pred[v][u] = float(cost)
            self._n_edges += 1
        self._out_total.pop(u, None)
        self._in_total.pop(v, None)
        self._touch()

    def remove_task(self, u: Node) -> None:
        """Remove task ``u`` and all incident edges."""
        for v in list(self._succ[u]):
            del self._pred[v][u]
            self._in_total.pop(v, None)
            self._n_edges -= 1
        for p in list(self._pred[u]):
            del self._succ[p][u]
            self._out_total.pop(p, None)
            self._n_edges -= 1
        del self._succ[u], self._pred[u], self._work[u], self._memory[u]
        self._in_total.pop(u, None)
        self._out_total.pop(u, None)
        self._touch()

    def remove_edge(self, u: Node, v: Node) -> None:
        del self._succ[u][v]
        del self._pred[v][u]
        self._n_edges -= 1
        self._out_total.pop(u, None)
        self._in_total.pop(v, None)
        self._touch()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self._work)

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def __len__(self) -> int:
        return len(self._work)

    def __contains__(self, u: Node) -> bool:
        return u in self._work

    def tasks(self) -> Iterator[Node]:
        return iter(self._work)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        for u, nbrs in self._succ.items():
            for v, c in nbrs.items():
                yield u, v, c

    def work(self, u: Node) -> float:
        return self._work[u]

    def memory(self, u: Node) -> float:
        return self._memory[u]

    def set_work(self, u: Node, work: float) -> None:
        if u not in self._work:
            raise KeyError(u)
        self._work[u] = float(work)
        self._touch()

    def set_memory(self, u: Node, memory: float) -> None:
        if u not in self._memory:
            raise KeyError(u)
        self._memory[u] = float(memory)
        self._touch()

    def edge_cost(self, u: Node, v: Node) -> float:
        return self._succ[u][v]

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._succ and v in self._succ[u]

    def children(self, u: Node) -> Iterator[Node]:
        """Successor tasks ``C_u``."""
        return iter(self._succ[u])

    def parents(self, u: Node) -> Iterator[Node]:
        """Predecessor tasks ``Pi_u``."""
        return iter(self._pred[u])

    def out_edges(self, u: Node) -> Iterator[Tuple[Node, float]]:
        return iter(self._succ[u].items())

    def in_edges(self, u: Node) -> Iterator[Tuple[Node, float]]:
        return iter(self._pred[u].items())

    def out_degree(self, u: Node) -> int:
        return len(self._succ[u])

    def in_degree(self, u: Node) -> int:
        return len(self._pred[u])

    def sources(self) -> List[Node]:
        """Tasks without parents."""
        return [u for u in self._work if not self._pred[u]]

    def targets(self) -> List[Node]:
        """Tasks without children."""
        return [u for u in self._work if not self._succ[u]]

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------
    def in_cost(self, u: Node) -> float:
        """Total size of ``u``'s input files (memoized per node).

        The memo is recomputed — never adjusted in place — so the value is
        always the exact left-to-right sum over the adjacency dict, no
        matter how many mutations happened in between.
        """
        total = self._in_total.get(u)
        if total is None:
            total = sum(self._pred[u].values())
            self._in_total[u] = total
        return total

    def out_cost(self, u: Node) -> float:
        """Total size of ``u``'s output files (memoized per node)."""
        total = self._out_total.get(u)
        if total is None:
            total = sum(self._succ[u].values())
            self._out_total[u] = total
        return total

    def task_requirement(self, u: Node) -> float:
        """``r_u = sum_in c + sum_out c + m_u`` (Section 3.1); O(1) amortized."""
        return self.in_cost(u) + self.out_cost(u) + self._memory[u]

    def total_work(self) -> float:
        return sum(self._work.values())

    def total_edge_cost(self) -> float:
        return sum(c for _, _, c in self.edges())

    def max_task_requirement(self) -> float:
        """Largest single-task requirement — a lower bound on any usable memory."""
        if not self._work:
            return 0.0
        return max(self.task_requirement(u) for u in self._work)

    # ------------------------------------------------------------------
    # compiled view
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; two equal versions imply an unchanged graph."""
        return self._version

    def compiled(self):
        """The immutable :class:`~repro.workflow.compiled.CompiledWorkflow`.

        Compiled once per mutation epoch and cached; any mutation drops
        the cache, so the view can never go stale. Requires numpy — use
        :meth:`repro.workflow.compiled.CompiledWorkflow.compile` directly
        to control caching.
        """
        if self._compiled is None:
            from repro.workflow.compiled import CompiledWorkflow
            self._compiled = CompiledWorkflow.compile(self)
        return self._compiled

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Node]:
        """Kahn's algorithm; deterministic (insertion-order tie-breaking).

        Raises :class:`CyclicWorkflowError` if the graph has a cycle.
        """
        indeg = {u: len(self._pred[u]) for u in self._work}
        ready = [u for u in self._work if indeg[u] == 0]
        order: List[Node] = []
        head = 0
        while head < len(ready):
            u = ready[head]
            head += 1
            order.append(u)
            for v in self._succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
        if len(order) != len(self._work):
            raise CyclicWorkflowError(self.find_cycle())
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except CyclicWorkflowError:
            return False

    def check_acyclic(self) -> None:
        """Raise :class:`CyclicWorkflowError` if a cycle exists."""
        self.topological_order()

    def find_cycle(self) -> Optional[List[Node]]:
        """Return the vertices of one directed cycle, or None.

        Iterative DFS with an explicit stack (30k-task graphs overflow the
        recursion limit otherwise).
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {u: WHITE for u in self._work}
        parent: Dict[Node, Optional[Node]] = {}
        for root in self._work:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[Node, Iterator[Node]]] = [(root, iter(self._succ[root]))]
            color[root] = GRAY
            parent[root] = None
            while stack:
                u, it = stack[-1]
                advanced = False
                for v in it:
                    if color[v] == WHITE:
                        color[v] = GRAY
                        parent[v] = u
                        stack.append((v, iter(self._succ[v])))
                        advanced = True
                        break
                    if color[v] == GRAY:
                        cycle = [v, u]
                        x = parent[u]
                        while x is not None and x != v:
                            cycle.append(x)
                            x = parent[x]
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[u] = BLACK
                    stack.pop()
        return None

    def copy(self, name: Optional[str] = None) -> "Workflow":
        clone = Workflow(name or self.name)
        for u in self._work:
            clone.add_task(u, self._work[u], self._memory[u])
        for u, v, c in self.edges():
            clone.add_edge(u, v, c)
        return clone

    # ------------------------------------------------------------------
    # interoperability
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` with the same attribute names."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for u in self._work:
            g.add_node(u, work=self._work[u], memory=self._memory[u])
        for u, v, c in self.edges():
            g.add_edge(u, v, cost=c)
        return g

    @classmethod
    def from_networkx(cls, g, name: Optional[str] = None) -> "Workflow":
        """Import from a ``networkx.DiGraph``.

        Missing ``work``/``memory``/``cost`` attributes default to 1/0/0.
        """
        wf = cls(name or (g.graph.get("name") if hasattr(g, "graph") else None) or "workflow")
        for u, data in g.nodes(data=True):
            wf.add_task(u, data.get("work", 1.0), data.get("memory", 0.0))
        for u, v, data in g.edges(data=True):
            wf.add_edge(u, v, data.get("cost", 0.0))
        return wf

    def __repr__(self) -> str:
        return f"Workflow({self.name!r}, tasks={self.n_tasks}, edges={self.n_edges})"

    # ------------------------------------------------------------------
    # pickling (process execution backends ship workflows to workers);
    # caches are per-process scratch and are not serialized
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "name": self.name,
            "_work": self._work,
            "_memory": self._memory,
            "_succ": self._succ,
            "_pred": self._pred,
            "_n_edges": self._n_edges,
        }

    def __setstate__(self, state) -> None:
        for key, value in state.items():
            setattr(self, key, value)
        self._in_total = {}
        self._out_total = {}
        self._version = 0
        self._compiled = None
