"""Workflow model: weighted DAGs of tasks with memory and communication costs.

The central class is :class:`~repro.workflow.graph.Workflow`, a directed
acyclic graph whose vertices carry a work weight ``w_u`` (operation count)
and a memory weight ``m_u``, and whose edges carry a file size ``c_{u,v}``
(Section 3.1 of the paper). All higher layers — the memDag traversal engine,
the acyclic partitioner and the mapping heuristics — consume this class.
"""

from repro.workflow.graph import Workflow
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.analysis import (
    critical_path,
    critical_path_length,
    topological_levels,
    fanout_statistics,
    WorkflowStats,
    workflow_statistics,
)
from repro.workflow.validation import validate_workflow
from repro.workflow.io import (
    workflow_to_dict,
    workflow_from_dict,
    save_workflow_json,
    load_workflow_json,
    workflow_to_dot,
    workflow_from_dot,
)
from repro.workflow.transform import (
    scale_work,
    scale_memory,
    normalize_memory_to,
    induced_subworkflow,
    relabel_tasks,
    merge_linear_chains,
)

__all__ = [
    "Workflow",
    "WorkflowBuilder",
    "critical_path",
    "critical_path_length",
    "topological_levels",
    "fanout_statistics",
    "WorkflowStats",
    "workflow_statistics",
    "validate_workflow",
    "workflow_to_dict",
    "workflow_from_dict",
    "save_workflow_json",
    "load_workflow_json",
    "workflow_to_dot",
    "workflow_from_dot",
    "scale_work",
    "scale_memory",
    "normalize_memory_to",
    "induced_subworkflow",
    "relabel_tasks",
    "merge_linear_chains",
]
