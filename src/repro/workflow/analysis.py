"""Structural analysis of workflows: critical paths, levels, fan-out.

The paper classifies workflow families as "fanned-out" (BWA, BLAST,
Seismology) vs "chain-like" (SoyKB, Epigenomics) and correlates this with
DagHetPart's improvement (Sections 5.2.5-5.2.6). The statistics here back
those groupings in the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.workflow.graph import Workflow

Node = Hashable


def topological_levels(wf: Workflow) -> Dict[Node, int]:
    """Longest-path depth of each task from the sources (level of a source is 0)."""
    levels: Dict[Node, int] = {}
    for u in wf.topological_order():
        preds = list(wf.parents(u))
        levels[u] = 0 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def critical_path(wf: Workflow, beta: float = 1.0) -> Tuple[List[Node], float]:
    """Return the work+communication critical path of the raw workflow.

    Path value of a task ``u`` is ``w_u + max over children (c_{u,v}/beta +
    value(v))`` — the speed-1 bottom weight of Section 3.3 applied to the
    unpartitioned graph. Returns the path (source to sink) and its length.
    """
    order = wf.topological_order()
    value: Dict[Node, float] = {}
    best_child: Dict[Node, Node] = {}
    for u in reversed(order):
        best = 0.0
        arg = None
        for v, c in wf.out_edges(u):
            cand = c / beta + value[v]
            if arg is None or cand > best:
                best, arg = cand, v
        value[u] = wf.work(u) + best
        if arg is not None:
            best_child[u] = arg
    if not order:
        return [], 0.0
    start = max(value, key=lambda u: value[u])
    path = [start]
    while path[-1] in best_child:
        path.append(best_child[path[-1]])
    return path, value[start]


def critical_path_length(wf: Workflow, beta: float = 1.0) -> float:
    """Length of the critical path (lower bound on any makespan at speed 1)."""
    return critical_path(wf, beta)[1]


def fanout_statistics(wf: Workflow) -> Dict[str, float]:
    """Degree-based fan-out metrics used to classify workflow families."""
    if wf.n_tasks == 0:
        return {"max_out_degree": 0.0, "mean_out_degree": 0.0, "width": 0.0}
    out_degrees = [wf.out_degree(u) for u in wf.tasks()]
    levels = topological_levels(wf)
    width_per_level: Dict[int, int] = {}
    for lvl in levels.values():
        width_per_level[lvl] = width_per_level.get(lvl, 0) + 1
    return {
        "max_out_degree": float(max(out_degrees)),
        "mean_out_degree": float(sum(out_degrees)) / len(out_degrees),
        "width": float(max(width_per_level.values())),
    }


@dataclass(frozen=True)
class WorkflowStats:
    """Summary record printed by the experiment reports."""

    name: str
    n_tasks: int
    n_edges: int
    n_sources: int
    n_targets: int
    total_work: float
    total_edge_cost: float
    max_task_requirement: float
    depth: int
    width: float
    mean_out_degree: float


def workflow_statistics(wf: Workflow) -> WorkflowStats:
    """Compute a :class:`WorkflowStats` summary for reporting."""
    fan = fanout_statistics(wf)
    levels = topological_levels(wf) if wf.n_tasks else {}
    return WorkflowStats(
        name=wf.name,
        n_tasks=wf.n_tasks,
        n_edges=wf.n_edges,
        n_sources=len(wf.sources()),
        n_targets=len(wf.targets()),
        total_work=wf.total_work(),
        total_edge_cost=wf.total_edge_cost(),
        max_task_requirement=wf.max_task_requirement(),
        depth=(max(levels.values()) + 1) if levels else 0,
        width=fan["width"],
        mean_out_degree=fan["mean_out_degree"],
    )
