"""Input validation for workflows.

Called by generators after construction and available to users loading
external workflow files. Catches the failure modes that would otherwise
surface as confusing errors deep inside the heuristics.
"""

from __future__ import annotations

from typing import List

from repro.utils.errors import CyclicWorkflowError, ReproError
from repro.workflow.graph import Workflow


class WorkflowValidationError(ReproError):
    """Raised when a workflow violates a model assumption."""

    def __init__(self, problems: List[str]):
        self.problems = problems
        super().__init__("; ".join(problems[:5]) + ("" if len(problems) <= 5 else f" (+{len(problems) - 5} more)"))


def validate_workflow(wf: Workflow, require_single_source: bool = False) -> None:
    """Check the model assumptions of Section 3.1.

    * the graph is a DAG,
    * weights are finite and non-negative (work strictly positive is not
      required — the paper's real workflows use weight 1 for tasks without
      historical data, but zero work is allowed by the model),
    * the graph is non-empty,
    * optionally, there is a single source task (the paper notes the
      makespan maximum "is achieved on the source task" in that case).

    Raises :class:`WorkflowValidationError` or :class:`CyclicWorkflowError`.
    """
    problems: List[str] = []
    if wf.n_tasks == 0:
        raise WorkflowValidationError(["workflow has no tasks"])

    cycle = wf.find_cycle()
    if cycle is not None:
        raise CyclicWorkflowError(cycle)

    for u in wf.tasks():
        w, m = wf.work(u), wf.memory(u)
        if not (w >= 0.0) or w != w or w == float("inf"):
            problems.append(f"task {u!r} has invalid work {w!r}")
        if not (m >= 0.0) or m != m or m == float("inf"):
            problems.append(f"task {u!r} has invalid memory {m!r}")
    for u, v, c in wf.edges():
        if not (c >= 0.0) or c != c or c == float("inf"):
            problems.append(f"edge ({u!r}, {v!r}) has invalid cost {c!r}")

    if require_single_source and len(wf.sources()) != 1:
        problems.append(f"expected a single source, found {len(wf.sources())}")

    if problems:
        raise WorkflowValidationError(problems)
