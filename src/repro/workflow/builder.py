"""Fluent construction of workflow DAGs.

Hand-writing ``add_task``/``add_edge`` calls for fork-join pipelines is
error-prone; the builder names the common patterns:

>>> wf = (WorkflowBuilder("pipeline")
...       .task("ingest", work=10, memory=4)
...       .chain(["decode", "filter"], work=50, memory=8, cost=16)
...       .fan_out("split", ["align0", "align1", "align2"],
...                work=200, memory=24, cost=8)
...       .join(["align0", "align1", "align2"], "merge", cost=4)
...       .link("filter", "split", cost=16)
...       .build())

``build`` validates the result (acyclicity, weight sanity) before
returning it, so malformed pipelines fail at construction, not inside a
scheduler.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.workflow.graph import Workflow
from repro.workflow.validation import validate_workflow

Node = Hashable


class WorkflowBuilder:
    """Incremental workflow construction with pattern helpers.

    All helpers return ``self`` for chaining. Tasks referenced by an edge
    helper must already exist (typo protection); weights given to a
    pattern apply to every task the pattern creates.
    """

    def __init__(self, name: str = "workflow"):
        self._wf = Workflow(name)

    # ------------------------------------------------------------------
    def task(self, name: Node, work: float = 1.0, memory: float = 0.0) -> "WorkflowBuilder":
        """Add a single task (re-adding a name raises)."""
        if name in self._wf:
            raise ValueError(f"task {name!r} already exists")
        self._wf.add_task(name, work, memory)
        return self

    def link(self, u: Node, v: Node, cost: float = 0.0) -> "WorkflowBuilder":
        """Add an edge between two *existing* tasks."""
        self._require(u)
        self._require(v)
        self._wf.add_edge(u, v, cost)
        return self

    # ------------------------------------------------------------------
    def chain(self, names: Sequence[Node], work: float = 1.0, memory: float = 0.0,
              cost: float = 0.0, after: Optional[Node] = None) -> "WorkflowBuilder":
        """A linear pipeline ``names[0] -> names[1] -> ...``.

        ``after`` optionally links an existing task to the chain's head.
        """
        if not names:
            raise ValueError("chain needs at least one task")
        for name in names:
            self.task(name, work, memory)
        for a, b in zip(names, names[1:]):
            self._wf.add_edge(a, b, cost)
        if after is not None:
            self.link(after, names[0], cost)
        return self

    def fan_out(self, source: Node, targets: Sequence[Node], work: float = 1.0,
                memory: float = 0.0, cost: float = 0.0,
                source_exists: bool = False) -> "WorkflowBuilder":
        """``source`` feeding every task in ``targets`` (targets created)."""
        if not source_exists:
            self.task(source, work, memory)
        else:
            self._require(source)
        for t in targets:
            self.task(t, work, memory)
            self._wf.add_edge(source, t, cost)
        return self

    def join(self, sources: Sequence[Node], target: Node, work: float = 1.0,
             memory: float = 0.0, cost: float = 0.0,
             target_exists: bool = False) -> "WorkflowBuilder":
        """Every task in ``sources`` feeding ``target`` (target created)."""
        if not target_exists:
            self.task(target, work, memory)
        else:
            self._require(target)
        for s in sources:
            self._require(s)
            self._wf.add_edge(s, target, cost)
        return self

    def stage(self, prev_stage: Sequence[Node], names: Sequence[Node],
              work: float = 1.0, memory: float = 0.0,
              cost: float = 0.0) -> "WorkflowBuilder":
        """Parallel per-item stage: ``prev_stage[i] -> names[i]``."""
        if len(prev_stage) != len(names):
            raise ValueError("stage requires equal-length task lists")
        for p, n in zip(prev_stage, names):
            self._require(p)
            self.task(n, work, memory)
            self._wf.add_edge(p, n, cost)
        return self

    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> Workflow:
        """Finish and return the workflow (validated by default)."""
        if validate:
            validate_workflow(self._wf)
        return self._wf

    def _require(self, name: Node) -> None:
        if name not in self._wf:
            raise KeyError(f"task {name!r} does not exist yet")
