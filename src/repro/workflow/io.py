"""Workflow serialization: JSON (canonical) and GraphViz DOT (interop).

The paper converts nextflow pipelines to ``.dot`` via ``-with-dag``; the DOT
reader here accepts that flavour (plain ``a -> b`` statements with optional
attribute lists) so externally exported workflows can be loaded directly.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, Union

from repro.workflow.graph import Workflow

PathLike = Union[str, Path]


def workflow_to_dict(wf: Workflow) -> Dict[str, Any]:
    """Serialize to a JSON-compatible dict (tasks, weights, edges)."""
    return {
        "name": wf.name,
        "tasks": [
            {"id": _key(u), "work": wf.work(u), "memory": wf.memory(u)}
            for u in wf.tasks()
        ],
        "edges": [
            {"source": _key(u), "target": _key(v), "cost": c}
            for u, v, c in wf.edges()
        ],
    }


def workflow_from_dict(data: Dict[str, Any]) -> Workflow:
    """Inverse of :func:`workflow_to_dict`."""
    wf = Workflow(data.get("name", "workflow"))
    for t in data["tasks"]:
        wf.add_task(t["id"], t.get("work", 1.0), t.get("memory", 0.0))
    for e in data["edges"]:
        wf.add_edge(e["source"], e["target"], e.get("cost", 0.0))
    return wf


def save_workflow_json(wf: Workflow, path: PathLike) -> None:
    """Write the workflow to ``path`` as indented JSON."""
    Path(path).write_text(json.dumps(workflow_to_dict(wf), indent=1))


def load_workflow_json(path: PathLike) -> Workflow:
    """Read a workflow previously saved with :func:`save_workflow_json`."""
    return workflow_from_dict(json.loads(Path(path).read_text()))


def workflow_to_dot(wf: Workflow) -> str:
    """Render as GraphViz DOT with weights in attribute lists."""
    lines = [f'digraph "{wf.name}" {{']
    for u in wf.tasks():
        lines.append(f'  "{_key(u)}" [work={wf.work(u)}, memory={wf.memory(u)}];')
    for u, v, c in wf.edges():
        lines.append(f'  "{_key(u)}" -> "{_key(v)}" [cost={c}];')
    lines.append("}")
    return "\n".join(lines)


_NODE_RE = re.compile(r'^\s*"?([\w./:-]+)"?\s*(?:\[(.*)\])?\s*;?\s*$')
_EDGE_RE = re.compile(r'^\s*"?([\w./:-]+)"?\s*->\s*"?([\w./:-]+)"?\s*(?:\[(.*)\])?\s*;?\s*$')


def _parse_attrs(text: str) -> Dict[str, float]:
    attrs: Dict[str, float] = {}
    if not text:
        return attrs
    for part in text.split(","):
        if "=" not in part:
            continue
        key, value = part.split("=", 1)
        try:
            attrs[key.strip().strip('"')] = float(value.strip().strip('"'))
        except ValueError:
            continue
    return attrs


def workflow_from_dot(text: str, name: str = "workflow") -> Workflow:
    """Parse a simple DOT digraph (nextflow ``-with-dag`` flavour).

    Recognized attributes: ``work``, ``memory`` on nodes, ``cost``
    (or ``weight``) on edges; everything else is ignored. Unweighted
    elements get the defaults work=1, memory=0, cost=0 — matching the
    paper's handling of tasks without historical data.
    """
    wf = Workflow(name)
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("digraph", "{", "}", "//", "#", "graph", "node", "edge")):
            continue
        m = _EDGE_RE.match(line)
        if m:
            u, v, attr_text = m.group(1), m.group(2), m.group(3) or ""
            attrs = _parse_attrs(attr_text)
            cost = attrs.get("cost", attrs.get("weight", 0.0))
            if u not in wf:
                wf.add_task(u)
            if v not in wf:
                wf.add_task(v)
            wf.add_edge(u, v, cost)
            continue
        m = _NODE_RE.match(line)
        if m:
            u, attr_text = m.group(1), m.group(2) or ""
            attrs = _parse_attrs(attr_text)
            wf.add_task(u, attrs.get("work", 1.0), attrs.get("memory", 0.0))
    return wf


def _key(u: Any) -> Any:
    """JSON keys must be scalars; tuples and other hashables become strings."""
    return u if isinstance(u, (str, int, float, bool)) else str(u)
