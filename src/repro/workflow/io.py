"""Workflow serialization: JSON (canonical) and GraphViz DOT (interop).

The paper converts nextflow pipelines to ``.dot`` via ``-with-dag``; the
DOT reader lives in :mod:`repro.ingest.dot` these days (hardened:
quoted identifiers, comments, loud errors) — :func:`workflow_from_dot`
remains here as the stable convenience wrapper. Deserialization routes
through the shared :class:`~repro.ingest.normalize.WorkflowAssembler`,
so duplicate task ids and edges referencing unknown tasks fail with the
offender named instead of being silently absorbed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow

PathLike = Union[str, Path]


def workflow_to_dict(wf: Workflow) -> Dict[str, Any]:
    """Serialize to a JSON-compatible dict (tasks, weights, edges)."""
    return {
        "name": wf.name,
        "tasks": [
            {"id": _key(u), "work": wf.work(u), "memory": wf.memory(u)}
            for u in wf.tasks()
        ],
        "edges": [
            {"source": _key(u), "target": _key(v), "cost": c}
            for u, v, c in wf.edges()
        ],
    }


def workflow_from_dict(data: Dict[str, Any],
                       *, path: Optional[str] = None) -> Workflow:
    """Inverse of :func:`workflow_to_dict`.

    Validates while building: a duplicate task id or an edge referencing
    an undeclared task raises :class:`~repro.utils.errors.IngestError`
    naming the offender (and ``path``, when given) instead of silently
    overwriting or conjuring the missing endpoint. Task ids are kept
    as-is (no interning) so round-trips preserve scalar ids; the full
    normalization gate is the ingest pipeline's job.
    """
    from repro.ingest.normalize import WorkflowAssembler

    if not isinstance(data, dict) or "tasks" not in data:
        raise IngestError("workflow dict needs a 'tasks' list", path=path)
    asm = WorkflowAssembler(data.get("name", "workflow"), path=path)
    for t in data["tasks"]:
        if not isinstance(t, dict) or "id" not in t:
            raise IngestError(
                f"every task needs an 'id' field, got {t!r}", path=path)
        asm.add_task(t["id"], t.get("work", 1.0), t.get("memory", 0.0))
    for e in data.get("edges") or []:
        if not isinstance(e, dict) or "source" not in e or "target" not in e:
            raise IngestError(
                f"every edge needs 'source' and 'target' fields, got {e!r}",
                path=path)
        asm.add_edge(e["source"], e["target"], e.get("cost", 0.0))
    return asm.finish()


def save_workflow_json(wf: Workflow, path: PathLike) -> None:
    """Write the workflow to ``path`` as indented JSON."""
    Path(path).write_text(json.dumps(workflow_to_dict(wf), indent=1))


def load_workflow_json(path: PathLike) -> Workflow:
    """Read a workflow previously saved with :func:`save_workflow_json`."""
    return workflow_from_dict(json.loads(Path(path).read_text()),
                              path=str(path))


def workflow_to_dot(wf: Workflow) -> str:
    """Render as GraphViz DOT with weights in attribute lists."""
    lines = [f'digraph "{wf.name}" {{']
    for u in wf.tasks():
        lines.append(f'  "{_key(u)}" [work={wf.work(u)}, memory={wf.memory(u)}];')
    for u, v, c in wf.edges():
        lines.append(f'  "{_key(u)}" -> "{_key(v)}" [cost={c}];')
    lines.append("}")
    return "\n".join(lines)


def workflow_from_dot(text: str, name: str = "workflow") -> Workflow:
    """Parse a DOT digraph (nextflow ``-with-dag`` flavour).

    Delegates to the hardened importer in :mod:`repro.ingest.dot`:
    quoted identifiers with spaces and escapes, ``//``/``#``/``/* */``
    comments, edge chains, and node-only statements all work, and an
    unparsable line raises :class:`~repro.utils.errors.IngestError`
    instead of returning a silently empty workflow. Recognized
    attributes: ``work``, ``memory`` on nodes, ``cost`` (or ``weight``)
    on edges; unweighted elements get the defaults work=1, memory=0,
    cost=0 — matching the paper's handling of tasks without historical
    data.
    """
    from repro.ingest.dot import import_dot

    return import_dot(text, name=name)


def _key(u: Any) -> Any:
    """JSON keys must be scalars; tuples and other hashables become strings."""
    return u if isinstance(u, (str, int, float, bool)) else str(u)
