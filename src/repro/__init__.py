"""repro — reproduction of "Mapping Large Memory-constrained Workflows onto
Heterogeneous Platforms" (Kulagina, Meyerhenke, Benoit; ICPP 2024).

Quickstart
----------
>>> from repro import generate_workflow, default_cluster, schedule
>>> wf = generate_workflow("blast", n_tasks=200, seed=1)
>>> cluster = default_cluster()
>>> mapping = schedule(wf, cluster, algorithm="daghetpart")
>>> mapping.validate()
>>> mapping.makespan()  # doctest: +SKIP

Package layout
--------------
``repro.workflow``   task-graph model;
``repro.platform``   heterogeneous clusters (Tables 2-3);
``repro.memdag``     peak-memory traversal engine (memDag role);
``repro.partition``  multilevel acyclic DAG partitioner (dagP role);
``repro.core``       DagHetMem baseline + DagHetPart heuristic;
``repro.api``        the public scheduling surface: algorithm registry,
                     request/result envelopes, ``solve``/``solve_batch``;
``repro.generators`` workflow families and weight models (Section 5.1.1);
``repro.experiments`` harness regenerating every table and figure.

New code should schedule through :mod:`repro.api`:

>>> from repro.api import ScheduleRequest, solve
>>> result = solve(ScheduleRequest(workflow=wf, cluster=cluster))
>>> result.makespan, result.k_prime, result.failure  # doctest: +SKIP
"""

from repro.workflow import Workflow
from repro.platform import (
    Cluster,
    Processor,
    cluster_by_name,
    default_cluster,
    large_cluster,
    lesshet_cluster,
    morehet_cluster,
    nohet_cluster,
    small_cluster,
)
from repro.core import (
    DagHetPartConfig,
    Mapping,
    dag_het_mem,
    dag_het_part,
    schedule,
)
from repro.api import (
    FailureInfo,
    ScenarioSpec,
    ScheduleRequest,
    ScheduleResult,
    available_algorithms,
    load_scenario,
    register_algorithm,
    run_scenario,
    solve,
    solve_batch,
)
from repro.generators import generate_workflow, WORKFLOW_FAMILIES
from repro.utils.errors import (
    CyclicWorkflowError,
    InvalidPartitionError,
    NoFeasibleMappingError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "Workflow",
    "Cluster",
    "Processor",
    "cluster_by_name",
    "default_cluster",
    "small_cluster",
    "large_cluster",
    "morehet_cluster",
    "lesshet_cluster",
    "nohet_cluster",
    "DagHetPartConfig",
    "Mapping",
    "dag_het_mem",
    "dag_het_part",
    "schedule",
    "FailureInfo",
    "ScenarioSpec",
    "ScheduleRequest",
    "ScheduleResult",
    "available_algorithms",
    "load_scenario",
    "register_algorithm",
    "run_scenario",
    "solve",
    "solve_batch",
    "generate_workflow",
    "WORKFLOW_FAMILIES",
    "ReproError",
    "CyclicWorkflowError",
    "InvalidPartitionError",
    "NoFeasibleMappingError",
    "__version__",
]
