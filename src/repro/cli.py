"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``    build a workflow (family generator or real-world model)
                and write it to JSON/DOT;
``ingest``      import an external workflow description — WfCommons
                JSON, Pegasus DAX, GraphViz DOT, edge-list/CSV, workflow
                templates, or canonical JSON — through the shared
                detect → import → normalize gate; ``--stats`` prints the
                structural profile, ``--validate`` just checks (exit 1
                on errors), ``-o`` writes canonical JSON;
``schedule``    map a workflow onto a cluster with DagHetMem/DagHetPart,
                print the mapping summary, optionally a Gantt chart or a
                JSON schedule;
``experiment``  regenerate one of the paper's tables/figures;
``scenario``    run a declarative scenario spec (JSON) — the cross-product
                of workflow sources x platforms x algorithms — streamed
                through the batch façade on a selectable execution backend
                (``--backend serial|thread|process``) with an optional
                result cache (``--cache sqlite:///path.db`` or a
                directory), so re-runs and crashed sweeps resume for
                free; ``scenario diff`` compares two result JSONL dumps;
``simulate``    replay a scenario spec's plans under its ``dynamics``
                block (job arrivals, processor churn, runtime inflation)
                through the event-driven simulator, reporting makespan
                degradation, migrations, and reaction latency per
                policy; ``--bench`` runs the warm-start vs cold-re-solve
                benchmark and gates against ``BENCH_sim.json``;
``profile``     benchmark the reference vs array kernels on large
                synthetic instances, write/compare the ``BENCH_core.json``
                perf-trajectory report (``--check`` is the CI regression
                gate: it fails when a case's speedup falls below the
                committed baseline x tolerance, or a gated case drops
                under the absolute 5x floor);
``serve``       run the asyncio HTTP scheduling service (durable job
                store, live stats, graceful drain); ``--loadtest`` runs
                the burst benchmark and gates against
                ``BENCH_service.json`` (``--check``);
``worker``      attach a work-queue worker to a spool directory: claim
                requests spooled by the ``queue`` execution backend
                (atomic rename), solve them under their policies, land
                results in ``done/``, heartbeat a lease so a killed
                worker's claims are re-enqueued; run any number of these
                — on any machine sharing the filesystem — against one
                spool, optionally sharing one ``sqlite://`` result cache;
``cache``       result-cache utilities (``cache stats URI`` prints kind,
                location, and entry count — the same accessor the
                service's ``/v1/stats`` uses);
``info``        print cluster presets (Tables 2-3) and corpus sizes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api import (
    ExecutionPolicy,
    ScheduleRequest,
    available_algorithms,
    available_backends,
    diff_results,
    format_diff,
    load_result_lines,
    load_scenario,
    open_cache,
    run_scenario,
    solve_with_policy,
)
from repro.core.heuristic import DagHetPartConfig
from repro.experiments import figures
from repro.experiments.instances import synthetic_sizes
from repro.experiments.report import format_table
from repro.generators.families import WORKFLOW_FAMILIES, generate_workflow
from repro.generators.realworld import REAL_WORKFLOW_NAMES, generate_real_workflow
from repro.platform.presets import CLUSTER_PRESETS, cluster_by_name
from repro.workflow.io import save_workflow_json, workflow_to_dot

#: experiment name -> driver (drivers that need no extra arguments)
EXPERIMENTS = {
    "table2": figures.table2,
    "table3": figures.table3,
    "fig3_left": figures.fig3_left,
    "fig3_right": figures.fig3_right,
    "fig4": figures.fig4,
    "fig5": figures.fig5,
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "table4": figures.table4,
    "success_counts": figures.success_counts_experiment,
    "failures": figures.failure_report,
    "heft_relative": figures.heft_relative,
    "demand4x": figures.demand4x,
    "refinement_gain": figures.refinement_gain,
    "robustness": figures.robustness,
    "optimality_gap": figures.optimality_gap,
}


def _cli_config(algorithm: str, k_strategy: str):
    """Build the config the CLI can express for ``algorithm``.

    Any registered config dataclass with a ``k_prime_strategy`` field
    (DagHetPartConfig, AnnealConfig, future sweep-based configs) receives
    the ``--k-strategy`` choice; algorithms with other configs — or none —
    run on their defaults.
    """
    import dataclasses

    from repro.api import get_algorithm

    config_cls = get_algorithm(algorithm).config_cls
    if config_cls is None:
        return None
    if any(f.name == "k_prime_strategy" for f in dataclasses.fields(config_cls)):
        return config_cls(k_prime_strategy=k_strategy)
    return None


def _load_workflow(args) -> "Workflow":
    if args.workflow:
        from repro.ingest import ingest_path
        from repro.utils.errors import IngestError

        try:
            return ingest_path(args.workflow)
        except IngestError as exc:
            raise SystemExit(f"error: {exc}")
    if args.family in REAL_WORKFLOW_NAMES:
        return generate_real_workflow(args.family, seed=args.seed)
    if args.family not in WORKFLOW_FAMILIES:
        raise SystemExit(
            f"unknown workflow family {args.family!r}; valid families: "
            f"{', '.join(WORKFLOW_FAMILIES)}; real-world models: "
            f"{', '.join(REAL_WORKFLOW_NAMES)}")
    return generate_workflow(args.family, args.n_tasks, seed=args.seed)


def _add_workflow_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workflow", help="load a workflow from .json or .dot")
    p.add_argument("--family", default="blast",
                   help=f"generator family ({', '.join(WORKFLOW_FAMILIES)}) "
                        f"or real-world model ({', '.join(REAL_WORKFLOW_NAMES)})")
    p.add_argument("-n", "--n-tasks", type=int, default=200,
                   help="approximate task count for generated workflows")
    p.add_argument("--seed", type=int, default=0)


def cmd_generate(args) -> int:
    """``repro generate``: write a workflow to JSON or DOT."""
    wf = _load_workflow(args)
    if args.output.endswith(".dot"):
        with open(args.output, "w") as fh:
            fh.write(workflow_to_dot(wf))
    else:
        save_workflow_json(wf, args.output)
    print(f"wrote {wf.n_tasks} tasks / {wf.n_edges} edges to {args.output}")
    return 0


def cmd_schedule(args) -> int:
    """``repro schedule``: map a workflow and print the summary."""
    from repro.api import get_algorithm
    wf = _load_workflow(args)
    cluster = cluster_by_name(args.cluster, bandwidth=args.beta)
    # memory-oblivious algorithms (heftlist) produce mappings that may
    # exceed processor memories by design; validating those would reject
    # the very thing the baseline is meant to show
    oblivious = "memory-oblivious" in get_algorithm(args.algorithm).capabilities
    policy = ExecutionPolicy(timeout_s=args.timeout) \
        if args.timeout is not None else None
    result = solve_with_policy(ScheduleRequest(
        workflow=wf,
        cluster=cluster,
        algorithm=args.algorithm,
        config=_cli_config(args.algorithm, args.k_strategy),
        scale_memory=args.scale_memory,
        validate=not oblivious,
        policy=policy,
    ))
    if result.failure is not None:
        if result.failure.kind == "timeout":
            print(f"timed out: {result.failure.message}", file=sys.stderr)
            return 3
        print(f"no feasible mapping: {result.failure.message}", file=sys.stderr)
        return 2
    mapping = result.mapping
    print(f"algorithm : {result.algorithm}")
    print(f"workflow  : {wf.name} ({wf.n_tasks} tasks)")
    print(f"cluster   : {result.cluster} (k={cluster.k}, beta={result.bandwidth:g})")
    print(f"makespan  : {result.makespan:.2f}")
    print(f"blocks    : {result.n_blocks}")
    print(f"runtime   : {result.runtime:.2f}s")
    if result.k_prime is not None:
        feasible = sum(1 for p in result.sweep if p.status == "ok")
        print(f"k'        : {result.k_prime} "
              f"({feasible}/{len(result.sweep)} candidates feasible)")
    seed_mu = result.extra.get("anneal_seed_makespan")
    if seed_mu is not None:
        print(f"refined   : {seed_mu:.2f} -> {result.makespan:.2f} "
              f"({result.extra.get('anneal_accepted', 0)} accepted moves/swaps)")
    winner = result.extra.get("portfolio_winner")
    if winner is not None:
        print(f"winner    : {winner} "
              f"(portfolio: {result.extra.get('portfolio_members', '')})")
    if args.gantt:
        from repro.core.simulate import gantt_text
        print()
        print(gantt_text(mapping))
    if args.json:
        from repro.core.simulate import schedule_to_dict
        with open(args.json, "w") as fh:
            json.dump(schedule_to_dict(mapping), fh, indent=1)
        print(f"schedule written to {args.json}")
    return 0


def cmd_experiment(args) -> int:
    """``repro experiment``: regenerate one table/figure."""
    driver = EXPERIMENTS[args.name]
    kwargs = {}
    if args.name not in ("table2", "table3"):
        if args.families:
            kwargs["families"] = tuple(args.families.split(","))
        kwargs["seed"] = args.seed
        kwargs["config"] = DagHetPartConfig(k_prime_strategy=args.k_strategy)
        kwargs["parallel"] = args.parallel
        if args.progress:
            kwargs["progress"] = lambda msg: print(f"  {msg}", file=sys.stderr)
    result = driver(**kwargs)
    print(format_table(result["rows"], title=args.name))
    if args.plot:
        _plot_rows(args.name, result["rows"])
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result["rows"], fh, indent=1)
        print(f"rows written to {args.json}")
    return 0


def _plot_rows(name: str, rows) -> None:
    """Best-effort ASCII chart for the figure's main series."""
    from repro.experiments.plotting import ascii_bar_chart, ascii_line_plot, figure_series
    if not rows:
        return
    keys = set(rows[0])
    print()
    if {"n_tasks", "relative_makespan_pct", "family"} <= keys:
        print(ascii_line_plot(
            figure_series(rows, "n_tasks", "relative_makespan_pct", "family"),
            title=name, x_label="n_tasks", y_label="relative makespan %"))
    elif {"bandwidth", "relative_makespan_pct", "workflow_type"} <= keys:
        print(ascii_line_plot(
            figure_series(rows, "bandwidth", "relative_makespan_pct",
                          "workflow_type"),
            title=name, x_label="bandwidth", y_label="relative makespan %"))
    elif {"n_tasks", "makespan", "family"} <= keys:
        print(ascii_line_plot(
            figure_series(rows, "n_tasks", "makespan", "family"),
            title=name, x_label="n_tasks", y_label="makespan"))
    elif {"workflow_type", "relative_makespan_pct"} <= keys:
        print(ascii_bar_chart(
            {r["workflow_type"]: r["relative_makespan_pct"] for r in rows},
            title=f"{name} (relative makespan %)"))


def cmd_scenario_run(args) -> int:
    """``repro scenario run``: execute a spec JSON, streamed and cached."""
    import dataclasses

    from repro.api.scenario import ExecutionSpec

    spec = load_scenario(args.spec)
    if args.timeout is not None or args.retries is not None:
        # CLI knobs override only the fields they name (including to 0 —
        # "--retries 0" switches a spec's retries off); the rest of the
        # spec's policy (its timeout, backoff, on_timeout) is kept
        base = spec.execution or ExecutionSpec()
        overrides = {}
        if args.timeout is not None:
            overrides["timeout_s"] = args.timeout
        if args.retries is not None:
            overrides["retries"] = args.retries
        policy = dataclasses.replace(base.policy or ExecutionPolicy(),
                                     **overrides)
        spec = dataclasses.replace(
            spec, execution=dataclasses.replace(base, policy=policy))
    total = spec.size()
    print(f"scenario  : {spec.name}" +
          (f" — {spec.description}" if spec.description else ""))
    print(f"requests  : {total} "
          f"({sum(src.count() for src in spec.workflows)} workflow(s) x "
          f"{sum(a.count() for a in spec.platforms)} platform point(s) x "
          f"{len(spec.algorithms)} algorithm(s))")

    uri = args.cache or args.cache_dir
    cache = open_cache(uri) if uri else None
    progress = None
    if args.progress:
        def progress(index, request, result):
            status = "ok" if result.success else "FAILED"
            print(f"  [{index + 1}/{total}] {result.workflow} / "
                  f"{result.algorithm} on {result.cluster}: {status}",
                  file=sys.stderr)

    out_fh = open(args.json, "w") if args.json else None
    n_ok = n_failed = n_timeout = 0
    makespans = []
    try:
        for result in run_scenario(spec, parallel=args.parallel, cache=cache,
                                   progress=progress, backend=args.backend):
            if result.success:
                n_ok += 1
                makespans.append(result.makespan)
            elif result.failure.kind == "timeout":
                n_timeout += 1
            else:
                n_failed += 1
            if out_fh is not None:
                out_fh.write(result.to_json() + "\n")
    finally:
        if out_fh is not None:
            out_fh.close()
        stats = cache.stats() if cache is not None else None
        if cache is not None:
            cache.close()

    timeouts = f", {n_timeout} timed out" if n_timeout else ""
    print(f"scheduled : {n_ok}/{total} ({n_failed} infeasible{timeouts})")
    if makespans:
        print(f"makespan  : min={min(makespans):.2f} max={max(makespans):.2f}")
    if stats is not None:
        print(f"cache     : hits={stats['hits']} misses={stats['misses']} "
              f"entries={stats['entries']} ({cache.path})")
    if args.json:
        print(f"results written to {args.json} (one envelope per line)")
    return 0


def cmd_scenario_diff(args) -> int:
    """``repro scenario diff``: compare two result JSONL dumps.

    Exit code 0 when the runs agree (same requests, same outcomes, same
    makespans within ``--tolerance``), 1 when they differ — usable as a
    CI regression gate.
    """
    diff = diff_results(load_result_lines(args.a), load_result_lines(args.b),
                        tolerance=args.tolerance)
    print(format_diff(diff, a_name=args.a, b_name=args.b))
    return 0 if diff.clean else 1


def cmd_simulate(args) -> int:
    """``repro simulate``: dynamic replay of a scenario, or the bench.

    Spec mode streams every request of a ScenarioSpec (whose ``dynamics``
    block must be set) through the event-driven simulator; ``--bench``
    instead measures warm-start vs cold-re-solve reaction latency at
    scale and (with ``--check``) gates it against a committed
    ``BENCH_sim.json``. Exit code 0 on success, 1 on a bench regression,
    2 when every simulated request failed.
    """
    if args.bench:
        return _simulate_bench(args)
    if not args.spec:
        print("repro simulate: a spec path or --bench is required",
              file=sys.stderr)
        return 2
    from repro.sim.runner import run_dynamic_scenario

    spec = load_scenario(args.spec)
    if spec.dynamics is None:
        print(f"{args.spec}: scenario has no dynamics block; "
              f"use 'repro scenario run' for static sweeps", file=sys.stderr)
        return 2
    policy = args.policy or spec.dynamics.policy
    total = spec.size()
    print(f"scenario  : {spec.name}" +
          (f" — {spec.description}" if spec.description else ""))
    print(f"requests  : {total}")
    print(f"policy    : {policy}")

    uri = args.cache
    cache = open_cache(uri) if uri else None
    progress = None
    if args.progress:
        def progress(index, request, result):
            status = "ok" if result.success else "FAILED"
            print(f"  [{index + 1}/{total}] {result.workflow} / "
                  f"{result.algorithm}: {status}", file=sys.stderr)

    out_fh = open(args.json, "w") if args.json else None
    n_ok = n_failed = 0
    event_dump = []
    degradations, migrations, full_passes, react_total = [], 0, 0, 0.0
    events_seen = 0
    try:
        for result in run_dynamic_scenario(spec, cache=cache,
                                           progress=progress,
                                           policy=args.policy):
            if result.success:
                n_ok += 1
                extra = result.extra
                degradations.append(extra.get("sim_degradation_pct", 0.0))
                migrations += extra.get("sim_task_migrations", 0)
                full_passes += extra.get("sim_full_passes", 0)
                react_total += extra.get("sim_react_total_s", 0.0)
                events_seen += extra.get("sim_events", 0)
            else:
                n_failed += 1
            if out_fh is not None:
                out_fh.write(result.to_json() + "\n")
            if args.events_json:
                event_dump.append({
                    "workflow": result.workflow,
                    "algorithm": result.algorithm,
                    "tags": dict(result.tags),
                    "events": result.extra.get("sim_event_log", []),
                })
    finally:
        if out_fh is not None:
            out_fh.close()
        stats = cache.stats() if cache is not None else None
        if cache is not None:
            cache.close()

    print(f"simulated : {n_ok}/{total} ({n_failed} failed)")
    print(f"events    : {events_seen}")
    if degradations:
        mean = sum(degradations) / len(degradations)
        print(f"degradation: mean={mean:+.1f}% max={max(degradations):+.1f}%")
    print(f"migrations: {migrations}")
    print(f"full passes: {full_passes}")
    print(f"react     : total={react_total:.3f}s")
    if stats is not None:
        print(f"cache     : hits={stats['hits']} misses={stats['misses']} "
              f"entries={stats['entries']}")
    if args.events_json:
        with open(args.events_json, "w", encoding="utf-8") as fh:
            json.dump(event_dump, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"event log written to {args.events_json}")
    if args.json:
        print(f"results written to {args.json} (one envelope per line)")
    return 0 if n_ok or total == 0 else 2


def _simulate_bench(args) -> int:
    from repro.sim.bench import (
        DEFAULT_N,
        DEFAULT_REPEATS,
        DEFAULT_TOLERANCE,
        compare_sim_to_baseline,
        load_sim_report,
        run_sim_bench,
        write_sim_report,
    )

    n = args.n if args.n is not None else DEFAULT_N
    repeats = args.repeats if args.repeats is not None else DEFAULT_REPEATS
    tolerance = (args.tolerance if args.tolerance is not None
                 else DEFAULT_TOLERANCE)
    report = run_sim_bench(
        n=n, seed=args.seed, repeats=repeats,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    print(f"sim bench : n={report['n']} blocks={report['n_blocks']} "
          f"plan makespan={report['plan_makespan']:.2f}")
    for policy, entry in report["policies"].items():
        print(f"  {policy:<10} react {entry['react_total_s']*1e3:9.2f}ms  "
              f"realized {entry['realized_makespan']:12.2f}  "
              f"degradation {entry['degradation_pct']:+6.1f}%  "
              f"full passes {entry['full_passes']}  "
              f"migrations {entry['task_migrations']}")
    print(f"speedup   : {report['speedup']:.1f}x "
          f"(warm-start vs cold re-solve)")
    if args.out:
        write_sim_report(report, args.out)
        print(f"report written to {args.out}")
    if args.check:
        problems = compare_sim_to_baseline(report, load_sim_report(args.check),
                                           tolerance=tolerance)
        if problems:
            print(f"REGRESSION vs {args.check}:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check} (tolerance {tolerance:g})")
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: kernel benchmarks + perf-trajectory gate.

    Exit code 0 on success, 1 when ``--check`` finds a regression (a
    case below baseline-speedup x tolerance, a gated case below the
    absolute floor, or any kernel disagreement).
    """
    from repro.core.profile import (
        DEFAULT_N,
        DEFAULT_REPEATS,
        DEFAULT_TOLERANCE,
        compare_to_baseline,
        load_report,
        run_profile,
        write_report,
    )

    if args.n is None:
        args.n = DEFAULT_N
    if args.repeats is None:
        args.repeats = DEFAULT_REPEATS
    if args.tolerance is None:
        args.tolerance = DEFAULT_TOLERANCE
    cases = args.cases.split(",") if args.cases else None
    report = run_profile(
        n=args.n, repeats=args.repeats, seed=args.seed, cases=cases,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    print(f"profile   : n={report['n']} repeats={report['repeats']} "
          f"numpy={report['numpy']}")
    for name, case in report["cases"].items():
        flag = " [gated]" if case["gated"] else ""
        print(f"  {name:<22} reference {case['reference_s']*1e3:9.2f}ms  "
              f"array {case['array_s']*1e3:8.2f}ms  "
              f"speedup {case['speedup']:6.1f}x  "
              f"equal={case['equal']}{flag}")
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}")
    if args.check:
        problems = compare_to_baseline(report, load_report(args.check),
                                       tolerance=args.tolerance)
        if problems:
            print(f"REGRESSION vs {args.check}:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check} "
              f"(tolerance {args.tolerance:g})")
    elif not all(c["equal"] for c in report["cases"].values()):
        print("kernels disagree (bit-for-bit check failed)", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: run the HTTP scheduling service / the load test.

    Service mode blocks until SIGTERM/SIGINT or ``POST /v1/shutdown``
    (graceful: in-flight jobs drain, new submissions get 503).
    ``--loadtest`` instead benchmarks a throwaway in-process service —
    burst-submits ``--jobs`` concurrent jobs, measures submit/drain
    latency and throughput vs the offline batch façade — and (with
    ``--check``) gates against a committed ``BENCH_service.json``.
    Exit code 0 on success, 1 on a load-test regression.
    """
    if args.loadtest:
        return _serve_loadtest(args)
    import asyncio

    from repro.service import serve

    try:
        asyncio.run(serve(
            host=args.host, port=args.port, store_dir=args.store,
            cache=args.cache, backend=args.backend, workers=args.workers,
            parallel=args.parallel if args.parallel is not None else 0))
    except KeyboardInterrupt:
        pass  # Ctrl-C before the signal handler installs: quiet exit
    return 0


def _serve_loadtest(args) -> int:
    from repro.service.loadtest import (
        DEFAULT_CONNECTIONS,
        DEFAULT_JOBS,
        DEFAULT_N_TASKS,
        DEFAULT_SAMPLE,
        DEFAULT_TOLERANCE,
        compare_service_to_baseline,
        load_service_report,
        run_service_loadtest,
        write_service_report,
    )

    n_jobs = args.jobs if args.jobs is not None else DEFAULT_JOBS
    tolerance = (args.tolerance if args.tolerance is not None
                 else DEFAULT_TOLERANCE)
    report = run_service_loadtest(
        n_jobs=n_jobs, workers=args.workers,
        connections=args.connections or DEFAULT_CONNECTIONS,
        n_tasks=args.n_tasks or DEFAULT_N_TASKS,
        seed=args.seed,
        sample=args.sample or DEFAULT_SAMPLE,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    submit, drain, offline = (report["submit"], report["drain"],
                              report["offline"])
    print(f"load test : {report['n_jobs']} jobs, {report['workers']} "
          f"worker(s), {report['connections']} connection(s)")
    print(f"submitted : {report['accepted']}/{report['n_jobs']} "
          f"in {submit['total_s']:.2f}s ({submit['rate_per_s']:.0f}/s, "
          f"p50 {submit['p50_ms']:.1f}ms p99 {submit['p99_ms']:.1f}ms)")
    print(f"peak      : {report['peak_active']} jobs in flight")
    print(f"drained   : {drain['total_s']:.2f}s "
          f"({drain['rate_per_s']:.1f} req/s)")
    print(f"offline   : {offline['rate_per_s']:.1f} req/s "
          f"(sample of {offline['sample']})")
    print(f"efficiency: {report['efficiency']:.3f} (service/offline)")
    if args.out:
        write_service_report(report, args.out)
        print(f"report written to {args.out}")
    if args.check:
        problems = compare_service_to_baseline(
            report, load_service_report(args.check), tolerance=tolerance)
        if problems:
            print(f"REGRESSION vs {args.check}:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check} (tolerance {tolerance:g})")
    return 0


def cmd_worker(args) -> int:
    """``repro worker``: serve a queue-backend spool until stopped."""
    import os

    from repro.api.exec import NESTED_ENV, run_worker

    # a batch issued *inside* a worker (portfolio-style algorithms that
    # call solve_batch) must run serial, not spool into a new queue or
    # fork pools from a process that is already one worker of many
    os.environ[NESTED_ENV] = "1"
    print(f"worker    : attaching to {args.spool}", file=sys.stderr)
    completed = run_worker(
        args.spool, worker_id=args.id, poll_s=args.poll, cache=args.cache,
        lease_timeout_s=args.lease, max_idle_s=args.max_idle, once=args.once)
    print(f"worker    : done ({completed} request(s) completed)",
          file=sys.stderr)
    return 0


def cmd_cache_stats(args) -> int:
    """``repro cache stats``: describe a result cache by URI."""
    from repro.api import describe_cache

    cache = open_cache(args.uri)
    try:
        info = describe_cache(cache)
    finally:
        cache.close()
    print(f"kind      : {info['kind']}")
    print(f"location  : {info['location']}")
    print(f"entries   : {info['entries']}")
    return 0


def cmd_ingest(args) -> int:
    """``repro ingest``: import an external workflow description."""
    from repro.ingest import (
        NormalizeOptions,
        detect_format,
        get_format,
        ingest_text,
        workflow_fingerprint,
        workflow_stats,
    )
    from repro.utils.errors import IngestError

    data = None
    if args.data:
        try:
            with open(args.data, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read data file {args.data}: {exc}",
                  file=sys.stderr)
            return 1
    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc.strerror or exc}",
              file=sys.stderr)
        return 1
    try:
        info = (get_format(args.format) if args.format
                else detect_format(text, path=args.path))
        options = NormalizeOptions(work_scale=args.work_scale,
                                   cost_scale=args.cost_scale,
                                   memory_scale=args.memory_scale)
        wf = ingest_text(text, fmt=info.name, name=args.name,
                         path=args.path, data=data, options=options)
    except (IngestError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.validate:
        print(f"OK: {args.path} ({info.name}, {wf.n_tasks} tasks, "
              f"{wf.n_edges} edges)")
        return 0
    if args.stats:
        rows = workflow_stats(wf)
        rows["format"] = info.name
        rows["fingerprint"] = workflow_fingerprint(wf)
        width = max(len(k) for k in rows)
        for key, value in rows.items():
            shown = f"{value:g}" if isinstance(value, float) else value
            print(f"{key:<{width}} : {shown}")
        return 0
    if args.output:
        save_workflow_json(wf, args.output)
        print(f"{args.output}: {wf.name} ({info.name}, {wf.n_tasks} tasks, "
              f"{wf.n_edges} edges)")
        return 0
    print(f"{wf.name}: format={info.name} tasks={wf.n_tasks} "
          f"edges={wf.n_edges} fingerprint={workflow_fingerprint(wf)}")
    return 0


def cmd_info(args) -> int:
    """``repro info``: print presets and corpus configuration."""
    rows2 = figures.table2()["rows"]
    print(format_table(rows2, title="Table 2: default machine kinds"))
    print()
    rows3 = figures.table3()["rows"]
    print(format_table(rows3, title="Table 3: MoreHet / LessHet variants"))
    print()
    print(f"cluster presets: {', '.join(sorted(CLUSTER_PRESETS))}")
    print(f"workflow families: {', '.join(WORKFLOW_FAMILIES)}")
    print(f"real-world models: {', '.join(REAL_WORKFLOW_NAMES)}")
    print(f"synthetic sizes (current scale): {synthetic_sizes()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-constrained workflow mapping onto heterogeneous "
                    "platforms (ICPP 2024 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a workflow file")
    _add_workflow_args(p)
    p.add_argument("-o", "--output", required=True, help=".json or .dot path")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("schedule", help="map a workflow onto a cluster")
    _add_workflow_args(p)
    p.add_argument("--cluster", default="default",
                   choices=sorted(CLUSTER_PRESETS))
    p.add_argument("--beta", type=float, default=1.0, help="bandwidth")
    p.add_argument("--algorithm", default="daghetpart",
                   choices=sorted(available_algorithms()))
    p.add_argument("--k-strategy", default="auto",
                   choices=["auto", "all", "doubling"])
    p.add_argument("--no-scale-memory", dest="scale_memory",
                   action="store_false",
                   help="disable the paper's proportional memory scaling")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="wall-clock budget in seconds; exceeding it reports "
                        "a structured timeout instead of hanging")
    p.add_argument("--gantt", action="store_true",
                   help="print an ASCII Gantt chart of the schedule")
    p.add_argument("--json", help="write the task-level schedule to a file")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("experiment", help="regenerate a table/figure")
    p.add_argument("name", choices=sorted(EXPERIMENTS))
    p.add_argument("--families", help="comma-separated family subset")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--k-strategy", default="doubling",
                   choices=["auto", "all", "doubling"])
    p.add_argument("-j", "--parallel", type=int, default=None, metavar="N",
                   help="run corpus instances over N worker processes "
                        "(-1 = all CPUs; default: $REPRO_PARALLEL or serial)")
    p.add_argument("--progress", action="store_true")
    p.add_argument("--json", help="write the rows to a file")
    p.add_argument("--plot", action="store_true",
                   help="render the series as an ASCII chart")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("scenario", help="declarative scenario specs")
    ssub = p.add_subparsers(dest="scenario_command", required=True)
    pr = ssub.add_parser("run", help="run a ScenarioSpec JSON file")
    pr.add_argument("spec", help="path to the scenario spec (.json)")
    pr.add_argument("-j", "--parallel", "--workers", type=int, default=None,
                    metavar="N",
                    help="fan requests out over N workers "
                         "(-1 = all CPUs; default: $REPRO_PARALLEL or serial)")
    pr.add_argument("--backend", choices=sorted(available_backends()),
                    default=None,
                    help="execution backend (default: routed from worker "
                         "count, $REPRO_BACKEND, and algorithm metadata); "
                         "'queue' spools through a shared directory served "
                         "by N spawned (or external `repro worker`) "
                         "processes")
    pr.add_argument("--timeout", type=float, default=None, metavar="S",
                    help="per-request wall-clock budget; exceeded requests "
                         "report FailureInfo(kind='timeout')")
    pr.add_argument("--retries", type=int, default=None, metavar="N",
                    help="extra attempts per failed request (0 switches a "
                         "spec's retries off; default: the spec's policy)")
    pr.add_argument("--cache", metavar="URI",
                    help="result cache URI: sqlite:///path.db, jsonl://DIR, "
                         "or a plain directory; previously computed requests "
                         "are served from it and new results appended, so "
                         "re-runs and interrupted sweeps resume")
    pr.add_argument("--cache-dir", metavar="DIR",
                    help="legacy alias for --cache with a plain directory")
    pr.add_argument("--json", metavar="FILE",
                    help="write result envelopes to FILE as JSONL (streamed)")
    pr.add_argument("--progress", action="store_true")
    pr.set_defaults(func=cmd_scenario_run)

    pd = ssub.add_parser(
        "diff", help="compare two result JSONL dumps (exit 1 on differences)")
    pd.add_argument("a", help="baseline results (.jsonl)")
    pd.add_argument("b", help="candidate results (.jsonl)")
    pd.add_argument("--tolerance", type=float, default=1e-9,
                    help="relative makespan tolerance (default 1e-9)")
    pd.set_defaults(func=cmd_scenario_diff)

    p = sub.add_parser(
        "simulate",
        help="replay a dynamic scenario / run the warm-start bench")
    p.add_argument("spec", nargs="?",
                   help="scenario spec (.json) with a dynamics block")
    p.add_argument("--policy", choices=["static", "warmstart", "resolve"],
                   default=None,
                   help="override the spec's reaction policy")
    p.add_argument("--cache", metavar="URI",
                   help="result cache (sqlite:///path.db, jsonl://DIR, or a "
                        "directory); keyed by the dynamic fingerprint")
    p.add_argument("--json", metavar="FILE",
                   help="write result envelopes to FILE as JSONL")
    p.add_argument("--events-json", metavar="FILE",
                   help="write the resolved per-request event logs "
                        "(deterministic: byte-identical across runs)")
    p.add_argument("--progress", action="store_true")
    p.add_argument("--bench", action="store_true",
                   help="run the warm-start vs cold-re-solve benchmark "
                        "instead of a spec")
    p.add_argument("--n", type=int, default=None,
                   help="bench instance size (default 10000)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--repeats", type=int, default=None,
                   help="min-of-k repetitions for bench latencies (default 3)")
    p.add_argument("--out", metavar="FILE",
                   help="write the bench JSON report (e.g. BENCH_sim.json)")
    p.add_argument("--check", metavar="BASELINE",
                   help="compare the bench against a committed report; "
                        "exit 1 on regression (the CI warm-start gate)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="allowed fraction of the baseline speedup "
                        "(default 0.4)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "profile", help="benchmark the kernels / gate the perf trajectory")
    p.add_argument("--n", type=int, default=None,
                   help="instance size for the scaled cases "
                        "(default 100000, the acceptance scale)")
    p.add_argument("--repeats", type=int, default=None,
                   help="min-of-k repetitions per kernel (default 3)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cases", metavar="A,B,...",
                   help="comma-separated case subset (default: all)")
    p.add_argument("--out", metavar="FILE",
                   help="write the JSON report (e.g. BENCH_core.json)")
    p.add_argument("--check", metavar="BASELINE",
                   help="compare against a committed report; exit 1 on "
                        "regression (the CI bench gate)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="allowed fraction of the baseline speedup "
                        "(default 0.5)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "serve", help="run the HTTP scheduling service / the load test")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--store", metavar="DIR", default="service-store",
                   help="durable job-store directory (append-only JSONL; "
                        "restart resumes queued jobs and reports crashed "
                        "ones)")
    p.add_argument("--cache", metavar="URI", default=None,
                   help="result cache shared by all jobs "
                        "(sqlite:///path.db, jsonl://DIR, or a directory)")
    p.add_argument("--backend", choices=sorted(available_backends()),
                   default=None,
                   help="execution backend per job (default: routed like "
                        "the offline batch façade)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent jobs (each fans its requests out per "
                        "--parallel)")
    p.add_argument("-j", "--parallel", type=int, default=None, metavar="N",
                   help="workers per job for batch fan-out "
                        "(-1 = all CPUs; default: $REPRO_PARALLEL or serial)")
    p.add_argument("--loadtest", action="store_true",
                   help="benchmark a throwaway in-process service instead "
                        "of serving")
    p.add_argument("--jobs", type=int, default=None,
                   help="load-test burst size (default 1024)")
    p.add_argument("--connections", type=int, default=None,
                   help="pooled keep-alive submit connections (default 64)")
    p.add_argument("--n-tasks", type=int, default=None,
                   help="tasks per load-test workflow (default 16)")
    p.add_argument("--sample", type=int, default=None,
                   help="offline-reference sample size (default 192)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", metavar="FILE",
                   help="write the load-test JSON report "
                        "(e.g. BENCH_service.json)")
    p.add_argument("--check", metavar="BASELINE",
                   help="compare the load test against a committed report; "
                        "exit 1 on regression (the CI service gate)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="allowed fraction of the baseline efficiency "
                        "(default 0.5)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="serve a queue-backend spool directory (claim, solve, land)")
    p.add_argument("spool", help="spool directory shared with the parent "
                                 "(its REPRO_QUEUE_DIR)")
    p.add_argument("--id", default=None, metavar="NAME",
                   help="worker id (default: derived from pid); claims live "
                        "under claimed/NAME/ and the lease is NAME.lease")
    p.add_argument("--cache", metavar="URI", default=None,
                   help="shared result cache (sqlite:///path.db — the only "
                        "multi-process-safe kind); checked before solving, "
                        "fresh results recorded after")
    p.add_argument("--lease", type=float, default=None, metavar="S",
                   help="lease interval the parent judges liveness by "
                        "(heartbeats run at a quarter of it; default 15)")
    p.add_argument("--poll", type=float, default=0.1, metavar="S",
                   help="sleep between claim attempts when the spool is "
                        "empty (default 0.1)")
    p.add_argument("--max-idle", type=float, default=None, metavar="S",
                   help="exit after this long without a claim "
                        "(default: wait for the stop marker)")
    p.add_argument("--once", action="store_true",
                   help="exit after completing a single request")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser("cache", help="result-cache utilities")
    csub = p.add_subparsers(dest="cache_command", required=True)
    pc = csub.add_parser(
        "stats", help="describe a cache (kind, location, entries)")
    pc.add_argument("uri", help="sqlite:///path.db, jsonl://DIR, or a "
                                "directory")
    pc.set_defaults(func=cmd_cache_stats)

    p = sub.add_parser(
        "ingest",
        help="import an external workflow description (wfcommons, dax, "
             "dot, edgelist, template, json)")
    p.add_argument("path", help="workflow description file")
    p.add_argument("--format", default=None,
                   help="force a registered format instead of sniffing")
    p.add_argument("--data", default=None, metavar="JSON",
                   help="JSON data file for template expansion")
    p.add_argument("--name", default=None,
                   help="override the ingested workflow's name")
    p.add_argument("--work-scale", type=float, default=1.0,
                   help="multiply task work by this factor")
    p.add_argument("--cost-scale", type=float, default=1.0,
                   help="multiply edge costs by this factor (e.g. bytes "
                        "to abstract units)")
    p.add_argument("--memory-scale", type=float, default=1.0,
                   help="multiply task memory by this factor")
    p.add_argument("-o", "--output", default=None,
                   help="write the validated workflow as canonical JSON")
    p.add_argument("--stats", action="store_true",
                   help="print structural statistics instead of a summary")
    p.add_argument("--validate", action="store_true",
                   help="only check the file; exit 1 on any ingest error")
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser("info", help="show presets and corpus configuration")
    p.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
