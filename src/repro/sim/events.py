"""Frozen, JSON-round-trippable perturbation models (the ``dynamics`` block).

The dynamic simulator is driven by a :class:`DynamicsSpec`: a seed, a
reaction policy, and a tuple of *event models* — each a frozen dataclass
that compiles to a deterministic list of :class:`SimEvent` records. Four
models cover the perturbations ROADMAP item 4 names:

=====================  ====================================================
model                  events it emits
=====================  ====================================================
``poisson_arrivals``   new jobs at Poisson instants (rate, count, family)
``trace_arrivals``     new jobs at explicit trace instants
``churn``              processor ``fail`` (blocks killed), ``leave``
                       (graceful drain), ``join`` (new capacity)
``inflation``          stochastic runtime inflation of in-flight blocks
=====================  ====================================================

Everything stochastic draws through :mod:`repro.generators.events`
(seeded via :func:`repro.utils.rng.make_rng`); compiling the same spec
twice yields byte-identical event streams. Event *times* are virtual; by
default (``relative_times=True``) they are fractions of the undisturbed
plan's makespan, so one spec scales across instances of any size.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping as TMapping, Optional, Tuple, Union

from repro.generators.events import (
    event_seeds,
    lognormal_factor,
    merge_timelines,
    poisson_times,
)
from repro.utils.rng import SeedLike, make_rng, spawn_rngs

#: the event kinds the engine understands
EVENT_KINDS = ("arrival", "fail", "leave", "join", "inflate")


def _tupled(value: Any) -> Any:
    """Recursively turn JSON lists back into tuples (frozen-field hygiene)."""
    if isinstance(value, list):
        return tuple(_tupled(v) for v in value)
    return value


def _listed(value: Any) -> Any:
    """Recursively turn tuples into JSON lists."""
    if isinstance(value, tuple):
        return [_listed(v) for v in value]
    return value


@dataclass(frozen=True)
class SimEvent:
    """One resolved perturbation on the virtual timeline.

    A flat record (payload fields are plain JSON scalars) so the engine's
    event log — the determinism artifact CI byte-compares — round-trips
    through JSON exactly. Fields irrelevant to a kind keep their
    defaults; ``processor`` is empty until the engine resolves a random
    victim (``pick``) against the live processor set at replay time.
    """

    time: float
    kind: str
    family: str = ""       # arrival: generator family of the incoming job
    n_tasks: int = 0       # arrival: job size
    seed: int = 0          # arrival: job seed / inflate: selection seed
    processor: str = ""    # fail/leave victim or join name (when explicit)
    pick: int = -1         # fail/leave: random-victim index (-1 = explicit)
    speed: float = 1.0     # join: processor speed
    memory: float = 0.0    # join: processor memory
    proc_kind: str = ""    # join: machine-kind label
    factor: float = 1.0    # inflate: work multiplier
    fraction: float = 0.0  # inflate: share of in-flight blocks hit

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; "
                             f"valid: {', '.join(EVENT_KINDS)}")

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: TMapping[str, Any]) -> "SimEvent":
        return cls(**dict(data))


# ----------------------------------------------------------------------
# Event models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PoissonArrivals:
    """``count`` job arrivals at Poisson instants (rate per time unit)."""

    kind = "poisson_arrivals"

    rate: float = 1.0
    count: int = 1
    family: str = "blast"
    n_tasks: int = 20
    start: float = 0.0

    def __post_init__(self):
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.n_tasks < 1:
            raise ValueError(f"n_tasks must be >= 1, got {self.n_tasks}")

    def events(self, seed: SeedLike) -> List[SimEvent]:
        rng = make_rng(seed)
        times = poisson_times(self.rate, self.count, rng, start=self.start)
        seeds = event_seeds(self.count, rng)
        return [SimEvent(time=t, kind="arrival", family=self.family,
                         n_tasks=self.n_tasks, seed=s)
                for t, s in zip(times, seeds)]

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "rate": self.rate, "count": self.count,
                "family": self.family, "n_tasks": self.n_tasks,
                "start": self.start}


@dataclass(frozen=True)
class TraceArrivals:
    """Job arrivals at explicit (trace-driven) instants."""

    kind = "trace_arrivals"

    times: Tuple[float, ...] = ()
    family: str = "blast"
    n_tasks: int = 20

    def __post_init__(self):
        object.__setattr__(self, "times",
                           tuple(float(t) for t in self.times))
        if self.n_tasks < 1:
            raise ValueError(f"n_tasks must be >= 1, got {self.n_tasks}")

    def events(self, seed: SeedLike) -> List[SimEvent]:
        seeds = event_seeds(len(self.times), seed)
        return [SimEvent(time=t, kind="arrival", family=self.family,
                         n_tasks=self.n_tasks, seed=s)
                for t, s in zip(self.times, seeds)]

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "times": _listed(self.times),
                "family": self.family, "n_tasks": self.n_tasks}


@dataclass(frozen=True)
class ProcessorChurn:
    """Processors failing, leaving gracefully, or joining mid-run.

    ``victims`` names explicit targets, consumed in order by the fail
    events then the leave events; when exhausted (or empty) a seeded
    random pick is resolved against the live processor set at replay
    time. A *fail* kills the victim's in-flight blocks (their progress is
    lost); a *leave* stops new placements but lets started blocks drain;
    a *join* adds a fresh processor the policies may use immediately.
    """

    kind = "churn"

    fail_times: Tuple[float, ...] = ()
    leave_times: Tuple[float, ...] = ()
    join_times: Tuple[float, ...] = ()
    victims: Tuple[str, ...] = ()
    join_speed: float = 1.0
    join_memory: float = 16.0
    join_kind: str = "joined"

    def __post_init__(self):
        for name in ("fail_times", "leave_times", "join_times"):
            object.__setattr__(self, name,
                               tuple(float(t) for t in getattr(self, name)))
        object.__setattr__(self, "victims",
                           tuple(str(v) for v in self.victims))
        if self.join_speed <= 0 or self.join_memory <= 0:
            raise ValueError("joining processors need positive speed/memory")

    def events(self, seed: SeedLike) -> List[SimEvent]:
        rng = make_rng(seed)
        n_victims = len(self.fail_times) + len(self.leave_times)
        picks = event_seeds(n_victims, rng)
        out: List[SimEvent] = []
        i = 0
        for kind, times in (("fail", self.fail_times),
                            ("leave", self.leave_times)):
            for t in times:
                if i < len(self.victims):
                    out.append(SimEvent(time=t, kind=kind,
                                        processor=self.victims[i]))
                else:
                    out.append(SimEvent(time=t, kind=kind, pick=picks[i]))
                i += 1
        for j, t in enumerate(self.join_times):
            out.append(SimEvent(time=t, kind="join",
                                processor=f"{self.join_kind}-{j}",
                                speed=self.join_speed,
                                memory=self.join_memory,
                                proc_kind=self.join_kind))
        out.sort(key=lambda ev: ev.time)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "fail_times": _listed(self.fail_times),
                "leave_times": _listed(self.leave_times),
                "join_times": _listed(self.join_times),
                "victims": _listed(self.victims),
                "join_speed": self.join_speed,
                "join_memory": self.join_memory,
                "join_kind": self.join_kind}


@dataclass(frozen=True)
class RuntimeInflation:
    """Stochastic runtime inflation: estimates prove optimistic mid-run.

    At each instant a lognormal factor ``>= 1`` multiplies the work of
    ~``fraction`` of the in-flight (incomplete) blocks — both the live
    replay and the policies' price model see the revised estimates, which
    is exactly what makes re-planning worthwhile.
    """

    kind = "inflation"

    times: Tuple[float, ...] = ()
    sigma: float = 0.25
    fraction: float = 0.5

    def __post_init__(self):
        object.__setattr__(self, "times",
                           tuple(float(t) for t in self.times))
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")

    def events(self, seed: SeedLike) -> List[SimEvent]:
        rng = make_rng(seed)
        seeds = event_seeds(len(self.times), rng)
        return [SimEvent(time=t, kind="inflate",
                         factor=lognormal_factor(self.sigma, rng),
                         fraction=self.fraction, seed=s)
                for t, s in zip(self.times, seeds)]

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "times": _listed(self.times),
                "sigma": self.sigma, "fraction": self.fraction}


EventModel = Union[PoissonArrivals, TraceArrivals, ProcessorChurn,
                   RuntimeInflation]

EVENT_MODEL_KINDS = {cls.kind: cls for cls in
                     (PoissonArrivals, TraceArrivals, ProcessorChurn,
                      RuntimeInflation)}


def model_from_dict(data: TMapping[str, Any]) -> EventModel:
    """Rebuild an event model from its ``to_dict`` form."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = EVENT_MODEL_KINDS.get(kind)
    if cls is None:
        valid = ", ".join(sorted(EVENT_MODEL_KINDS))
        raise ValueError(f"unknown event model kind {kind!r}; valid: {valid}")
    return cls(**{k: _tupled(v) for k, v in data.items()})


# ----------------------------------------------------------------------
# The dynamics block
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DynamicsSpec:
    """Everything dynamic about a scenario: perturbations + reaction.

    ``policy`` names a registered reaction policy (``static`` /
    ``resolve`` / ``warmstart``); ``algorithm`` is the cold re-solve
    algorithm (``None`` = the request's own). With ``relative_times``
    (the default) every model time is a fraction of the undisturbed
    plan's makespan — ``0.5`` means mid-run on any instance; absolute
    virtual times are available by switching it off. ``horizon`` drops
    events beyond it (same unit as the times). ``warm_sweep`` lets the
    warm-start policy follow forced repairs with one delta-priced
    improvement sweep over the not-yet-started blocks.
    """

    models: Tuple[EventModel, ...] = ()
    seed: int = 0
    policy: str = "warmstart"
    algorithm: Optional[str] = None
    relative_times: bool = True
    warm_sweep: bool = True
    horizon: Optional[float] = None

    def __post_init__(self):
        object.__setattr__(self, "models", tuple(self.models))
        for model in self.models:
            if type(model).kind not in EVENT_MODEL_KINDS:
                raise ValueError(f"not an event model: {model!r}")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")

    # ------------------------------------------------------------------
    def compile(self) -> List[SimEvent]:
        """The merged, time-ordered event stream (deterministic per seed).

        Each model draws from its own spawned child stream, so adding a
        model never shifts the events of its siblings.
        """
        if not self.models:
            return []
        rngs = spawn_rngs(self.seed, len(self.models))
        streams = [model.events(rng)
                   for model, rng in zip(self.models, rngs)]
        merged = merge_timelines(streams)
        if self.horizon is not None:
            merged = [ev for ev in merged if ev.time <= self.horizon]
        return merged

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"models": [m.to_dict() for m in self.models],
                "seed": self.seed,
                "policy": self.policy,
                "algorithm": self.algorithm,
                "relative_times": self.relative_times,
                "warm_sweep": self.warm_sweep,
                "horizon": self.horizon}

    @classmethod
    def from_dict(cls, data: TMapping[str, Any]) -> "DynamicsSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown dynamics field(s) {sorted(unknown)}; "
                             f"valid: {sorted(known)}")
        kwargs = {k: data[k] for k in known if k in data}
        kwargs["models"] = tuple(model_from_dict(m)
                                 for m in data.get("models", ()))
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — also the fingerprint payload."""
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "DynamicsSpec":
        return cls.from_dict(json.loads(text))
