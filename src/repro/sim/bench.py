"""Warm-start vs cold re-solve benchmark (the ``BENCH_sim.json`` gate).

One 10k-task paper-family DAG is planned once, then replayed twice under
the identical mid-run failure of the *busiest* processor (a random
victim usually hits an idle machine and nobody has to repair anything) —
once with the ``warmstart`` policy (incremental repair priced by
evaluator deltas) and once with ``resolve`` (cold re-solve of the
remainder through the registered algorithm). The committed report
records the reaction-latency speedup; :func:`compare_sim_to_baseline`
is the CI gate:

* ``warmstart`` must spend **zero** full bottom-weight passes (the
  engine's evaluator pass counter is the witness);
* its realized makespan must be equal or better than ``resolve``'s;
* the measured speedup must stay above ``tolerance`` x the committed
  baseline speedup (and above 1x absolutely).

Latencies are min-of-``repeats``; everything else is deterministic per
seed, so two runs of the same config disagree only on wall-clock.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

#: benchmark defaults — the acceptance scale of the issue
DEFAULT_N = 10_000
DEFAULT_REPEATS = 3
DEFAULT_TOLERANCE = 0.4

#: the two policies the gate compares
POLICIES = ("warmstart", "resolve")


def run_sim_bench(n: int = DEFAULT_N, seed: int = 0,
                  repeats: int = DEFAULT_REPEATS,
                  family: str = "blast", algorithm: str = "daghetpart",
                  progress: Optional[Callable[[str], None]] = None,
                  ) -> Dict[str, Any]:
    """Measure warm-start vs cold-re-solve reaction cost at scale ``n``."""
    from repro.api.batch import solve
    from repro.api.envelopes import ScheduleRequest
    from repro.generators.families import generate_workflow
    from repro.platform.presets import cluster_by_name
    from repro.sim.engine import SimEngine
    from repro.sim.events import DynamicsSpec, ProcessorChurn

    if progress:
        progress(f"planning {family}-{n} with {algorithm}")
    wf = generate_workflow(family, n, seed=seed)
    plan = solve(ScheduleRequest(
        workflow=wf, cluster=cluster_by_name("default"),
        algorithm=algorithm, scale_memory=True, want_mapping=True))
    if plan.failure is not None or plan.mapping is None:
        raise RuntimeError(f"bench plan failed: {plan.failure}")

    # fail the processor carrying the most tasks, early enough that its
    # block is still in flight: both policies face real repair work
    victim = max(plan.mapping.assignments,
                 key=lambda a: len(a.tasks)).processor.name
    churn = ProcessorChurn(fail_times=(0.25,), victims=(victim,))
    report: Dict[str, Any] = {
        "n": n, "seed": seed, "repeats": repeats,
        "family": family, "algorithm": algorithm,
        "plan_makespan": plan.makespan,
        "n_blocks": plan.n_blocks,
        "victim": victim,
        "policies": {},
    }
    for policy in POLICIES:
        dynamics = DynamicsSpec(models=(churn,), seed=seed + 1,
                                policy=policy)
        best: Optional[Dict[str, Any]] = None
        for rep in range(max(1, repeats)):
            if progress:
                progress(f"replaying {policy} ({rep + 1}/{max(1, repeats)})")
            sim = SimEngine(plan.mapping, dynamics,
                            algorithm=algorithm).run()
            entry = {
                "react_total_s": sim.metrics["sim_react_total_s"],
                "react_max_s": sim.metrics["sim_react_max_s"],
                "realized_makespan": sim.realized,
                "degradation_pct": sim.degradation_pct,
                "full_passes": sim.metrics["sim_full_passes"],
                "task_migrations": sim.metrics["sim_task_migrations"],
                "replans": sim.metrics["sim_replans"],
            }
            if best is None or entry["react_total_s"] < best["react_total_s"]:
                best = entry
        report["policies"][policy] = best
    warm = report["policies"]["warmstart"]
    cold = report["policies"]["resolve"]
    report["speedup"] = (cold["react_total_s"] / warm["react_total_s"]
                         if warm["react_total_s"] > 0 else float("inf"))
    return report


def compare_sim_to_baseline(report: Dict[str, Any],
                            baseline: Dict[str, Any],
                            tolerance: float = DEFAULT_TOLERANCE
                            ) -> List[str]:
    """Regression check against a committed report; empty list = pass."""
    problems: List[str] = []
    warm = report["policies"].get("warmstart")
    cold = report["policies"].get("resolve")
    if warm is None or cold is None:
        return [f"report is missing a policy entry: "
                f"{sorted(report['policies'])}"]
    if warm["full_passes"] != 0:
        problems.append(
            f"warmstart spent {warm['full_passes']} full bottom-weight "
            f"pass(es); the warm-start contract is zero")
    if warm["realized_makespan"] > cold["realized_makespan"] * (1 + 1e-9):
        problems.append(
            f"warmstart realized {warm['realized_makespan']:.6g} is worse "
            f"than resolve's {cold['realized_makespan']:.6g}")
    speedup = report.get("speedup", 0.0)
    if speedup <= 1.0:
        problems.append(
            f"warmstart is not faster than cold re-solve "
            f"(speedup {speedup:.2f}x)")
    floor = baseline.get("speedup", 0.0) * tolerance
    if speedup < floor:
        problems.append(
            f"speedup {speedup:.2f}x fell below {floor:.2f}x "
            f"({tolerance:g} x the committed {baseline.get('speedup'):.2f}x)")
    return problems


def write_sim_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_sim_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
