"""Deterministic event-driven replay of a computed mapping.

:class:`SimEngine` takes a solved :class:`~repro.core.mapping.Mapping`
and a :class:`~repro.sim.events.DynamicsSpec` and replays the plan under
a virtual clock, applying the compiled perturbation stream event by
event. Between events the projection is the same forward recursion that
defines the bottom-weight makespan (``start = max(ready, placed_at,
avail)``), so an event-free replay realizes exactly
``Mapping.makespan()`` — that undisturbed value is the robustness
baseline every disturbed run is measured against.

Execution model
---------------
* Blocks whose projected finish is ``<= t`` when the clock reaches an
  event at ``t`` are *frozen*: their finish times become facts and their
  processor's availability advances.
* Blocks whose projected start is ``< t`` have *started*: they keep
  running (a graceful ``leave`` lets them drain) unless their processor
  *fails*, which kills them — all progress is lost and they re-enter the
  pending pool.
* Everything else is fair game for the reaction policy: pending blocks
  need a processor, not-yet-started blocks may be moved, and wholesale
  re-solves may swap the entire remaining block structure.
* Placements go to *free* live processors only (no incomplete block),
  preserving the model's injectivity; a block no policy can place is
  retried at every event and in a final drain loop.

Per-processor capacity is enforced at placement time; a later runtime
inflation can stretch an already-started block past a successor placed
behind it, transiently oversubscribing the processor in the projection.
That approximation is deliberate — the replay prices plans, it does not
schedule cycles.

Determinism: given one mapping and one spec the event log, migration
counts, and realized makespan are bit-for-bit reproducible (reaction
*latencies* are wall-clock and live outside the log).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.evaluator import MakespanEvaluator
from repro.core.mapping import Mapping
from repro.core.quotient import BlockId, QuotientGraph
from repro.generators.events import subset_mask
from repro.generators.families import generate_workflow
from repro.memdag.requirement import RequirementCache
from repro.platform.processor import Processor
from repro.sim.events import DynamicsSpec, SimEvent
from repro.sim.policies import ReactionContext, get_policy
from repro.utils.errors import NoFeasibleMappingError
from repro.utils.rng import make_rng

__all__ = ["SimEngine", "SimReport"]


@dataclass
class SimReport:
    """What one simulation run produced.

    ``events`` is the resolved, JSON-serializable event log (the
    determinism artifact); ``metrics`` holds the flat ``sim_*`` entries
    the runner merges into the result envelope's ``extra`` — latency
    keys end in ``_s`` so the scenario differ knows to skip them.
    """

    policy: str
    baseline: float
    realized: float
    events: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def degradation_pct(self) -> float:
        if self.baseline <= 0:
            return 0.0
        return 100.0 * (self.realized / self.baseline - 1.0)


class _EngineContext(ReactionContext):
    """The engine's live view handed to a reaction policy at one event."""

    def __init__(self, engine: "SimEngine", event: SimEvent,
                 started: Set[BlockId]):
        self.engine = engine
        self.event = event
        self.time = engine.now
        self.wf = engine.wf
        self.q = engine.q
        self.cluster = engine.cluster
        self.algorithm = engine.algorithm
        self.warm_sweep = engine.dynamics.warm_sweep
        self._started_set = started

    @property
    def evaluator(self) -> MakespanEvaluator:
        return self.engine.evaluator

    # -- read surface --------------------------------------------------
    def free_processors(self) -> List[Processor]:
        eng = self.engine
        occupied = {blk.proc.name for bid, blk in eng.q.blocks.items()
                    if bid not in eng.completed and blk.proc is not None}
        return sorted((p for n, p in eng.live.items() if n not in occupied),
                      key=lambda p: (-p.speed, -p.memory, p.name))

    def pending(self) -> List[BlockId]:
        eng = self.engine
        return sorted(eng.pending_since,
                      key=lambda b: (eng.pending_since[b], b))

    def movable(self) -> List[BlockId]:
        eng = self.engine
        out = []
        for bid in sorted(eng.q.blocks):
            if bid in eng.completed or bid in self._started_set:
                continue
            blk = eng.q.blocks[bid]
            if blk.proc is None or blk.proc.name not in eng.live:
                continue
            out.append(bid)
        return out

    def requirement(self, bid: BlockId) -> float:
        return self.engine._requirement(bid)

    def block_tasks(self, bid: BlockId):
        return frozenset(self.engine.q.blocks[bid].tasks)

    # -- write surface -------------------------------------------------
    def place(self, bid: BlockId, proc: Processor) -> None:
        eng = self.engine
        if bid in eng.completed or bid in self._started_set:
            raise ValueError(f"block {bid} already started; cannot (re)place")
        if proc.name not in eng.live:
            raise ValueError(f"processor {proc.name!r} is not live")
        occupied = {blk.proc.name for b, blk in eng.q.blocks.items()
                    if b not in eng.completed and blk.proc is not None
                    and b != bid}
        if proc.name in occupied:
            raise ValueError(
                f"processor {proc.name!r} already hosts an incomplete block")
        eng._place(bid, proc, at=eng.now)

    def replace_remaining(self, assignments) -> None:
        self.engine._replace_remaining(self, assignments)


class SimEngine:
    """Replay ``mapping`` under ``dynamics``; see the module docstring."""

    def __init__(self, mapping: Mapping, dynamics: DynamicsSpec,
                 policy: Optional[str] = None,
                 algorithm: Optional[str] = None):
        self.dynamics = dynamics
        self.policy_name = policy or dynamics.policy
        self.algorithm = (dynamics.algorithm or algorithm
                          or mapping.algorithm or "cpack")

        # private copies: the engine mutates both graph and quotient
        self.wf = mapping.workflow.copy()
        self.cluster = mapping.cluster
        self.q = QuotientGraph.from_partition(
            self.wf,
            [set(a.tasks) for a in mapping.assignments],
            [a.processor for a in mapping.assignments])
        self.evaluator = MakespanEvaluator(self.q, self.cluster)
        self._full_passes_prior = 0

        self.live: Dict[str, Processor] = {p.name: p
                                           for p in self.cluster.processors}
        self._known: Dict[str, Processor] = dict(self.live)
        self.avail: Dict[str, float] = {}
        self.placed_at: Dict[BlockId, float] = {}
        self.completed: Dict[BlockId, float] = {}
        self.pending_since: Dict[BlockId, float] = {}
        self._prev_proc: Dict[BlockId, Optional[str]] = {}
        self._req: Dict[BlockId, float] = {
            bid: a.requirement
            for bid, a in zip(self.q.blocks, mapping.assignments)}
        self._reqcache: Optional[RequirementCache] = None

        self.now = 0.0
        self.baseline = 0.0
        self.migrations = 0
        self.replans = 0
        self.arrived_tasks = 0
        self.killed_blocks = 0
        self.counts = {k: 0 for k in
                       ("arrival", "fail", "leave", "join", "inflate")}
        self.react_total = 0.0
        self.react_max = 0.0
        self.log: List[Dict[str, Any]] = []
        self._schedule: Dict[BlockId, Tuple[float, float]] = {}
        self._n_jobs = 0

    # ------------------------------------------------------------------
    @property
    def full_passes(self) -> int:
        """Full bottom-weight passes beyond the unavoidable warm-up pass.

        The CI warm-start gate asserts this stays 0 for the ``warmstart``
        policy: every repair is priced through evaluator deltas.
        """
        return (self._full_passes_prior
                + self.evaluator.full_recomputes - 1)

    # ------------------------------------------------------------------
    def run(self) -> SimReport:
        policy = get_policy(self.policy_name)
        self._schedule = self._forward()
        if len(self._schedule) != len(self.q.blocks):
            raise NoFeasibleMappingError(
                "initial mapping leaves blocks unscheduled")
        self.baseline = max((f for _, f in self._schedule.values()),
                            default=0.0)
        scale = (self.baseline
                 if self.dynamics.relative_times and self.baseline > 0
                 else 1.0)

        for ev0 in self.dynamics.compile():
            t = ev0.time * scale
            self.now = t
            self._freeze(t)
            started = self._started(t)
            resolved = self._apply(replace(ev0, time=t), started)
            self.counts[resolved.kind] += 1
            ctx = _EngineContext(self, resolved, started)
            tic = perf_counter()
            policy.react(ctx)
            latency = perf_counter() - tic
            self.react_total += latency
            self.react_max = max(self.react_max, latency)
            self._schedule = self._forward()
            record = dict(resolved.to_dict())
            record["migrations_total"] = self.migrations
            record["deferred"] = len(self.pending_since)
            record["plan_makespan"] = self._projected()
            self.log.append(record)

        self._drain()
        realized = self._projected()
        report = SimReport(policy=policy.name, baseline=self.baseline,
                           realized=realized, events=self.log)
        report.metrics = {
            "sim_policy": policy.name,
            "sim_events": len(self.log),
            "sim_arrivals": self.counts["arrival"],
            "sim_failures": self.counts["fail"],
            "sim_leaves": self.counts["leave"],
            "sim_joins": self.counts["join"],
            "sim_inflations": self.counts["inflate"],
            "sim_arrived_tasks": self.arrived_tasks,
            "sim_killed_blocks": self.killed_blocks,
            "sim_plan_makespan": self.baseline,
            "sim_realized_makespan": realized,
            "sim_degradation_pct": report.degradation_pct,
            "sim_task_migrations": self.migrations,
            "sim_replans": self.replans,
            "sim_full_passes": self.full_passes,
            "sim_react_total_s": self.react_total,
            "sim_react_max_s": self.react_max,
        }
        return report

    # ------------------------------------------------------------------
    # the forward projection (the realized-schedule recursion)
    # ------------------------------------------------------------------
    def _forward(self) -> Dict[BlockId, Tuple[float, float]]:
        """Project (start, finish) for every schedulable incomplete block.

        Kahn order over the incomplete sub-quotient; a block is
        schedulable once it has a processor and every ancestor is
        completed or scheduled. Matches the bottom-weight arithmetic:
        ``ready = max over parents (finish + c / link)``.
        """
        q = self.q
        completed = self.completed
        sched: Dict[BlockId, Tuple[float, float]] = {}
        indeg: Dict[BlockId, int] = {}
        for b in q.blocks:
            if b in completed:
                continue
            indeg[b] = sum(1 for p in q.pred[b] if p not in completed)
        ready = [b for b, d in indeg.items() if d == 0]
        link = self.cluster.link_bandwidth
        head = 0
        while head < len(ready):
            b = ready[head]
            head += 1
            blk = q.blocks[b]
            if blk.proc is not None:
                t0 = max(self.placed_at.get(b, 0.0),
                         self.avail.get(blk.proc.name, 0.0))
                ok = True
                for par, c in q.pred[b].items():
                    if par in completed:
                        pf = completed[par]
                    else:
                        ps = sched.get(par)
                        if ps is None:     # an unplaced ancestor blocks b
                            ok = False
                            break
                        pf = ps[1]
                    t0 = max(t0, pf + c / link(q.blocks[par].proc, blk.proc))
                if ok:
                    sched[b] = (t0, t0 + blk.work / blk.proc.speed)
            for ch in q.succ[b]:
                if ch in indeg:
                    indeg[ch] -= 1
                    if indeg[ch] == 0:
                        ready.append(ch)
        return sched

    def _freeze(self, t: float) -> None:
        """Turn projected finishes ``<= t`` into facts."""
        for b, (_, f) in self._schedule.items():
            if b in self.completed or f > t:
                continue
            self.completed[b] = f
            name = self.q.blocks[b].proc.name
            self.avail[name] = max(self.avail.get(name, 0.0), f)

    def _started(self, t: float) -> Set[BlockId]:
        return {b for b, (s, _) in self._schedule.items()
                if s < t and b not in self.completed}

    def _projected(self) -> float:
        vals = list(self.completed.values())
        vals.extend(f for _, f in self._schedule.values())
        return max(vals, default=0.0)

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def _apply(self, ev: SimEvent, started: Set[BlockId]) -> SimEvent:
        if ev.kind == "arrival":
            return self._apply_arrival(ev)
        if ev.kind in ("fail", "leave"):
            return self._apply_churn(ev, started)
        if ev.kind == "join":
            return self._apply_join(ev)
        return self._apply_inflate(ev)

    def _apply_arrival(self, ev: SimEvent) -> SimEvent:
        job = generate_workflow(ev.family, ev.n_tasks, seed=ev.seed)
        prefix = f"job{self._n_jobs}"
        self._n_jobs += 1
        node_of = {}
        for u in job.tasks():
            node = (prefix, u)
            self.wf.add_task(node, work=job.work(u), memory=job.memory(u))
            node_of[u] = node
        for u, v, c in job.edges():
            self.wf.add_edge(node_of[u], node_of[v], c)
        bid = self.q.add_block(set(node_of.values()))
        self.pending_since[bid] = self.now
        self.arrived_tasks += len(node_of)
        return ev

    def _apply_churn(self, ev: SimEvent, started: Set[BlockId]) -> SimEvent:
        if ev.processor:
            if ev.processor not in self.live:
                return replace(ev, processor="")    # victim already gone
            victim = ev.processor
        else:
            pool = sorted(self.live)
            if not pool:
                return replace(ev, processor="")
            victim = pool[ev.pick % len(pool)]
        self.live.pop(victim)
        for bid in sorted(self.q.blocks):
            if bid in self.completed:
                continue
            blk = self.q.blocks[bid]
            if blk.proc is None or blk.proc.name != victim:
                continue
            if ev.kind == "leave" and bid in started:
                continue        # graceful: in-flight work drains
            self._prev_proc[bid] = victim
            self.q.set_proc(bid, None)
            self.placed_at.pop(bid, None)
            self.pending_since[bid] = self.now
            if ev.kind == "fail":
                self.killed_blocks += 1
                # its progress is gone: the block is startable again
                started.discard(bid)
        if ev.kind == "fail":
            self.avail.pop(victim, None)
        return replace(ev, processor=victim)

    def _apply_join(self, ev: SimEvent) -> SimEvent:
        name = ev.processor or "joined"
        while name in self._known:
            name += "+"
        proc = Processor(name=name, speed=ev.speed, memory=ev.memory,
                         kind=ev.proc_kind or "joined")
        self.live[name] = proc
        self._known[name] = proc
        self.avail[name] = self.now
        return replace(ev, processor=name)

    def _apply_inflate(self, ev: SimEvent) -> SimEvent:
        bids = [b for b in sorted(self.q.blocks) if b not in self.completed]
        if not bids:
            return ev
        mask = subset_mask(len(bids), ev.fraction, make_rng(ev.seed))
        for bid, chosen in zip(bids, mask):
            if not chosen:
                continue
            blk = self.q.blocks[bid]
            for u in blk.tasks:
                self.wf.set_work(u, self.wf.work(u) * ev.factor)
            self.q.set_work(bid, blk.work * ev.factor)
        return ev

    # ------------------------------------------------------------------
    # plan mutation (called through the context)
    # ------------------------------------------------------------------
    def _requirement(self, bid: BlockId) -> float:
        r = self._req.get(bid)
        if r is None:
            if self._reqcache is None:
                self._reqcache = RequirementCache(self.wf)
            r = self._reqcache.requirement(self.q.blocks[bid].tasks).peak
            self._req[bid] = r
        return r

    def _place(self, bid: BlockId, proc: Processor, at: float) -> None:
        blk = self.q.blocks[bid]
        old = (blk.proc.name if blk.proc is not None
               else self._prev_proc.get(bid))
        self.q.set_proc(bid, proc)
        self.placed_at[bid] = at
        self.pending_since.pop(bid, None)
        if old is not None and old != proc.name:
            self.migrations += len(blk.tasks)
        self._prev_proc.pop(bid, None)

    def _replace_remaining(self, ctx: _EngineContext, assignments) -> None:
        """Swap the whole not-yet-started plan for ``assignments``.

        ``assignments`` is a list of ``(tasks, processor)`` pairs that
        must cover exactly the union of the pending + movable blocks'
        tasks; frozen (completed / started) blocks are carried over
        untouched, the evaluator restarts cold (one full pass — this is
        the ``resolve`` policy's price), and migrations are counted per
        task against the pre-event placement.
        """
        replan = set(ctx.pending()) | set(ctx.movable())
        old_q = self.q
        replan_tasks = set()
        old_proc_of: Dict[Any, Optional[str]] = {}
        for bid in replan:
            blk = old_q.blocks[bid]
            name = (blk.proc.name if blk.proc is not None
                    else self._prev_proc.get(bid))
            for u in blk.tasks:
                replan_tasks.add(u)
                old_proc_of[u] = name

        new_tasks = set()
        frozen_procs = {old_q.blocks[b].proc.name for b in old_q.blocks
                        if b not in replan and b not in self.completed
                        and old_q.blocks[b].proc is not None}
        seen_procs = set()
        for tasks, proc in assignments:
            new_tasks |= set(tasks)
            if proc.name not in self.live:
                raise ValueError(f"processor {proc.name!r} is not live")
            if proc.name in frozen_procs or proc.name in seen_procs:
                raise ValueError(
                    f"processor {proc.name!r} is not free for re-planning")
            seen_procs.add(proc.name)
        if new_tasks != replan_tasks:
            raise ValueError("replacement assignments must cover exactly "
                             "the re-planned tasks")

        partition, procs, carried = [], [], []
        for bid in old_q.blocks:
            if bid in replan:
                continue
            blk = old_q.blocks[bid]
            partition.append(set(blk.tasks))
            procs.append(blk.proc)
            carried.append(bid)
        for tasks, proc in assignments:
            partition.append(set(tasks))
            procs.append(proc)
            carried.append(None)

        new_q = QuotientGraph.from_partition(self.wf, partition, procs)
        completed, placed_at, req = {}, {}, {}
        for new_bid, old_bid in zip(new_q.blocks, carried):
            if old_bid is None:
                placed_at[new_bid] = self.now
                nblk = new_q.blocks[new_bid]
                for u in nblk.tasks:
                    old = old_proc_of.get(u)
                    if old is not None and old != nblk.proc.name:
                        self.migrations += 1
            else:
                if old_bid in self.completed:
                    completed[new_bid] = self.completed[old_bid]
                if old_bid in self.placed_at:
                    placed_at[new_bid] = self.placed_at[old_bid]
                if old_bid in self._req:
                    req[new_bid] = self._req[old_bid]

        self.q = new_q
        self.completed = completed
        self.placed_at = placed_at
        self._req = req
        self.pending_since = {}
        self._prev_proc = {}
        self._full_passes_prior += self.evaluator.full_recomputes
        self.evaluator = MakespanEvaluator(new_q, self.cluster)
        self.replans += 1
        ctx.q = new_q          # the context outlives the swap briefly

    # ------------------------------------------------------------------
    # final drain: place every still-deferred block
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Place deferred blocks one at a time at their earliest release.

        Candidates are live processors with enough memory; each placement
        lands at ``max(deferral time, availability, projected finishes on
        that processor)``. A processor hosting a block that is itself
        waiting on an unplaced ancestor is used only as a last resort.
        Raises :class:`NoFeasibleMappingError` when a block fits nowhere.
        """
        guard = 0
        while self.pending_since:
            guard += 1
            if guard > len(self.q.blocks) + 10_000:
                raise RuntimeError("placement drain failed to converge")
            sched = self._forward()
            bid = min(self.pending_since,
                      key=lambda b: (self.pending_since[b], b))
            need = self._requirement(bid)
            cands = [p for p in self.live.values() if need <= p.memory]
            if not cands:
                blk = self.q.blocks[bid]
                raise NoFeasibleMappingError(
                    f"deferred block of {len(blk.tasks)} task(s) "
                    f"(requirement {need:g}) fits no live processor",
                    unplaced_tasks=len(blk.tasks))
            scored = []
            for p in cands:
                rel = max(self.avail.get(p.name, 0.0),
                          self.pending_since[bid])
                blocked = False
                for b in self.q.blocks:
                    if b in self.completed or b == bid:
                        continue
                    blk = self.q.blocks[b]
                    if blk.proc is None or blk.proc.name != p.name:
                        continue
                    here = sched.get(b)
                    if here is None:
                        blocked = True
                    else:
                        rel = max(rel, here[1])
                scored.append((blocked, rel, -p.speed, p.name, p))
            scored.sort(key=lambda s: s[:4])
            _, rel, _, _, best = scored[0]
            self._place(bid, best, at=rel)
        self._schedule = self._forward()
        missing = [b for b in self.q.blocks
                   if b not in self.completed and b not in self._schedule]
        if missing:
            raise RuntimeError(
                f"unschedulable blocks remain after drain: {missing}")
