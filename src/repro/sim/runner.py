"""Scenario-level entry points for the dynamic simulator.

:func:`simulate_request` is the single-request façade: solve (or fetch)
the static plan, replay it under a :class:`~repro.sim.events.DynamicsSpec`
through :class:`~repro.sim.engine.SimEngine`, and return an ordinary
:class:`~repro.api.envelopes.ScheduleResult` whose ``makespan`` is the
*realized* makespan and whose ``extra`` carries the flat ``sim_*``
robustness metrics plus the resolved event log — so every downstream
consumer (JSONL records, ``repro scenario diff``, the experiment tables)
works on simulator output unchanged.

Caching layers on the static machinery without touching it: the cache
key is :func:`dynamic_fingerprint` — the static
:func:`~repro.api.cache.request_fingerprint` extended with the dynamics
spec's canonical JSON — so a static solve and its dynamic replays
coexist in one cache under distinct keys, and a re-run of the same
(request, dynamics) pair is a pure cache hit.

:func:`run_dynamic_scenario` streams a :class:`ScenarioSpec` whose
``dynamics`` block is set through the simulator in expansion order.
Simulation is sequential by design — the engine replays a virtual clock
and is not worth forking per request at smoke/bench scales.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Iterator, Optional, Union

from repro.api.batch import ProgressHook, solve
from repro.api.cache import CacheBackend, open_cache, request_fingerprint
from repro.api.envelopes import FailureInfo, ScheduleRequest, ScheduleResult
from repro.api.scenario import ScenarioSpec, expand
from repro.sim.engine import SimEngine
from repro.sim.events import DynamicsSpec
from repro.utils.errors import ReproError

__all__ = ["dynamic_fingerprint", "simulate_request", "run_dynamic_scenario"]


def dynamic_fingerprint(request: ScheduleRequest,
                        dynamics: DynamicsSpec) -> str:
    """Cache key for one (request, dynamics) replay.

    The static fingerprint already hashes everything determining the
    plan; appending the dynamics spec's canonical JSON separates every
    distinct perturbation stream / policy / seed without changing the
    static cache entries at all.
    """
    payload = request_fingerprint(request) + ":" + dynamics.to_json()
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def simulate_request(request: ScheduleRequest,
                     dynamics: DynamicsSpec,
                     cache: Union[None, str, CacheBackend] = None,
                     policy: Optional[str] = None) -> ScheduleResult:
    """Solve the static plan, replay it under ``dynamics``, envelope it.

    ``policy`` overrides the spec's reaction policy (the CLI's
    ``--policy`` flag); it is part of the fingerprint via the effective
    dynamics spec, so overridden runs cache separately. Scheduling *and*
    simulation failures land in ``result.failure`` (``NoFeasibleMapping``
    when an orphaned or arriving block fits no live processor) — the
    same structured outcome the static batch façade records.
    """
    if policy is not None and policy != dynamics.policy:
        dynamics = dataclasses.replace(dynamics, policy=policy)

    own_cache = isinstance(cache, str)
    store = open_cache(cache) if own_cache else cache
    try:
        fingerprint = dynamic_fingerprint(request, dynamics)
        if store is not None:
            hit = store.get(fingerprint, request)
            if hit is not None:
                return hit

        plan = solve(dataclasses.replace(request, want_mapping=True))
        if plan.failure is not None or plan.mapping is None:
            # scheduling failed — a legitimate outcome, never cached
            # (consistent with the static batch façade)
            return dataclasses.replace(
                plan, mapping=plan.mapping if request.want_mapping else None)

        try:
            report = SimEngine(plan.mapping, dynamics,
                               algorithm=request.algorithm).run()
        except ReproError as exc:
            result = dataclasses.replace(
                plan,
                failure=FailureInfo.from_exception(exc),
                mapping=plan.mapping if request.want_mapping else None)
            return result

        extra = dict(plan.extra)
        extra.update(report.metrics)
        extra["sim_event_log"] = report.events
        result = dataclasses.replace(
            plan,
            makespan=report.realized,
            extra=extra,
            mapping=plan.mapping if request.want_mapping else None)
        if store is not None:
            store.put(fingerprint, result)
        return result
    finally:
        if own_cache:
            store.close()


def run_dynamic_scenario(spec: ScenarioSpec,
                         cache: Union[None, str, CacheBackend] = None,
                         progress: Optional[ProgressHook] = None,
                         policy: Optional[str] = None,
                         ) -> Iterator[ScheduleResult]:
    """Stream the scenario through the simulator in expansion order.

    Requires the spec's ``dynamics`` block (``repro simulate`` rejects a
    static spec with the same error). ``cache`` accepts the usual URI or
    open backend; entries are keyed by :func:`dynamic_fingerprint`.
    """
    if spec.dynamics is None:
        raise ValueError(
            f"scenario {spec.name!r} has no dynamics block; "
            f"add one or use the static runner")
    own_cache = isinstance(cache, str)
    store = open_cache(cache) if own_cache else cache
    try:
        for index, request in enumerate(expand(spec)):
            result = simulate_request(request, spec.dynamics,
                                      cache=store, policy=policy)
            if progress is not None:
                progress(index, request, result)
            yield result
    finally:
        if own_cache:
            store.close()
