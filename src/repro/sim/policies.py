"""Reaction policies: what the simulator does when a perturbation lands.

A policy receives a :class:`ReactionContext` (the engine's live view —
pending blocks that need a processor, re-mappable blocks that have not
started, the free processor list, and the shared incremental
:class:`~repro.core.evaluator.MakespanEvaluator`) and mutates the plan
through the context's ``place`` / ``replace_remaining`` methods. Three
policies ship, behind a registry mirroring ``@register_algorithm``:

``static``
    Never re-plans. Forced repairs only: orphaned blocks and arriving
    jobs go to the fastest feasible free processor, no pricing.
``resolve``
    Cold full re-solve: the not-yet-started remainder is re-submitted to
    a registered scheduling algorithm as a fresh problem on the free
    processors. Pays full solver latency at every event.
``warmstart``
    Incremental repair seeded from the surviving mapping: each pending
    block is placed at the argmin of :meth:`MakespanEvaluator.eval_move`
    over the feasible free processors — priced through delta updates,
    zero full bottom-weight passes — optionally followed by one
    delta-priced improvement sweep over the movable blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.platform.processor import Processor

__all__ = [
    "ReactionContext",
    "ReactionPolicy",
    "available_policies",
    "get_policy",
    "policy_infos",
    "register_policy",
]


class ReactionContext:
    """What a policy sees and may do at one event. Implemented by the
    engine (:class:`repro.sim.engine.SimEngine`); documented here so
    policies depend on the interface, not the engine module.

    Read surface: ``time``, ``event``, ``wf``, ``q``, ``cluster``,
    ``evaluator``, ``algorithm``, ``warm_sweep``, ``free_processors()``,
    ``pending()``, ``movable()``, ``requirement(bid)``,
    ``block_tasks(bid)``. Write surface: ``place(bid, proc)`` (assign a
    pending or movable block to a *free* processor) and
    ``replace_remaining(assignments)`` (swap the whole not-yet-started
    plan for a new block structure).
    """

    def free_processors(self) -> List[Processor]:
        raise NotImplementedError

    def pending(self) -> List[int]:
        raise NotImplementedError

    def movable(self) -> List[int]:
        raise NotImplementedError

    def requirement(self, bid: int) -> float:
        raise NotImplementedError

    def block_tasks(self, bid: int):
        raise NotImplementedError

    def place(self, bid: int, proc: Processor) -> None:
        raise NotImplementedError

    def replace_remaining(self, assignments) -> None:
        raise NotImplementedError


class ReactionPolicy:
    """Base class: react to one event by mutating the context's plan."""

    #: registry key, set by :func:`register_policy`
    name: str = ""

    def react(self, ctx: ReactionContext) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class PolicyInfo:
    """One registry entry."""

    name: str
    cls: type
    summary: str = ""


_POLICIES: Dict[str, PolicyInfo] = {}


def _canonical(name: str) -> str:
    cleaned = name.strip().lower().replace("-", "").replace("_", "")
    if not cleaned:
        raise ValueError(f"invalid policy name: {name!r}")
    return cleaned


def register_policy(name: str, summary: str = "") -> Callable[[type], type]:
    """Class decorator registering a :class:`ReactionPolicy`."""
    key = _canonical(name)

    def deco(cls: type) -> type:
        if key in _POLICIES:
            raise ValueError(f"reaction policy {name!r} is already registered")
        cls.name = key
        _POLICIES[key] = PolicyInfo(name=key, cls=cls, summary=summary)
        return cls
    return deco


def get_policy(name: str) -> ReactionPolicy:
    """A fresh instance of the named policy (policies are stateless)."""
    key = _canonical(name)
    info = _POLICIES.get(key)
    if info is None:
        valid = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown reaction policy {name!r}; valid: {valid}")
    return info.cls()


def available_policies() -> List[str]:
    return sorted(_POLICIES)


def policy_infos() -> List[PolicyInfo]:
    return [_POLICIES[k] for k in sorted(_POLICIES)]


# ----------------------------------------------------------------------
# The built-in policies
# ----------------------------------------------------------------------
def _feasible(ctx: ReactionContext, bid: int,
              procs: List[Processor]) -> List[Processor]:
    req = ctx.requirement(bid)
    return [p for p in procs if req <= p.memory]


@register_policy("static", summary="never re-plan; forced repairs only")
class StaticPolicy(ReactionPolicy):
    """Fastest-feasible-free placement, no pricing, no re-mapping."""

    def react(self, ctx: ReactionContext) -> None:
        for bid in ctx.pending():
            procs = _feasible(ctx, bid, ctx.free_processors())
            if not procs:
                continue  # stays deferred; the engine retries later
            best = min(procs, key=lambda p: (-p.speed, -p.memory, p.name))
            ctx.place(bid, best)


@register_policy("warmstart",
                 summary="incremental repair priced by evaluator deltas")
class WarmStartPolicy(ReactionPolicy):
    """Argmin-``eval_move`` placement plus an optional improvement sweep.

    Every price is a delta sync of the shared evaluator (the surviving
    bottom-weight table is the warm start) — zero full passes per event,
    which is what the CI warm-start gate asserts.
    """

    def react(self, ctx: ReactionContext) -> None:
        ev = ctx.evaluator
        for bid in ctx.pending():
            procs = _feasible(ctx, bid, ctx.free_processors())
            if not procs:
                continue
            best = min(procs, key=lambda p: (ev.eval_move(bid, p),
                                             -p.speed, p.name))
            ctx.place(bid, best)
        if not ctx.warm_sweep:
            return
        # one delta-priced sweep: move a not-yet-started block to a free
        # processor when that strictly improves the projected makespan
        for bid in ctx.movable():
            procs = _feasible(ctx, bid, ctx.free_processors())
            if not procs:
                continue
            current = ev.makespan()
            prices = [(ev.eval_move(bid, p), -p.speed, p.name, p)
                      for p in procs]
            mu, _, _, best = min(prices, key=lambda t: t[:3])
            if mu < current:
                ctx.place(bid, best)


@register_policy("resolve",
                 summary="cold full re-solve via a registered algorithm")
class ResolvePolicy(ReactionPolicy):
    """Re-submit the not-yet-started remainder as a fresh problem.

    Builds a sub-workflow of every pending + movable block's tasks, a
    sub-cluster of the free processors (plus the ones currently holding
    only re-planned blocks), and runs the configured algorithm cold.
    Communication with already-running blocks is not visible to the
    solver (it optimizes the remainder internally); the realized replay
    still charges those boundary transfers. Falls back to static-style
    forced placement when the cold solve fails.
    """

    def react(self, ctx: ReactionContext) -> None:
        from repro.api.batch import solve
        from repro.api.envelopes import ScheduleRequest
        from repro.workflow.graph import Workflow

        pending = ctx.pending()
        movable = ctx.movable()
        replan = pending + movable
        if not replan:
            return
        tasks = set()
        for bid in replan:
            tasks |= set(ctx.block_tasks(bid))
        # insertion order feeds the solver; sort by repr so mixed
        # int/tuple task ids order the same way in every process
        ordered = sorted(tasks, key=repr)

        sub = Workflow(name=f"resolve@{ctx.time:g}")
        wf = ctx.wf
        for u in ordered:
            sub.add_task(u, work=wf.work(u), memory=wf.memory(u))
        for u in ordered:
            for v, c in wf.out_edges(u):
                if v in tasks:
                    sub.add_edge(u, v, c)

        # free processors plus those currently holding only blocks being
        # re-planned (a movable block's own processor is up for grabs)
        procs: Dict[str, Processor] = {p.name: p
                                       for p in ctx.free_processors()}
        for bid in movable:
            proc = ctx.q.blocks[bid].proc
            if proc is not None:
                procs[proc.name] = proc
        if not procs:
            return
        from repro.platform.cluster import Cluster
        sub_cluster = Cluster(
            [procs[name] for name in sorted(procs)],
            bandwidth=ctx.cluster.bandwidth,
            name=f"{ctx.cluster.name}-live",
            bandwidth_model=ctx.cluster.bandwidth_model)

        result = solve(ScheduleRequest(
            workflow=sub, cluster=sub_cluster, algorithm=ctx.algorithm,
            scale_memory=False, validate=False, want_mapping=True))
        if result.failure is not None or result.mapping is None:
            # cold solver found nothing; forced placement keeps the
            # simulation live and the comparison honest
            StaticPolicy().react(ctx)
            return
        ctx.replace_remaining(
            [(a.tasks, a.processor) for a in result.mapping.assignments])
