"""Event-driven dynamic-scheduling simulator (ROADMAP item 4).

Replays a computed mapping under a virtual clock while a seeded
perturbation stream — job arrivals, processor fail/leave/join,
stochastic runtime inflation — disturbs it, and measures robustness:
makespan degradation against the undisturbed plan, re-solve latency,
and task migrations. Reaction policies (``static`` / ``warmstart`` /
``resolve``) live behind a registry mirroring ``@register_algorithm``.

Only the frozen event models are imported eagerly; the engine, the
policies, the scenario runner, and the benchmark load lazily so that
``repro.api`` can depend on :class:`DynamicsSpec` without a cycle.
"""

from repro.sim.events import (
    EVENT_KINDS,
    EVENT_MODEL_KINDS,
    DynamicsSpec,
    PoissonArrivals,
    ProcessorChurn,
    RuntimeInflation,
    SimEvent,
    TraceArrivals,
    model_from_dict,
)

__all__ = [
    "EVENT_KINDS",
    "EVENT_MODEL_KINDS",
    "DynamicsSpec",
    "PoissonArrivals",
    "ProcessorChurn",
    "RuntimeInflation",
    "SimEvent",
    "TraceArrivals",
    "model_from_dict",
    # lazy (see __getattr__)
    "SimEngine",
    "SimReport",
    "available_policies",
    "get_policy",
    "policy_infos",
    "register_policy",
    "simulate_request",
    "run_dynamic_scenario",
    "dynamic_fingerprint",
    "run_sim_bench",
    "compare_sim_to_baseline",
]

_LAZY = {
    "SimEngine": "repro.sim.engine",
    "SimReport": "repro.sim.engine",
    "available_policies": "repro.sim.policies",
    "get_policy": "repro.sim.policies",
    "policy_infos": "repro.sim.policies",
    "register_policy": "repro.sim.policies",
    "simulate_request": "repro.sim.runner",
    "run_dynamic_scenario": "repro.sim.runner",
    "dynamic_fingerprint": "repro.sim.runner",
    "run_sim_bench": "repro.sim.bench",
    "compare_sim_to_baseline": "repro.sim.bench",
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    module = importlib.import_module(target)
    value = getattr(module, name)
    globals()[name] = value
    return value
