"""Workflow generators reproducing the paper's evaluation corpus (Sec. 5.1.1).

* :mod:`repro.generators.families` — WfGen/WfCommons-style topologies for
  the seven model workflows (1000Genome, BLAST, BWA, Epigenomics, Montage,
  Seismology, SoyKB) at any task count;
* :mod:`repro.generators.weights` — the paper's weight distributions
  (edges U[1,10], work U[1,1000], memory U[1,192]);
* :mod:`repro.generators.realworld` — nf-core-like small workflows (11-58
  tasks) with simulated Lotaru historical traces (heavy-tailed weights for
  a subset of tasks, weight 1 elsewhere, min-normalized);
* :mod:`repro.generators.random_dag` — layered random DAGs for tests and
  property-based checks;
* :mod:`repro.generators.synthetic_arrays` — array-native synthetic DAGs
  (fan/chain/wide/layered) emitted directly as
  :class:`~repro.workflow.compiled.CompiledWorkflow` instances, sized for
  the kernel benchmarks (requires numpy).
"""

from repro.generators.families import (
    WORKFLOW_FAMILIES,
    FANNED_OUT_FAMILIES,
    CHAIN_LIKE_FAMILIES,
    generate_workflow,
    generate_topology,
)
from repro.generators.weights import (
    assign_paper_weights,
    WeightRanges,
    PAPER_WEIGHTS,
)
from repro.generators.realworld import (
    REAL_WORKFLOW_NAMES,
    generate_real_workflow,
    all_real_workflows,
)
from repro.generators.random_dag import random_layered_dag, random_workflow
from repro.generators.synthetic_arrays import SYNTHETIC_SHAPES, synthetic_compiled

__all__ = [
    "WORKFLOW_FAMILIES",
    "FANNED_OUT_FAMILIES",
    "CHAIN_LIKE_FAMILIES",
    "generate_workflow",
    "generate_topology",
    "assign_paper_weights",
    "WeightRanges",
    "PAPER_WEIGHTS",
    "REAL_WORKFLOW_NAMES",
    "generate_real_workflow",
    "all_real_workflows",
    "random_layered_dag",
    "random_workflow",
    "SYNTHETIC_SHAPES",
    "synthetic_compiled",
]
