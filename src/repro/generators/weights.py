"""Task and edge weight models (Section 5.1.2, 'Generation of ... weights').

For simulated workflows the paper draws uniformly distributed values:
edge weights in [1, 10], workloads in [1, 1000], memory weights in
[1, 192] — "when doing so, we try to mimic the weights observed in the
historical data, hence e.g. the low lower bounds for the workloads."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.utils.rng import SeedLike, make_rng
from repro.workflow.graph import Workflow


@dataclass(frozen=True)
class WeightRanges:
    """Uniform ranges for the three weight kinds."""

    edge: Tuple[float, float] = (1.0, 10.0)
    work: Tuple[float, float] = (1.0, 1000.0)
    memory: Tuple[float, float] = (1.0, 192.0)


#: the exact ranges of the paper
PAPER_WEIGHTS = WeightRanges()


def assign_paper_weights(wf: Workflow, seed: SeedLike = None,
                         ranges: WeightRanges = PAPER_WEIGHTS,
                         work_factor: float = 1.0) -> Workflow:
    """Assign uniform random weights in place and return ``wf``.

    ``work_factor`` scales the drawn workloads (the 4x computational-demand
    experiment of Section 5.2.4 uses ``work_factor=4``). Deterministic
    given ``seed``: tasks and edges are visited in insertion order.
    """
    rng = make_rng(seed)
    for u in wf.tasks():
        wf.set_work(u, float(rng.uniform(*ranges.work)) * work_factor)
        wf.set_memory(u, float(rng.uniform(*ranges.memory)))
    rescale = {}
    for u, v, _ in wf.edges():
        rescale[(u, v)] = float(rng.uniform(*ranges.edge))
    for (u, v), c in rescale.items():
        wf.remove_edge(u, v)
        wf.add_edge(u, v, c)
    return wf
