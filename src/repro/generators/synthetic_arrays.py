"""Array-native synthetic DAGs: million-task instances without dicts.

The dict-backed :class:`repro.workflow.graph.Workflow` builder costs one
``add_task``/``add_edge`` call per element — fine for the paper's corpus
(hundreds of tasks), hopeless for the kernel benchmarks, which need
instances two to four orders of magnitude larger. This module draws the
whole instance as flat numpy arrays (edge endpoint indices, costs, work,
memory) and hands them straight to
:meth:`repro.workflow.compiled.CompiledWorkflow.from_arrays`; nothing
node-keyed is ever materialized, so a million-task DAG builds in tens of
milliseconds.

Tasks are indexed so that every edge goes from a lower to a higher index
— the instances are topologically sorted by construction, which is what
lets the shapes below scale without a validity check.

Shapes (the benchmark suite's axes — see ``benchmarks/``):

* ``fan``     — one source, ``n - 2`` independent middles, one sink: the
  widest possible level structure (3 levels at any size);
* ``chain``   — a single path: the deepest structure (``n`` levels,
  adversarial for level-parallel kernels);
* ``wide``    — a few wide layers with random cross edges: level
  parallelism in the millions with non-trivial fan-in;
* ``layered`` — many narrow layers with short skip edges: the shape of
  :func:`repro.generators.random_dag.random_layered_dag`, at scale.

Weights follow the paper's distributions (edges U[1,10], work U[1,1000],
memory U[1,192]) drawn vectorized; ``seed`` reproduces instances
bit-for-bit. For small ``n`` the result round-trips to a dict
:class:`Workflow` via :meth:`CompiledWorkflow.to_workflow` — the
differential tests rely on that to cross-check the array pipeline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.generators.weights import PAPER_WEIGHTS, WeightRanges
from repro.utils.rng import SeedLike, make_rng
from repro.workflow.compiled import CompiledWorkflow

#: valid values of the ``shape`` argument
SYNTHETIC_SHAPES = ("fan", "chain", "wide", "layered")


def _fan_edges(n: int) -> Tuple[np.ndarray, np.ndarray]:
    if n < 3:
        return _chain_edges(n)
    mids = np.arange(1, n - 1, dtype=np.intp)
    src = np.concatenate([np.zeros(n - 2, dtype=np.intp), mids])
    dst = np.concatenate([mids, np.full(n - 2, n - 1, dtype=np.intp)])
    return src, dst


def _chain_edges(n: int) -> Tuple[np.ndarray, np.ndarray]:
    idx = np.arange(n - 1, dtype=np.intp) if n > 1 else \
        np.empty(0, dtype=np.intp)
    return idx, idx + 1


def _wide_edges(n: int, rng: np.random.Generator, layers: int,
                fan_in: int) -> Tuple[np.ndarray, np.ndarray]:
    if n < 2:
        return _chain_edges(n)
    layers = max(2, min(layers, n))
    bounds = np.linspace(0, n, layers + 1).astype(np.intp)
    srcs, dsts = [], []
    for i in range(1, layers):
        lo, hi = bounds[i], bounds[i + 1]
        plo, phi = bounds[i - 1], bounds[i]
        members = np.arange(lo, hi, dtype=np.intp)
        k = min(fan_in, phi - plo)
        # k random parents in the previous layer per member (duplicates
        # collapse inside from_arrays, matching repeated add_edge)
        parents = rng.integers(plo, phi, size=(hi - lo, k))
        srcs.append(parents.ravel().astype(np.intp))
        dsts.append(np.repeat(members, k))
    return np.concatenate(srcs), np.concatenate(dsts)


def _layered_edges(n: int, rng: np.random.Generator, width: int,
                   max_skip: int) -> Tuple[np.ndarray, np.ndarray]:
    # fixed-width layers: layer(u) = u // width; every non-first-layer
    # task draws one parent per reachable skip distance, biased short
    width = max(1, width)
    first = min(width, n)  # tasks of layer 0 have no parents
    members = np.arange(first, n, dtype=np.intp)
    layer = members // width
    srcs, dsts = [], []
    for skip in range(1, max_skip + 1):
        ok = layer >= skip
        m = members[ok]
        if m.size == 0:
            break
        if skip > 1:  # short skips always, long skips with probability
            keep = rng.random(m.size) < 1.0 / skip
            m = m[keep]
            if m.size == 0:
                continue
        plo = (m // width - skip) * width
        parents = plo + rng.integers(0, width, size=m.size)
        srcs.append(parents.astype(np.intp))
        dsts.append(m)
    if not srcs:  # single-layer graph: no edges
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    return np.concatenate(srcs), np.concatenate(dsts)


def synthetic_compiled(shape: str, n_tasks: int, seed: SeedLike = None, *,
                       width: int = 64, layers: int = 8, fan_in: int = 3,
                       max_skip: int = 2,
                       ranges: WeightRanges = PAPER_WEIGHTS,
                       ) -> CompiledWorkflow:
    """A compiled synthetic DAG of the given shape with paper weights.

    ``width`` sizes the layers of ``"layered"``, ``layers``/``fan_in``
    shape ``"wide"``; the other shapes ignore them. Everything is drawn
    in one vectorized pass, so the cost is O(n + e) numpy work.
    """
    if shape not in SYNTHETIC_SHAPES:
        raise ValueError(
            f"unknown shape {shape!r}; valid: {SYNTHETIC_SHAPES}")
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    rng = make_rng(seed)
    if shape == "fan":
        src, dst = _fan_edges(n_tasks)
    elif shape == "chain":
        src, dst = _chain_edges(n_tasks)
    elif shape == "wide":
        src, dst = _wide_edges(n_tasks, rng, layers, fan_in)
    else:
        src, dst = _layered_edges(n_tasks, rng, width, max_skip)
    work = rng.uniform(*ranges.work, size=n_tasks)
    memory = rng.uniform(*ranges.memory, size=n_tasks)
    cost = rng.uniform(*ranges.edge, size=src.shape[0])
    return CompiledWorkflow.from_arrays(
        src, dst, cost, work, memory,
        name=f"synthetic-{shape}-{n_tasks}")
