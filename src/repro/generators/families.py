"""Topology generators for the seven WfCommons model workflow families.

Each generator takes the desired number of tasks and produces a DAG whose
*shape* follows the published structure of the family; the paper's
evaluation depends on exactly these shapes (fan-out-heavy families such as
BLAST/BWA/Seismology benefit most from heterogeneity; chain-like families
such as SoyKB/Epigenomics least — Sections 5.2.5-5.2.6). Weight assignment
is separate (:mod:`repro.generators.weights`).

The achieved task count may deviate from the request by a few tasks
(structural tasks such as mergers are indivisible); generators solve for
the replication factor that gets closest.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from repro.generators.weights import PAPER_WEIGHTS, WeightRanges, assign_paper_weights
from repro.utils.rng import SeedLike
from repro.workflow.graph import Workflow

#: family name -> topology builder(n_tasks) -> Workflow
_BUILDERS: Dict[str, Callable[[int], Workflow]] = {}

#: the two most / least fanned-out families per the paper's discussion
FANNED_OUT_FAMILIES = ("bwa", "blast")
CHAIN_LIKE_FAMILIES = ("soykb", "epigenomics")


def _register(name: str):
    def deco(fn):
        _BUILDERS[name] = fn
        return fn
    return deco


@_register("seismology")
def seismology_topology(n_tasks: int) -> Workflow:
    """Seismology: massive two-level fan — N sG1IterDecon into one combiner.

    The most extreme fan-out/fan-in shape of the corpus.
    """
    n_decon = max(1, n_tasks - 2)
    wf = Workflow(f"seismology-{n_decon + 2}")
    wf.add_task("prepare")
    wf.add_task("siftSTFByMisfit")
    for i in range(n_decon):
        t = f"sG1IterDecon:{i}"
        wf.add_task(t)
        wf.add_edge("prepare", t)
        wf.add_edge(t, "siftSTFByMisfit")
    return wf


@_register("blast")
def blast_topology(n_tasks: int) -> Workflow:
    """BLAST: split_fasta -> N parallel blastall -> cat_blast -> cleanup."""
    n_blast = max(1, n_tasks - 3)
    wf = Workflow(f"blast-{n_blast + 3}")
    wf.add_task("split_fasta")
    wf.add_task("cat_blast")
    wf.add_task("cleanup")
    wf.add_edge("cat_blast", "cleanup")
    for i in range(n_blast):
        t = f"blastall:{i}"
        wf.add_task(t)
        wf.add_edge("split_fasta", t)
        wf.add_edge(t, "cat_blast")
    return wf


@_register("bwa")
def bwa_topology(n_tasks: int) -> Workflow:
    """BWA: prepare+index -> N parallel aligners -> merge -> sort -> dedup."""
    n_align = max(1, n_tasks - 5)
    wf = Workflow(f"bwa-{n_align + 5}")
    for t in ("fastq_reduce", "bwa_index", "merge_sam", "sort_sam", "dedup"):
        wf.add_task(t)
    wf.add_edge("fastq_reduce", "bwa_index")
    wf.add_edge("merge_sam", "sort_sam")
    wf.add_edge("sort_sam", "dedup")
    for i in range(n_align):
        t = f"bwa_align:{i}"
        wf.add_task(t)
        wf.add_edge("bwa_index", t)
        wf.add_edge(t, "merge_sam")
    return wf


@_register("epigenomics")
def epigenomics_topology(n_tasks: int) -> Workflow:
    """Epigenomics: fastqSplit -> C parallel 4-stage chains -> merge chain.

    Chain-like: parallelism exists but each branch is a pipeline, so the
    fan-out per level is modest.
    """
    chain_stages = ("filterContams", "sol2sanger", "fast2bfq", "map")
    tail = ("mapMerge", "maqIndex", "pileup")
    n_chains = max(1, round((n_tasks - 1 - len(tail)) / len(chain_stages)))
    wf = Workflow(f"epigenomics-{1 + n_chains * len(chain_stages) + len(tail)}")
    wf.add_task("fastqSplit")
    for t in tail:
        wf.add_task(t)
    wf.add_edge("mapMerge", "maqIndex")
    wf.add_edge("maqIndex", "pileup")
    for i in range(n_chains):
        prev = "fastqSplit"
        for stage in chain_stages:
            t = f"{stage}:{i}"
            wf.add_task(t)
            wf.add_edge(prev, t)
            prev = t
        wf.add_edge(prev, "mapMerge")
    return wf


@_register("montage")
def montage_topology(n_tasks: int) -> Workflow:
    """Montage: project fan, pairwise diff-fits, background model, re-fan.

    mProject(N) -> mDiffFit(~N, adjacent pairs) -> mConcatFit -> mBgModel
    -> mBackground(N) -> mImgtbl -> mAdd -> mShrink -> mJPEG.
    """
    fixed = 6  # source + concat + bgmodel + imgtbl/add/shrink/jpeg-ish tail
    n_proj = max(2, round((n_tasks - fixed) / 3))
    wf = Workflow(f"montage-{3 * n_proj - 1 + fixed}")
    for t in ("mHdr", "mConcatFit", "mBgModel", "mImgtbl", "mAdd", "mShrink", "mJPEG"):
        wf.add_task(t)
    wf.add_edge("mConcatFit", "mBgModel")
    wf.add_edge("mImgtbl", "mAdd")
    wf.add_edge("mAdd", "mShrink")
    wf.add_edge("mShrink", "mJPEG")
    projects = []
    for i in range(n_proj):
        t = f"mProject:{i}"
        wf.add_task(t)
        wf.add_edge("mHdr", t)
        projects.append(t)
    for i in range(n_proj - 1):
        t = f"mDiffFit:{i}"
        wf.add_task(t)
        wf.add_edge(projects[i], t)
        wf.add_edge(projects[i + 1], t)
        wf.add_edge(t, "mConcatFit")
    for i in range(n_proj):
        t = f"mBackground:{i}"
        wf.add_task(t)
        wf.add_edge("mBgModel", t)
        wf.add_edge(projects[i], t)
        wf.add_edge(t, "mImgtbl")
    return wf


@_register("genome")
def genome_topology(n_tasks: int) -> Workflow:
    """1000Genome: per-chromosome individual fans, merge+sifting, analyses.

    Per chromosome: N individuals -> individuals_merge; sifting (from the
    source); then M mutation_overlap and M frequency tasks reading both
    the merge and the sifting output. Chromosomes are independent.
    """
    n_chrom = max(1, round(math.sqrt(n_tasks) / 4))
    per_chrom = max(6, round((n_tasks - 1) / n_chrom))
    n_ind = max(2, (per_chrom - 2) * 2 // 3)
    n_analysis = max(2, per_chrom - 2 - n_ind)
    wf = Workflow(f"genome-{1 + n_chrom * (n_ind + 2 + n_analysis)}")
    wf.add_task("start")
    for c in range(n_chrom):
        merge = f"individuals_merge:{c}"
        sift = f"sifting:{c}"
        wf.add_task(merge)
        wf.add_task(sift)
        wf.add_edge("start", sift)
        for i in range(n_ind):
            t = f"individuals:{c}:{i}"
            wf.add_task(t)
            wf.add_edge("start", t)
            wf.add_edge(t, merge)
        half = max(1, n_analysis // 2)
        for i in range(n_analysis):
            kind = "mutation_overlap" if i < half else "frequency"
            t = f"{kind}:{c}:{i}"
            wf.add_task(t)
            wf.add_edge(merge, t)
            wf.add_edge(sift, t)
    return wf


@_register("soykb")
def soykb_topology(n_tasks: int) -> Workflow:
    """SoyKB: a long opening chain, then fork-join segments.

    "Soykb starts with a chain of tasks and ends with a fork-join segment.
    With growing size, however, there is more parallelism to be utilized."
    The opening chain keeps a fixed length, so small instances are mostly
    sequential while large ones are dominated by the forks.
    """
    chain_len = 5
    tail_len = 2
    n_samples = max(1, round((n_tasks - chain_len - tail_len - 2) / 4))
    wf = Workflow(f"soykb-{chain_len + 4 * n_samples + 2 + tail_len}")
    prev = None
    for i in range(chain_len):
        t = f"alignment:{i}"
        wf.add_task(t)
        if prev is not None:
            wf.add_edge(prev, t)
        prev = t
    fork_root = prev
    # first fork-join: per-sample 3-task haplotype chains
    wf.add_task("combine_variants")
    for s in range(n_samples):
        p = fork_root
        for stage in ("haplotype_caller", "select_variants", "filtering"):
            t = f"{stage}:{s}"
            wf.add_task(t)
            wf.add_edge(p, t)
            p = t
        wf.add_edge(p, "combine_variants")
    # second fork-join: per-sample genotyping
    wf.add_task("merge_gcvf")
    for s in range(n_samples):
        t = f"genotype_gvcfs:{s}"
        wf.add_task(t)
        wf.add_edge("combine_variants", t)
        wf.add_edge(t, "merge_gcvf")
    prev = "merge_gcvf"
    for i in range(tail_len):
        t = f"snpeff:{i}"
        wf.add_task(t)
        wf.add_edge(prev, t)
        prev = t
    return wf


#: the family names of the paper's evaluation, in its order
WORKFLOW_FAMILIES = ("genome", "blast", "bwa", "epigenomics", "montage",
                     "seismology", "soykb")


def generate_topology(family: str, n_tasks: int) -> Workflow:
    """Unweighted topology of ``family`` with approximately ``n_tasks`` tasks."""
    try:
        builder = _BUILDERS[family]
    except KeyError:
        raise KeyError(f"unknown workflow family {family!r}; "
                       f"valid: {sorted(_BUILDERS)}") from None
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    wf = builder(n_tasks)
    wf.check_acyclic()
    return wf


def generate_workflow(family: str, n_tasks: int, seed: SeedLike = None,
                      ranges: WeightRanges = PAPER_WEIGHTS,
                      work_factor: float = 1.0) -> Workflow:
    """A fully weighted workflow of ``family`` (topology + paper weights)."""
    wf = generate_topology(family, n_tasks)
    return assign_paper_weights(wf, seed=seed, ranges=ranges, work_factor=work_factor)
