"""nf-core-like "real-world" workflows with simulated historical traces.

The paper evaluates five small real workflows (11-58 tasks) exported from
nextflow pipelines [10], weighted with Lotaru historical measurements [3].
We do not have those proprietary trace files; this module reproduces their
*statistical fingerprint* instead (substitution documented in DESIGN.md):

* small DAGs with nf-core pipeline shapes (per-sample fans feeding
  aggregation stages and a MultiQC-style sink);
* only a fraction of tasks have "historical data" — the paper reports
  40-60% missing for several pipelines; tasks without data get weight 1;
* measured values are heavy-tailed (lognormal) and normalized by the
  smallest measured value, exactly like the paper normalizes by the
  minimum ("tasks without historical data receive less insignificant
  values compared to tasks with historical data");
* memory weights are normalized so the largest task requirement fits the
  192-unit C2 node.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.utils.rng import SeedLike, make_rng, stable_hash
from repro.workflow.graph import Workflow
from repro.workflow.transform import normalize_memory_to

#: (name, n_samples, per_sample_chain, n_aggregate, missing_fraction)
#: chosen so task counts land on 58/42/35/24/11 — the paper's 11..58 range
_REAL_SPECS: List[Tuple[str, int, int, int, float]] = [
    ("methylseq", 8, 6, 8, 0.55),   # 2 + 8*6 + 8 = 58
    ("chipseq", 6, 6, 4, 0.45),     # 2 + 6*6 + 4 = 42
    ("mag", 4, 7, 5, 0.40),         # 2 + 4*7 + 5 = 35
    ("viralrecon", 4, 4, 6, 0.50),  # 2 + 4*4 + 6 = 24
    ("airrflow", 3, 2, 3, 0.60),    # 2 + 3*2 + 3 = 11
]

REAL_WORKFLOW_NAMES = tuple(spec[0] for spec in _REAL_SPECS)


def _build_topology(name: str, n_samples: int, chain: int, n_agg: int) -> Workflow:
    """input_check -> per-sample chains -> aggregation stages -> multiqc."""
    wf = Workflow(name)
    wf.add_task(f"{name}:input_check")
    wf.add_task(f"{name}:multiqc")
    last_per_sample = []
    for s in range(n_samples):
        prev = f"{name}:input_check"
        for c in range(chain):
            t = f"{name}:s{s}:stage{c}"
            wf.add_task(t)
            wf.add_edge(prev, t)
            prev = t
        last_per_sample.append(prev)
    agg_tasks = []
    for a in range(n_agg):
        t = f"{name}:aggregate{a}"
        wf.add_task(t)
        agg_tasks.append(t)
        # each aggregation stage consumes a slice of the per-sample outputs
        for i, src in enumerate(last_per_sample):
            if i % n_agg == a:
                wf.add_edge(src, t)
        wf.add_edge(t, f"{name}:multiqc")
    # chain some aggregations (report stages depend on earlier summaries)
    for a in range(1, len(agg_tasks), 2):
        wf.add_edge(agg_tasks[a - 1], agg_tasks[a])
    return wf


def _stage_key(task: str) -> str:
    """Strip the per-sample index: ``name:s3:stage2`` -> ``name:stage2``.

    Historical data is recorded per pipeline *stage* (nextflow process);
    every sample's instance of a stage shares the stage's measured values.
    This per-stage correlation is what makes the heavy work of real
    pipelines parallelizable across samples.
    """
    parts = task.split(":")
    return ":".join(p for p in parts if not (p and p[0] == "s" and p[1:].isdigit()))


def _simulate_historical_weights(wf: Workflow, missing_fraction: float,
                                 seed: SeedLike) -> Workflow:
    """Lotaru-like weights: heavy-tailed for measured stages, 1 otherwise."""
    rng = make_rng(seed)
    tasks = list(wf.tasks())
    stages = sorted({_stage_key(u) for u in tasks})
    n_measured = max(1, round(len(stages) * (1.0 - missing_fraction)))
    measured = {stages[i] for i in
                rng.choice(len(stages), size=n_measured, replace=False).tolist()}

    # per-sample stages (alignment, dedup, calling, ...) do the heavy
    # lifting in real pipelines; global stages (input check, aggregation,
    # MultiQC) are light bookkeeping — bias the draw accordingly
    per_sample = {_stage_key(u) for u in tasks if u != _stage_key(u)}

    raw_work: Dict = {}
    raw_mem: Dict = {}
    for stage in stages:
        if stage in measured:
            # lognormal measured values: long tail, like PS-stat traces
            mean = 3.5 if stage in per_sample else 1.0
            raw_work[stage] = float(rng.lognormal(mean=mean, sigma=1.2))
            raw_mem[stage] = float(rng.lognormal(mean=1.5, sigma=1.0))
    min_work = min(raw_work.values())
    min_mem = min(raw_mem.values())
    for u in tasks:
        stage = _stage_key(u)
        if stage in measured:
            wf.set_work(u, raw_work[stage] / min_work)
            wf.set_memory(u, raw_mem[stage] / min_mem)
        else:
            wf.set_work(u, 1.0)  # the paper's weight for missing data
            wf.set_memory(u, 1.0)

    # historical data stores per-task total output size; split over children
    for u in tasks:
        n_children = wf.out_degree(u)
        if n_children == 0:
            continue
        total_out = float(rng.lognormal(mean=0.5, sigma=0.8))
        share = total_out / n_children
        for v in list(wf.children(u)):
            wf.remove_edge(u, v)
            wf.add_edge(u, v, share)
    return wf


def generate_real_workflow(name: str, seed: SeedLike = None,
                           work_factor: float = 1.0) -> Workflow:
    """One of the five real-world-like workflows, fully weighted.

    Deterministic per name (the name is hashed into the seed) so repeated
    experiment runs see identical workflows.
    """
    for spec_name, n_samples, chain, n_agg, missing in _REAL_SPECS:
        if spec_name == name:
            break
    else:
        raise KeyError(f"unknown real workflow {name!r}; valid: {REAL_WORKFLOW_NAMES}")
    base_seed = stable_hash(name) % (2 ** 31)
    if seed is not None and not hasattr(seed, "integers"):
        base_seed = (base_seed + int(seed)) % (2 ** 31)
    wf = _build_topology(name, n_samples, chain, n_agg)
    wf = _simulate_historical_weights(wf, missing, base_seed)
    if work_factor != 1.0:
        for u in wf.tasks():
            wf.set_work(u, wf.work(u) * work_factor)
    # normalize memory like the paper (largest requirement fits 192)
    wf = normalize_memory_to(wf, 192.0, name=name)
    wf.check_acyclic()
    return wf


def all_real_workflows(seed: SeedLike = None, work_factor: float = 1.0) -> List[Workflow]:
    """All five real-world-like workflows."""
    return [generate_real_workflow(name, seed=seed, work_factor=work_factor)
            for name in REAL_WORKFLOW_NAMES]
