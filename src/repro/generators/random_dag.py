"""Random layered DAGs for tests and property-based checks.

Not part of the paper's corpus; used to exercise the partitioner, the
traversal engines and the heuristics on adversarial shapes the structured
family generators never produce.
"""

from __future__ import annotations

from repro.generators.weights import PAPER_WEIGHTS, WeightRanges, assign_paper_weights
from repro.utils.rng import SeedLike, make_rng
from repro.workflow.graph import Workflow


def random_layered_dag(n_tasks: int, width: int = 8, edge_prob: float = 0.3,
                       seed: SeedLike = None, max_skip: int = 2,
                       connect: bool = True) -> Workflow:
    """Random DAG with tasks arranged in layers of at most ``width``.

    Edges go from a layer to one of the next ``max_skip`` layers with
    probability ``edge_prob``. With ``connect=True`` every non-source task
    is guaranteed at least one parent (single connected "phase" structure),
    which keeps instances representative of workflow DAGs.
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    rng = make_rng(seed)
    wf = Workflow(f"random-{n_tasks}")
    layers = []
    remaining = n_tasks
    li = 0
    while remaining > 0:
        size = int(rng.integers(1, width + 1))
        size = min(size, remaining)
        layer = [f"t{li}:{j}" for j in range(size)]
        for t in layer:
            wf.add_task(t)
        layers.append(layer)
        remaining -= size
        li += 1

    for i, layer in enumerate(layers):
        for u in layer:
            for skip in range(1, max_skip + 1):
                if i + skip >= len(layers):
                    break
                for v in layers[i + skip]:
                    if rng.random() < edge_prob / skip:
                        wf.add_edge(u, v)
    if connect:
        for i in range(1, len(layers)):
            for v in layers[i]:
                if wf.in_degree(v) == 0:
                    donor_layer = layers[i - 1]
                    u = donor_layer[int(rng.integers(0, len(donor_layer)))]
                    wf.add_edge(u, v)
    return wf


def random_workflow(n_tasks: int, width: int = 8, edge_prob: float = 0.3,
                    seed: SeedLike = None,
                    ranges: WeightRanges = PAPER_WEIGHTS) -> Workflow:
    """Random layered DAG with paper-style weights."""
    rng = make_rng(seed)
    wf = random_layered_dag(n_tasks, width=width, edge_prob=edge_prob, seed=rng)
    return assign_paper_weights(wf, seed=rng, ranges=ranges)
