"""Seeded event-stream primitives for the dynamic-scheduling simulator.

Everything stochastic in :mod:`repro.sim` draws through these helpers, and
every helper normalises its seed through :func:`repro.utils.rng.make_rng`
— one experiment seed reproduces a whole perturbation timeline bit for
bit, the same contract the workflow generators honour.

The helpers return plain Python floats/ints (not numpy scalars) so the
event records built from them serialize to strict JSON and compare
exactly across runs.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.utils.rng import SeedLike, make_rng


def poisson_times(rate: float, count: int, seed: SeedLike = None,
                  start: float = 0.0) -> List[float]:
    """``count`` arrival instants of a Poisson process with ``rate``.

    Inter-arrival gaps are exponential with mean ``1/rate``; the first
    gap is added to ``start``. Deterministic per seed.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"arrival count must be >= 0, got {count}")
    rng = make_rng(seed)
    t = float(start)
    times: List[float] = []
    for _ in range(count):
        t += float(rng.exponential(1.0 / rate))
        times.append(t)
    return times


def event_seeds(count: int, seed: SeedLike = None) -> List[int]:
    """``count`` independent 31-bit child seeds (per-arrival job seeds)."""
    rng = make_rng(seed)
    return [int(s) for s in rng.integers(0, 2 ** 31, size=count)]


def lognormal_factor(sigma: float, seed: SeedLike = None) -> float:
    """One multiplicative runtime-inflation factor ``>= 1``.

    Drawn lognormal(0, sigma) and clamped below at 1 — the simulator
    models *inflation* (estimates proving optimistic), never speedup.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    rng = make_rng(seed)
    return max(1.0, float(rng.lognormal(mean=0.0, sigma=sigma)))


def pick_indices(population: int, seed: SeedLike = None) -> List[int]:
    """A deterministic random permutation of ``range(population)``.

    Used to resolve "a random victim processor" picks: the model stores
    the pick *index*; the engine applies it to the sorted live set at
    event time, so the same seed names the same victims run after run.
    """
    rng = make_rng(seed)
    return [int(i) for i in rng.permutation(population)]


def subset_mask(population: int, fraction: float,
                seed: SeedLike = None) -> List[bool]:
    """Membership mask selecting ~``fraction`` of ``population`` items."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = make_rng(seed)
    return [bool(x < fraction) for x in rng.random(population)]


def merge_timelines(streams: Sequence[Sequence]) -> List:
    """Stable merge of per-model event lists into one timeline.

    Sorted by event time only; ties keep model order then emission order,
    so the merged stream is deterministic without wall-clock tiebreaks.
    """
    merged = [ev for stream in streams for ev in stream]
    merged.sort(key=lambda ev: ev.time)
    return merged
