"""Importer registry — the single dispatch point for workflow formats.

Mirrors the algorithm/backend/policy registry idiom: every format the
library can ingest is registered exactly once with :func:`register_format`,
and both the CLI (``repro ingest``) and the scenario workflow sources
resolve names through :func:`get_format` instead of per-caller
``if path.endswith(...)`` chains. A format declares

* its canonical **name** (``wfcommons``, ``dax``, ``dot``, ``edgelist``,
  ``json``, ``template``),
* the file **extensions** it claims (longest suffix wins, so
  ``.wfformat.json`` beats ``.json``),
* a **sniffer** — a cheap content predicate used by :func:`detect_format`
  when no explicit format is given, and
* the **importer** callable itself:
  ``importer(text, *, name=None, path=None, data=None) -> Workflow``.

Importers build *raw* workflows (through
:class:`~repro.ingest.normalize.WorkflowAssembler`, which catches duplicate
ids and unknown edge endpoints with file+line context); the shared
normalization/validation gate in :mod:`repro.ingest.normalize` runs
afterwards, once, for every format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow

#: importer signature: text + keyword context -> raw Workflow
Importer = Callable[..., Workflow]


@dataclass(frozen=True)
class FormatInfo:
    """One registry entry: the importer plus its self-description."""

    name: str  # canonical key, e.g. "wfcommons"
    display_name: str  # e.g. "WfCommons JSON" (used in messages/tables)
    importer: Importer
    extensions: Tuple[str, ...] = ()
    sniffer: Optional[Callable[[str], bool]] = None
    summary: str = ""

    def sniff(self, text: str) -> bool:
        """True when the content plausibly belongs to this format."""
        if self.sniffer is None:
            return False
        try:
            return bool(self.sniffer(text))
        except Exception:
            return False

    def matches_path(self, path: str) -> Optional[str]:
        """The longest registered extension ``path`` carries, or None."""
        lowered = path.lower()
        best = None
        for ext in self.extensions:
            if lowered.endswith(ext) and (best is None or len(ext) > len(best)):
                best = ext
        return best


_REGISTRY: Dict[str, FormatInfo] = {}


def canonical_format(name: str) -> str:
    """Normalize a format name: lowercase, drop ``-``/``_``/spaces."""
    if not isinstance(name, str):
        raise TypeError(f"format name must be a str, got {type(name).__name__}")
    return "".join(ch for ch in name.lower() if ch not in "-_ ")


def register_format(name: str, *, extensions: Tuple[str, ...] = (),
                    sniffer: Optional[Callable[[str], bool]] = None,
                    display_name: Optional[str] = None, summary: str = ""):
    """Function decorator adding an importer to the registry.

    The decorated callable must accept ``(text, *, name=None, path=None,
    data=None)`` and return a :class:`~repro.workflow.graph.Workflow`.
    Duplicate names (after canonicalization) are rejected.
    """
    key = canonical_format(name)
    if not key:
        raise ValueError(f"format name {name!r} is empty after canonicalization")

    def decorator(fn: Importer) -> Importer:
        if key in _REGISTRY:
            raise ValueError(
                f"format {name!r} already registered "
                f"(as {_REGISTRY[key].display_name!r}); use unregister_format "
                f"first to replace it")
        _REGISTRY[key] = FormatInfo(
            name=key,
            display_name=display_name or name,
            importer=fn,
            extensions=tuple(ext.lower() for ext in extensions),
            sniffer=sniffer,
            summary=summary,
        )
        return fn

    return decorator


def unregister_format(name: str) -> None:
    """Remove an entry (plugin teardown / tests); unknown names are a no-op."""
    _REGISTRY.pop(canonical_format(name), None)


def available_formats() -> Tuple[str, ...]:
    """Sorted canonical names of every registered format."""
    return tuple(sorted(_REGISTRY))


def format_infos() -> Tuple[FormatInfo, ...]:
    """Every registry entry, sorted by canonical name."""
    return tuple(_REGISTRY[k] for k in available_formats())


def get_format(name: str) -> FormatInfo:
    """Resolve a (canonicalized) name; unknown names list the valid ones."""
    info = _REGISTRY.get(canonical_format(name))
    if info is None:
        valid = ", ".join(available_formats()) or "(none registered)"
        raise ValueError(f"unknown workflow format {name!r}; available: {valid}")
    return info


def detect_format(text: Optional[str] = None,
                  path: Optional[str] = None) -> FormatInfo:
    """Pick the format for a file by content sniffing plus extension.

    Content wins: when exactly one registered sniffer claims the text,
    that format is chosen regardless of the extension. Ties are broken by
    the extension (the candidate whose registered extension matches the
    path, longest suffix first); a tie the extension cannot break — or no
    match at all — raises :class:`IngestError` naming the candidates, so
    a misrouted file never silently parses as the wrong thing.
    """
    infos = format_infos()
    by_content = [info for info in infos if text is not None and info.sniff(text)]
    if len(by_content) == 1:
        return by_content[0]
    if len(by_content) > 1:
        if path is not None:
            best, best_ext = None, ""
            for info in by_content:
                ext = info.matches_path(path)
                if ext is not None and len(ext) > len(best_ext):
                    best, best_ext = info, ext
            if best is not None:
                return best
        names = ", ".join(info.name for info in by_content)
        raise IngestError(
            f"ambiguous workflow format (content matches: {names}); "
            f"pass an explicit format", path=path)
    # nothing sniffed — fall back to the extension alone
    if path is not None:
        best, best_ext = None, ""
        for info in infos:
            ext = info.matches_path(path)
            if ext is not None and len(ext) > len(best_ext):
                best, best_ext = info, ext
        if best is not None:
            return best
    valid = ", ".join(available_formats()) or "(none registered)"
    raise IngestError(
        f"cannot detect the workflow format; pass an explicit format "
        f"(available: {valid})", path=path)
