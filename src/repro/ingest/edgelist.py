"""Importer for plain edge-list / CSV workflow descriptions.

The lowest common denominator: many graph tools (and quick shell
pipelines) emit dependencies as one ``parent,child[,cost]`` row per
line. This importer accepts that, plus an optional node section so
weights can ride along without a second file:

* ``task <id> [work] [memory]`` — declare a task with weights;
* ``<parent> <child> [cost]``  — an edge (endpoints are created
  implicitly with default weights when not declared).

Columns split on commas, semicolons, or whitespace — whichever the line
uses. Lines starting with ``#`` or ``//`` are comments; a header row of
the common ``source,target[,cost]``/``parent,child`` spelling is
skipped. Non-numeric weight columns raise
:class:`~repro.utils.errors.IngestError` with the offending line.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional

from repro.ingest.normalize import WorkflowAssembler
from repro.ingest.registry import register_format
from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow

_SPLIT_RE = re.compile(r"[,;]|\s+")

_HEADER_FIRST = {"source", "parent", "from", "u", "src", "task_from"}


def _sniff(text: str) -> bool:
    """A few data lines of 2-4 short columns and no structural syntax."""
    head = text[:4096]
    if any(marker in head for marker in ("{", "<", "->")):
        return False
    rows = 0
    for line in head.splitlines():
        line = line.strip()
        if not line or line.startswith("#") or line.startswith("//"):
            continue
        columns = [c for c in _SPLIT_RE.split(line) if c]
        if not 2 <= len(columns) <= 4:
            return False
        rows += 1
    return rows > 0


def _number(raw: str, what: str, *, path: Optional[str],
            line: int) -> float:
    try:
        return float(raw)
    except ValueError:
        raise IngestError(f"{what}: non-numeric value {raw!r}",
                          path=path, line=line) from None


@register_format("edgelist", extensions=(".csv", ".edges", ".edgelist"),
                 sniffer=_sniff, display_name="edge list / CSV",
                 summary="parent,child[,cost] rows; 'task id work mem' lines")
def import_edgelist(text: str, *, name: Optional[str] = None,
                    path: Optional[str] = None, data: Any = None) -> Workflow:
    asm = WorkflowAssembler(str(name or "workflow"), path=path,
                            allow_implicit_tasks=True)
    saw_row = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("//"):
            continue
        columns: List[str] = [c for c in _SPLIT_RE.split(line) if c]
        if not saw_row and columns and columns[0].lower() in _HEADER_FIRST:
            continue  # header row
        if columns and columns[0].lower() == "task":
            if len(columns) < 2 or len(columns) > 4:
                raise IngestError(
                    "task line needs 'task <id> [work] [memory]'",
                    path=path, line=lineno)
            work = _number(columns[2], f"task {columns[1]!r} work",
                           path=path, line=lineno) if len(columns) > 2 else 1.0
            memory = _number(columns[3], f"task {columns[1]!r} memory",
                             path=path, line=lineno) if len(columns) > 3 \
                else 0.0
            asm.add_task(columns[1], work, memory, line=lineno)
            saw_row = True
            continue
        if len(columns) == 2:
            u, v = columns
            cost = 0.0
        elif len(columns) == 3:
            u, v = columns[0], columns[1]
            cost = _number(columns[2], f"edge ({u!r} -> {v!r}) cost",
                           path=path, line=lineno)
        else:
            raise IngestError(
                f"expected 'parent child [cost]' or 'task id [work] "
                f"[memory]', got {len(columns)} columns", path=path,
                line=lineno)
        asm.add_edge(u, v, cost, line=lineno)
        saw_row = True
    if not saw_row:
        raise IngestError("no rows found (empty edge list)", path=path)
    return asm.finish()
