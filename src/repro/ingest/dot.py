"""Hardened GraphViz DOT importer (nextflow ``-with-dag`` flavour).

The paper's real workflows arrive as DOT digraphs exported by nextflow.
The original reader (``workflow/io.py``) was a line-regex affair that
silently skipped anything it did not recognize — a malformed file loaded
as an empty workflow and failed much later, deep inside a heuristic.
This importer is a small scanner/parser instead:

* **quoted identifiers** with spaces and ``\\"``/``\\\\`` escapes;
* ``//``, ``#`` and ``/* ... */`` comments (also *inside* statements,
  never inside quoted strings);
* **edge chains** ``a -> b -> c [cost=2]`` (the attribute list applies to
  every edge of the chain);
* **node-only statements** (``"long task name";``) with ``work`` /
  ``memory`` attributes, last declaration wins (DOT semantics);
* anything unparsable raises :class:`~repro.utils.errors.IngestError`
  with the offending file and line — never a silent empty workflow.

Recognized attributes: ``work``/``memory`` on nodes, ``cost`` (alias
``weight``) on edges; purely cosmetic attributes (labels, shapes, ...)
are ignored as before.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.ingest.normalize import WorkflowAssembler
from repro.ingest.registry import register_format
from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow

#: statement keywords that carry no graph content
_SKIP_KEYWORDS = {"graph", "node", "edge", "digraph", "strict"}


def _sniff(text: str) -> bool:
    head = text[:4096]
    return "digraph" in head or ("->" in head and "{" in head)


class _Token:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind: str, value: str, line: int):
        self.kind = kind  # "id" | "qid" | "sym" | "end"
        self.value = value
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.value!r}, line={self.line})"


def _tokenize(text: str, path: Optional[str]) -> List[_Token]:
    """Scan DOT text into tokens, stripping comments, keeping line numbers.

    Statement separators (``;`` and newlines outside ``[...]`` lists) are
    emitted as ``end`` tokens; the parser treats runs of them as one.
    """
    tokens: List[_Token] = []
    i, line, n = 0, 1, len(text)
    depth = 0  # inside [...] newlines do not end the statement
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            if depth == 0:
                tokens.append(_Token("end", "\n", line - 1))
            i += 1
        elif ch in " \t\r":
            i += 1
        elif ch == "#" or (ch == "/" and i + 1 < n and text[i + 1] == "/"):
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            start_line = line
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            if i >= n:
                raise IngestError("unterminated /* comment", path=path,
                                  line=start_line)
            i += 2
        elif ch == '"':
            start_line = line
            i += 1
            chars: List[str] = []
            while i < n and text[i] != '"':
                if text[i] == "\\" and i + 1 < n and text[i + 1] in '"\\':
                    chars.append(text[i + 1])
                    i += 2
                    continue
                if text[i] == "\n":
                    line += 1
                chars.append(text[i])
                i += 1
            if i >= n:
                raise IngestError("unterminated quoted identifier",
                                  path=path, line=start_line)
            i += 1
            tokens.append(_Token("qid", "".join(chars), start_line))
        elif ch == "-" and i + 1 < n and text[i + 1] == ">":
            tokens.append(_Token("sym", "->", line))
            i += 2
        elif ch == ";":
            tokens.append(_Token("end", ";", line))
            i += 1
        elif ch in "{}":
            # braces delimit statements too, so one-line digraphs
            # ('digraph g { a -> b; }') split header/body correctly
            tokens.append(_Token("sym", ch, line))
            tokens.append(_Token("end", ch, line))
            i += 1
        elif ch in "[]=,":
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth = max(0, depth - 1)
            tokens.append(_Token("sym", ch, line))
            i += 1
        else:
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_.:/%-"):
                # stop a bare id at an arrow, but allow '-' inside names
                if text[j] == "-" and j + 1 < n and text[j + 1] == ">":
                    break
                j += 1
            if j == i:
                raise IngestError(f"unexpected character {ch!r}",
                                  path=path, line=line)
            tokens.append(_Token("id", text[i:j], line))
            i = j
    tokens.append(_Token("end", "", line))
    return tokens


def _split_statements(tokens: List[_Token]) -> List[List[_Token]]:
    statements: List[List[_Token]] = []
    current: List[_Token] = []
    for token in tokens:
        if token.kind == "end":
            if current:
                statements.append(current)
                current = []
        else:
            current.append(token)
    if current:
        statements.append(current)
    return statements


def _parse_attrs(tokens: List[_Token], start: int, path: Optional[str],
                 ) -> Tuple[dict, int]:
    """Parse ``[key=value, ...]`` starting at ``tokens[start]`` == '['."""
    attrs: dict = {}
    i = start + 1
    while i < len(tokens):
        token = tokens[i]
        if token.kind == "sym" and token.value == "]":
            return attrs, i + 1
        if token.kind == "sym" and token.value in (",", ";"):
            i += 1
            continue
        if token.kind in ("id", "qid"):
            if (i + 2 < len(tokens) and tokens[i + 1].kind == "sym"
                    and tokens[i + 1].value == "="
                    and tokens[i + 2].kind in ("id", "qid")):
                attrs[token.value.lower()] = tokens[i + 2].value
                i += 3
                continue
            # bare attribute name (e.g. [fixedsize]) — ignore
            i += 1
            continue
        raise IngestError(
            f"unparsable attribute list near {token.value!r}",
            path=path, line=token.line)
    raise IngestError("unterminated attribute list ('[' without ']')",
                      path=path, line=tokens[start].line)


def _attr_float(attrs: dict, *names: str) -> Optional[float]:
    for key in names:
        if key in attrs:
            try:
                return float(attrs[key])
            except (TypeError, ValueError):
                continue
    return None


@register_format("dot", extensions=(".dot", ".gv"), sniffer=_sniff,
                 display_name="GraphViz DOT",
                 summary="nextflow -with-dag digraphs (hardened reader)")
def import_dot(text: str, *, name: Optional[str] = None,
               path: Optional[str] = None, data: Any = None) -> Workflow:
    tokens = _tokenize(text, path)
    statements = _split_statements(tokens)

    graph_name: Optional[str] = None
    asm: Optional[WorkflowAssembler] = None

    def assembler() -> WorkflowAssembler:
        nonlocal asm
        if asm is None:
            asm = WorkflowAssembler(str(name or graph_name or "workflow"),
                                    path=path, allow_implicit_tasks=True)
        return asm

    for statement in statements:
        head = statement[0]
        # strip a leading 'strict' keyword
        if (head.kind == "id" and head.value.lower() == "strict"
                and len(statement) > 1):
            statement = statement[1:]
            head = statement[0]
        if head.kind == "sym" and head.value in ("{", "}"):
            continue
        if head.kind == "id" and head.value.lower() in ("digraph", "graph") \
                and any(t.kind == "sym" and t.value == "{" for t in statement):
            # header: digraph [name] {  — record the internal name
            for token in statement[1:]:
                if token.kind in ("id", "qid") and token.value != "{":
                    graph_name = token.value
                    break
            continue
        if head.kind == "id" and head.value.lower() == "subgraph":
            raise IngestError("subgraph statements are not supported",
                              path=path, line=head.line)
        if head.kind == "id" and head.value.lower() in _SKIP_KEYWORDS:
            continue  # node/edge/graph default-attribute statements
        # ID = value  (graph attribute assignment) — ignore
        if (len(statement) >= 3 and head.kind in ("id", "qid")
                and statement[1].kind == "sym" and statement[1].value == "="):
            continue

        # node or edge-chain statement: ID (-> ID)* [attrs]
        ids: List[Tuple[str, int]] = []
        i = 0
        attrs: dict = {}
        expect_id = True
        while i < len(statement):
            token = statement[i]
            if expect_id:
                if token.kind not in ("id", "qid"):
                    raise IngestError(
                        f"unparsable statement near {token.value!r}",
                        path=path, line=token.line)
                ids.append((token.value, token.line))
                expect_id = False
                i += 1
            elif token.kind == "sym" and token.value == "->":
                expect_id = True
                i += 1
            elif token.kind == "sym" and token.value == "[":
                attrs, i = _parse_attrs(statement, i, path)
            else:
                raise IngestError(
                    f"unparsable statement near {token.value!r}",
                    path=path, line=token.line)
        if expect_id:
            raise IngestError("edge statement ends with a dangling '->'",
                              path=path, line=statement[-1].line)

        if len(ids) == 1:
            # node statement; last declaration wins (DOT semantics)
            node, line = ids[0]
            work = _attr_float(attrs, "work")
            memory = _attr_float(attrs, "memory")
            wf = assembler().workflow
            if node in wf:
                if work is not None:
                    wf.set_work(node, work)
                if memory is not None:
                    wf.set_memory(node, memory)
            else:
                assembler().add_task(
                    node, 1.0 if work is None else work, memory or 0.0,
                    line=line)
        else:
            cost = _attr_float(attrs, "cost", "weight")
            for (u, _), (v, lv) in zip(ids, ids[1:]):
                assembler().add_edge(u, v, 0.0 if cost is None else cost,
                                     line=lv)

    if asm is None:
        raise IngestError(
            "no graph statements found (empty or non-DOT input)", path=path)
    return asm.finish()
