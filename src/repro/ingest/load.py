"""Front door of the ingestion subsystem: detect → import → normalize.

:func:`ingest_text` and :func:`ingest_path` are what everything else
calls — the CLI ``repro ingest`` verb, the scenario file/template
sources, and the examples. Every workflow that enters the system through
them has passed the same validation gate
(:func:`~repro.ingest.normalize.normalize_workflow`), whatever format it
arrived in.

Workflow *names* matter here: the request fingerprint the result cache
keys on includes the workflow name, so names must not depend on where
the file happened to sit. Precedence: an explicit ``name`` argument,
else the name recorded inside the document, else the file's base name
with the format's registered extension stripped — never the full path.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.ingest.normalize import (DEFAULT_OPTIONS, NormalizeOptions,
                                    normalize_workflow, workflow_fingerprint,
                                    workflow_stats)
from repro.ingest.registry import detect_format, get_format
from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow

#: the assembler default importers fall back to when a document carries
#: no internal name — replaced by the filename stem when one is known
_DEFAULT_NAME = "workflow"


def _stem(path: str, extensions: tuple) -> str:
    base = os.path.basename(path)
    for ext in sorted(extensions, key=len, reverse=True):
        if base.lower().endswith(ext.lower()) and len(base) > len(ext):
            return base[:-len(ext)]
    return os.path.splitext(base)[0] or base


def ingest_text(text: str, *, fmt: Optional[str] = None,
                name: Optional[str] = None, path: Optional[str] = None,
                data: Optional[Dict[str, Any]] = None,
                options: Optional[NormalizeOptions] = None) -> Workflow:
    """Import workflow ``text`` and run it through the validation gate.

    ``fmt`` forces a registered format; otherwise :func:`detect_format`
    sniffs the content (and falls back to the extension of ``path``).
    ``data`` feeds template expansion and is rejected for formats that
    cannot use it.
    """
    info = get_format(fmt) if fmt else detect_format(text, path=path)
    if data is not None and info.name != "template":
        raise IngestError(
            f"--data only applies to templates, not {info.name!r}",
            path=path)
    wf = info.importer(text, name=name, path=path, data=data)
    if wf.name == _DEFAULT_NAME and name is None and path is not None:
        wf.name = _stem(path, info.extensions)
    return normalize_workflow(wf, options or DEFAULT_OPTIONS, path=path)


def ingest_path(path: str, *, fmt: Optional[str] = None,
                name: Optional[str] = None,
                data: Optional[Dict[str, Any]] = None,
                options: Optional[NormalizeOptions] = None) -> Workflow:
    """Read and ingest the workflow description at ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise IngestError(f"cannot read file: {exc.strerror or exc}",
                          path=str(path)) from None
    return ingest_text(text, fmt=fmt, name=name, path=str(path), data=data,
                       options=options)


__all__ = [
    "ingest_text",
    "ingest_path",
    "NormalizeOptions",
    "normalize_workflow",
    "workflow_stats",
    "workflow_fingerprint",
]
