"""Importer for WfCommons / wfformat JSON workflow traces.

The WfCommons project publishes execution traces of real scientific
workflows (Montage, Epigenomics, 1000Genome, ...) as JSON following the
*wfformat* schema: a top-level ``workflow`` object whose tasks carry
runtimes, memory figures, parent/child links, and per-file I/O records.
The mapping onto the paper's model:

* ``runtimeInSeconds`` / ``runtime`` → task **work** ``w_u``;
* ``memoryInBytes`` / ``memory``    → task **memory** ``m_u``;
* an edge ``(u, v)`` costs the **bytes transferred** between them — the
  sizes of the files ``u`` writes and ``v`` reads (matched by file name).

Both wfformat generations are understood: the flat layout
(``workflow.tasks`` / ``workflow.jobs`` with inline ``files`` entries)
and the split 1.5 layout (``workflow.specification.tasks`` naming
``inputFiles``/``outputFiles`` resolved against
``workflow.specification.files``, with runtimes overlaid from
``workflow.execution.tasks``). Unit conversion (bytes → the model's
abstract cost unit) is the normalization pass's ``cost_scale`` knob, not
the importer's business.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.ingest.normalize import WorkflowAssembler
from repro.ingest.registry import register_format
from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow


def _sniff(text: str) -> bool:
    stripped = text.lstrip()
    if not stripped.startswith("{"):
        return False
    payload = json.loads(text)
    if not isinstance(payload, dict):
        return False
    block = payload.get("workflow")
    return isinstance(block, dict) and any(
        key in block for key in ("tasks", "jobs", "specification"))


def _task_id(entry: Dict[str, Any], path: Optional[str]) -> str:
    tid = entry.get("id") or entry.get("name")
    if not tid:
        raise IngestError("task without an 'id' or 'name' field", path=path)
    return str(tid)


def _first_number(*candidates: Any) -> Optional[float]:
    for value in candidates:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return None


def _file_size(entry: Dict[str, Any]) -> float:
    return _first_number(entry.get("sizeInBytes"), entry.get("size")) or 0.0


@register_format("wfcommons", extensions=(".wfformat.json", ".wfformat"),
                 sniffer=_sniff, display_name="WfCommons JSON",
                 summary="wfformat traces: runtime=work, bytes=edge cost")
def import_wfcommons(text: str, *, name: Optional[str] = None,
                     path: Optional[str] = None,
                     data: Any = None) -> Workflow:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise IngestError(f"invalid JSON: {exc.msg}", path=path,
                          line=exc.lineno) from None
    if not isinstance(payload, dict) or not isinstance(payload.get("workflow"),
                                                       dict):
        raise IngestError(
            "not a wfformat document (expected a top-level 'workflow' "
            "object)", path=path)
    block = payload["workflow"]

    # --- locate the task list and any split-out file catalog -----------
    tasks = block.get("tasks") or block.get("jobs")
    catalog: Dict[str, float] = {}
    specification = block.get("specification")
    if tasks is None and isinstance(specification, dict):
        tasks = specification.get("tasks")
        for entry in specification.get("files") or []:
            fid = entry.get("id") or entry.get("name")
            if fid:
                catalog[str(fid)] = _file_size(entry)
    if not isinstance(tasks, list) or not tasks:
        raise IngestError(
            "wfformat document has no tasks (looked in workflow.tasks, "
            "workflow.jobs, workflow.specification.tasks)", path=path)

    # --- optional execution overlay (runtimes/memory measured per run) -
    overlay: Dict[str, Dict[str, Any]] = {}
    execution = block.get("execution")
    if isinstance(execution, dict):
        for entry in execution.get("tasks") or []:
            if isinstance(entry, dict):
                tid = entry.get("id") or entry.get("name")
                if tid:
                    overlay[str(tid)] = entry

    wf_name = name or payload.get("name") or block.get("name") or "workflow"
    asm = WorkflowAssembler(str(wf_name), path=path)
    reads: Dict[str, Dict[str, float]] = {}
    writes: Dict[str, Dict[str, float]] = {}

    for entry in tasks:
        if not isinstance(entry, dict):
            raise IngestError(f"task entry is not an object: {entry!r}",
                              path=path)
        tid = _task_id(entry, path)
        extra = overlay.get(tid, {})
        work = _first_number(extra.get("runtimeInSeconds"),
                             extra.get("runtime"),
                             entry.get("runtimeInSeconds"),
                             entry.get("runtime"))
        memory = _first_number(extra.get("memoryInBytes"),
                               extra.get("memory"),
                               entry.get("memoryInBytes"),
                               entry.get("memory"))
        asm.add_task(tid, 1.0 if work is None else work, memory or 0.0)

        ins: Dict[str, float] = {}
        outs: Dict[str, float] = {}
        for record in entry.get("files") or []:
            fname = record.get("name") or record.get("id")
            if not fname:
                continue
            link = str(record.get("link", "")).lower()
            target = ins if link == "input" else outs if link == "output" \
                else None
            if target is not None:
                target[str(fname)] = _file_size(record)
        for fname in entry.get("inputFiles") or []:
            ins[str(fname)] = catalog.get(str(fname), 0.0)
        for fname in entry.get("outputFiles") or []:
            outs[str(fname)] = catalog.get(str(fname), 0.0)
        reads[tid] = ins
        writes[tid] = outs

    # --- edges: union of parents/children declarations, document order -
    pairs: List[Tuple[str, str]] = []
    seen = set()
    for entry in tasks:
        tid = _task_id(entry, path)
        for parent in entry.get("parents") or []:
            pair = (str(parent), tid)
            if pair not in seen:
                seen.add(pair)
                pairs.append(pair)
    for entry in tasks:
        tid = _task_id(entry, path)
        for child in entry.get("children") or []:
            pair = (tid, str(child))
            if pair not in seen:
                seen.add(pair)
                pairs.append(pair)

    for u, v in pairs:
        # bytes transferred: files u writes that v reads; the reader's
        # recorded size wins when both sides carry one
        cost = 0.0
        v_reads = reads.get(v, {})
        for fname, size in writes.get(u, {}).items():
            if fname in v_reads:
                cost += v_reads[fname] or size
        asm.add_edge(u, v, cost)
    return asm.finish()
