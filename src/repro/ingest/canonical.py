"""Importer for the library's own canonical workflow JSON.

Registering the native format makes ``repro ingest`` (and the scenario
file sources behind it) completely uniform: every on-disk workflow —
whatever its origin — flows through the same detect → import → normalize
pipeline. The heavy lifting lives in
:func:`repro.workflow.io.workflow_from_dict`, which itself routes through
the shared :class:`~repro.ingest.normalize.WorkflowAssembler`, so
duplicate ids and unknown edge endpoints fail loudly here too.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.ingest.registry import register_format
from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow


def _sniff(text: str) -> bool:
    stripped = text.lstrip()
    if not stripped.startswith("{"):
        return False
    payload = json.loads(text)
    return (isinstance(payload, dict) and "workflow" not in payload
            and isinstance(payload.get("tasks"), list))


@register_format("json", extensions=(".json",), sniffer=_sniff,
                 display_name="canonical JSON",
                 summary="the library's own {tasks, edges} serialization")
def import_canonical(text: str, *, name: Optional[str] = None,
                     path: Optional[str] = None,
                     data: Any = None) -> Workflow:
    from repro.workflow.io import workflow_from_dict

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise IngestError(f"invalid JSON: {exc.msg}", path=path,
                          line=exc.lineno) from None
    if not isinstance(payload, dict) or not isinstance(payload.get("tasks"),
                                                       list):
        raise IngestError(
            "canonical workflow JSON needs a top-level object with a "
            "'tasks' list", path=path)
    wf = workflow_from_dict(payload, path=path)
    if name:
        wf.name = name
    return wf
