"""Pluggable ingestion of real workflow descriptions.

The paper evaluates its partitioners on real scientific workflows
(nextflow pipelines, Pegasus benchmarks); this package is the seam those
workflows enter through. It mirrors the registry idiom used for
algorithms, backends, and policies: importers self-register under a
format name, ``detect_format`` sniffs content before trusting
extensions, and everything funnels through one normalization/validation
gate so a workflow is either fully checked or loudly rejected.

Shipped formats: ``wfcommons`` (WfCommons/wfformat JSON traces),
``dax`` (Pegasus DAX XML), ``dot`` (GraphViz/nextflow digraphs),
``edgelist`` (CSV-ish edge lists), ``template`` (jetstream-style
``{{var}}``/``{% for %}`` task lists), and ``json`` (the library's own
canonical serialization).

Typical use::

    from repro.ingest import ingest_path
    wf = ingest_path("examples/traces/epigenomics.wfformat.json")
"""

from repro.ingest.load import ingest_path, ingest_text
from repro.ingest.normalize import (DEFAULT_OPTIONS, NormalizeOptions,
                                    WorkflowAssembler, normalize_workflow,
                                    workflow_fingerprint, workflow_stats)
from repro.ingest.registry import (available_formats, canonical_format,
                                   detect_format, format_infos, get_format,
                                   register_format, unregister_format)
from repro.ingest.templates import (build_from_document, parse_structured,
                                    render_template)

# importing the format modules registers them
from repro.ingest import canonical as _canonical  # noqa: F401
from repro.ingest import dax as _dax  # noqa: F401
from repro.ingest import dot as _dot  # noqa: F401
from repro.ingest import edgelist as _edgelist  # noqa: F401
from repro.ingest import templates as _templates  # noqa: F401
from repro.ingest import wfcommons as _wfcommons  # noqa: F401

__all__ = [
    "ingest_path",
    "ingest_text",
    "detect_format",
    "get_format",
    "register_format",
    "unregister_format",
    "available_formats",
    "format_infos",
    "canonical_format",
    "NormalizeOptions",
    "DEFAULT_OPTIONS",
    "WorkflowAssembler",
    "normalize_workflow",
    "workflow_stats",
    "workflow_fingerprint",
    "render_template",
    "parse_structured",
    "build_from_document",
]
