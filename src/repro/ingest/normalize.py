"""The shared normalization/validation gate every importer feeds through.

Two layers:

* :class:`WorkflowAssembler` — the *construction-time* checks a built
  :class:`~repro.workflow.graph.Workflow` can no longer perform
  (``add_task`` silently overwrites, ``add_edge`` silently creates missing
  endpoints): duplicate task ids, edges referencing unknown tasks, and
  self-loops all raise :class:`~repro.utils.errors.IngestError` carrying
  the file and line they came from.
* :func:`normalize_workflow` — the *post-construction* pass run once per
  ingest, whatever the format: unit scaling (``work_scale`` /
  ``cost_scale`` / ``memory_scale``), deterministic task-id interning
  (every id becomes its ``str`` form, collisions rejected), weight sanity
  (finite, non-negative), and the cycle check — again with file context.
  With default options the pass is idempotent:
  ``normalize(normalize(wf)) == normalize(wf)``.

Alongside the gate live the corpus-curation helpers:
:func:`workflow_stats` (depth, fan-in/out, work/memory distributions) and
:func:`workflow_fingerprint` (an order-insensitive sha256 over the
canonical serialized form — the content hash scenario sources pin with
their ``checksum`` field so a silently edited trace can't poison a cached
sweep).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow


class WorkflowAssembler:
    """Incremental workflow builder with loud, located error reporting.

    ``allow_implicit_tasks`` lets edge-first formats (DOT, edge lists)
    create endpoints on the fly with default weights; strict formats
    (canonical JSON, WfCommons, DAX, templates) leave it off so an edge
    naming an undeclared task fails with the offending edge spelled out.
    """

    def __init__(self, name: str = "workflow", *, path: Optional[str] = None,
                 allow_implicit_tasks: bool = False):
        self.workflow = Workflow(name)
        self.path = path
        self.allow_implicit_tasks = allow_implicit_tasks
        self._declared = set()
        self._weighted_work = set()
        self._weighted_memory = set()

    def error(self, message: str, *, line: Optional[int] = None) -> "IngestError":
        raise IngestError(message, path=self.path, line=line)

    def add_task(self, task_id: Any, work: float = 1.0, memory: float = 0.0,
                 *, line: Optional[int] = None) -> None:
        if task_id in self._declared:
            self.error(f"duplicate task id {task_id!r}", line=line)
        self._declared.add(task_id)
        self.workflow.add_task(task_id, work, memory)

    def has_task(self, task_id: Any) -> bool:
        return task_id in self.workflow

    def set_weights(self, task_id: Any, work: Optional[float] = None,
                    memory: Optional[float] = None,
                    *, line: Optional[int] = None) -> None:
        """Update a declared task's weights; conflicting re-definitions fail."""
        if task_id not in self.workflow:
            self.error(f"weights for unknown task {task_id!r}", line=line)
        if work is not None:
            current = self.workflow.work(task_id)
            if task_id in self._weighted_work and current != float(work):
                self.error(
                    f"conflicting work for task {task_id!r}: "
                    f"{current:g} vs {float(work):g}", line=line)
            self.workflow.set_work(task_id, work)
            self._weighted_work.add(task_id)
        if memory is not None:
            current = self.workflow.memory(task_id)
            if task_id in self._weighted_memory and current != float(memory):
                self.error(
                    f"conflicting memory for task {task_id!r}: "
                    f"{current:g} vs {float(memory):g}", line=line)
            self.workflow.set_memory(task_id, memory)
            self._weighted_memory.add(task_id)

    def add_edge(self, u: Any, v: Any, cost: float = 0.0,
                 *, line: Optional[int] = None) -> None:
        if u == v:
            self.error(f"self-loop on task {u!r}", line=line)
        for endpoint in (u, v):
            if endpoint not in self.workflow:
                if not self.allow_implicit_tasks:
                    self.error(
                        f"edge ({u!r} -> {v!r}) references unknown task "
                        f"{endpoint!r}", line=line)
                self._declared.add(endpoint)
                self.workflow.add_task(endpoint)
        self.workflow.add_edge(u, v, cost)

    def finish(self) -> Workflow:
        """The raw workflow (cycle/weight checks happen in normalize)."""
        return self.workflow


@dataclass(frozen=True)
class NormalizeOptions:
    """Unit-scaling knobs applied by :func:`normalize_workflow`.

    Traces record work/cost/memory in whatever unit the exporting system
    used (seconds, bytes, MB); the scales convert them into the model's
    abstract units in one deterministic place instead of per-importer
    ad-hockery. ``1.0`` everywhere (the default) is the identity — and
    the only configuration under which normalization is idempotent.
    """

    work_scale: float = 1.0
    cost_scale: float = 1.0
    memory_scale: float = 1.0

    def __post_init__(self):
        for field_name in ("work_scale", "cost_scale", "memory_scale"):
            value = getattr(self, field_name)
            if not (isinstance(value, (int, float)) and value > 0
                    and math.isfinite(value)):
                raise ValueError(
                    f"{field_name} must be a positive finite number, "
                    f"got {value!r}")
            object.__setattr__(self, field_name, float(value))

    @property
    def is_identity(self) -> bool:
        return (self.work_scale == 1.0 and self.cost_scale == 1.0
                and self.memory_scale == 1.0)


DEFAULT_OPTIONS = NormalizeOptions()


def normalize_workflow(wf: Workflow,
                       options: Optional[NormalizeOptions] = None,
                       *, path: Optional[str] = None) -> Workflow:
    """Validate and canonicalize an imported workflow.

    Returns a *new* workflow whose task ids are interned strings (in the
    original insertion order, so repeated ingests are bit-identical),
    whose weights are scaled by ``options``, and which is guaranteed
    acyclic with finite non-negative weights. Violations raise
    :class:`~repro.utils.errors.IngestError` naming the offender and the
    source file.
    """
    options = options or DEFAULT_OPTIONS
    if wf.n_tasks == 0:
        raise IngestError("workflow has no tasks", path=path)

    interned: Dict[Any, str] = {}
    seen: Dict[str, Any] = {}
    for u in wf.tasks():
        key = u if isinstance(u, str) else str(u)
        if key in seen:
            raise IngestError(
                f"task ids {seen[key]!r} and {u!r} collide after interning "
                f"to {key!r}", path=path)
        seen[key] = u
        interned[u] = key

    out = Workflow(wf.name)
    for u in wf.tasks():
        work = wf.work(u) * options.work_scale
        memory = wf.memory(u) * options.memory_scale
        if not _finite_nonneg(work):
            raise IngestError(
                f"task {u!r} has invalid work {wf.work(u)!r}", path=path)
        if not _finite_nonneg(memory):
            raise IngestError(
                f"task {u!r} has invalid memory {wf.memory(u)!r}", path=path)
        out.add_task(interned[u], work, memory)
    for u, v, c in wf.edges():
        cost = c * options.cost_scale
        if not _finite_nonneg(cost):
            raise IngestError(
                f"edge ({u!r} -> {v!r}) has invalid cost {c!r}", path=path)
        out.add_edge(interned[u], interned[v], cost)

    cycle = out.find_cycle()
    if cycle is not None:
        shown = " -> ".join(repr(x) for x in cycle[:6])
        raise IngestError(
            f"workflow contains a cycle through {shown}"
            + ("..." if len(cycle) > 6 else ""), path=path)
    return out


def _finite_nonneg(value: float) -> bool:
    return isinstance(value, float) and math.isfinite(value) and value >= 0.0


# ----------------------------------------------------------------------
# corpus curation: structural stats + content hash
# ----------------------------------------------------------------------
def workflow_stats(wf: Workflow) -> Dict[str, Any]:
    """Structural statistics of a workflow (deterministic, JSON-ready).

    ``depth`` counts *tasks* on the longest path (a single task has depth
    1); distributions report min/mean/max so a corpus table stays one row
    per workflow.
    """
    works = [wf.work(u) for u in wf.tasks()]
    memories = [wf.memory(u) for u in wf.tasks()]
    costs = [c for _, _, c in wf.edges()]

    depth = 0
    longest: Dict[Any, int] = {}
    for u in wf.topological_order():
        best = 0
        for p in wf.parents(u):
            best = max(best, longest[p])
        longest[u] = best + 1
        depth = max(depth, best + 1)

    fan_out = [wf.out_degree(u) for u in wf.tasks()]
    fan_in = [wf.in_degree(u) for u in wf.tasks()]
    return {
        "name": wf.name,
        "n_tasks": wf.n_tasks,
        "n_edges": wf.n_edges,
        "n_sources": len(wf.sources()),
        "n_targets": len(wf.targets()),
        "depth": depth,
        "max_fan_out": max(fan_out, default=0),
        "max_fan_in": max(fan_in, default=0),
        "total_work": sum(works),
        "work_min": min(works, default=0.0),
        "work_mean": (sum(works) / len(works)) if works else 0.0,
        "work_max": max(works, default=0.0),
        "memory_min": min(memories, default=0.0),
        "memory_mean": (sum(memories) / len(memories)) if memories else 0.0,
        "memory_max": max(memories, default=0.0),
        "total_edge_cost": sum(costs),
        "edge_cost_max": max(costs, default=0.0),
        "max_requirement": wf.max_task_requirement(),
    }


def workflow_fingerprint(wf: Workflow) -> str:
    """Content hash of a workflow: sha256 over the canonical sorted form.

    Task and edge rows are sorted, so the hash depends only on the
    *content* (name, tasks, weights, edges) — not on insertion order —
    and two ingests of equivalent descriptions agree. This is the value
    scenario sources pin via ``checksum`` and ``repro ingest`` prints.
    """
    from repro.workflow.io import workflow_to_dict

    data = workflow_to_dict(wf)
    canonical = {
        "name": data["name"],
        "tasks": sorted((str(t["id"]), float(t["work"]), float(t["memory"]))
                        for t in data["tasks"]),
        "edges": sorted((str(e["source"]), str(e["target"]), float(e["cost"]))
                        for e in data["edges"]),
    }
    payload = json.dumps(canonical, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
