"""Importer for Pegasus DAX (Directed Acyclic Graph in XML) workflows.

The Pegasus WMS describes abstract workflows as ``<adag>`` documents:
``<job>`` elements with ``<uses>`` file records, and ``<child>``/
``<parent>`` reference pairs for the dependency structure. The synthetic
workflow generators behind many scheduling papers (Montage, CyberShake,
Epigenomics, Inspiral, Sipht) emit exactly this format, which makes it
the lingua franca of workflow-scheduling benchmarks.

Mapping onto the paper's model:

* the job's ``runtime`` attribute → task **work** (defaults to 1.0 — the
  paper's handling of tasks without historical data);
* a ``<profile key="memory">`` element → task **memory** (defaults 0);
* edge cost = bytes transferred: sizes of ``<uses link="output">`` files
  of the parent that the child lists as ``link="input"`` (the reader's
  recorded size wins when both sides carry one).

Parsed with :mod:`xml.etree` only — no external dependency — and
namespace-agnostic (DAX 2 and 3 wrap everything in a schema namespace).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Dict, Optional

from repro.ingest.normalize import WorkflowAssembler
from repro.ingest.registry import register_format
from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow


def _local(tag: Any) -> str:
    """Element tag without its XML-namespace prefix."""
    return tag.rsplit("}", 1)[-1] if isinstance(tag, str) else ""


def _sniff(text: str) -> bool:
    head = text[:4096].lower()
    return "<adag" in head


def _float_attr(element, attr: str, default: float, *,
                path: Optional[str], what: str) -> float:
    raw = element.get(attr)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise IngestError(f"{what}: non-numeric {attr}={raw!r}",
                          path=path) from None


@register_format("dax", extensions=(".dax", ".dax.xml"), sniffer=_sniff,
                 display_name="Pegasus DAX",
                 summary="<adag> XML: jobs, uses-files, child/parent refs")
def import_dax(text: str, *, name: Optional[str] = None,
               path: Optional[str] = None, data: Any = None) -> Workflow:
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        line = exc.position[0] if getattr(exc, "position", None) else None
        raise IngestError(f"invalid XML: {exc.msg.split(':')[0]}",
                          path=path, line=line) from None
    if _local(root.tag) != "adag":
        raise IngestError(
            f"not a DAX document (expected an <adag> root, found "
            f"<{_local(root.tag)}>)", path=path)

    asm = WorkflowAssembler(str(name or root.get("name") or "workflow"),
                            path=path)
    reads: Dict[str, Dict[str, float]] = {}
    writes: Dict[str, Dict[str, float]] = {}

    for element in root:
        if _local(element.tag) != "job":
            continue
        jid = element.get("id")
        if not jid:
            raise IngestError("<job> without an id attribute", path=path)
        work = _float_attr(element, "runtime", 1.0, path=path,
                           what=f"job {jid!r}")
        memory = 0.0
        ins: Dict[str, float] = {}
        outs: Dict[str, float] = {}
        for sub in element:
            tag = _local(sub.tag)
            if tag == "uses":
                fname = sub.get("file") or sub.get("name")
                if not fname:
                    continue
                size = _float_attr(sub, "size", 0.0, path=path,
                                   what=f"job {jid!r} uses {fname!r}")
                link = (sub.get("link") or "").lower()
                if link == "input":
                    ins[fname] = size
                elif link == "output":
                    outs[fname] = size
            elif tag == "profile" and (sub.get("key") or "").lower() == "memory":
                try:
                    memory = float((sub.text or "").strip() or 0.0)
                except ValueError:
                    raise IngestError(
                        f"job {jid!r}: non-numeric memory profile "
                        f"{sub.text!r}", path=path) from None
        asm.add_task(jid, work, memory)
        reads[jid] = ins
        writes[jid] = outs

    for element in root:
        if _local(element.tag) != "child":
            continue
        child = element.get("ref")
        if not child:
            raise IngestError("<child> without a ref attribute", path=path)
        for sub in element:
            if _local(sub.tag) != "parent":
                continue
            parent = sub.get("ref")
            if not parent:
                raise IngestError(
                    f"<parent> of child {child!r} without a ref attribute",
                    path=path)
            cost = 0.0
            child_reads = reads.get(child, {})
            for fname, size in writes.get(parent, {}).items():
                if fname in child_reads:
                    cost += child_reads[fname] or size
            asm.add_edge(parent, child, cost)
    return asm.finish()
