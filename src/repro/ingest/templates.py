"""Dependency-free workflow templates: render, parse, build.

Hand-written workflow descriptions get repetitive the moment a study
needs "the same pipeline over N samples". The template format keeps the
description declarative while letting user data drive the shape
(jetstream-style):

1. **Render** — the template text is expanded against a data mapping:
   ``{{expr}}`` substitutes a dotted lookup (``sample.name``,
   ``sizes.0``) and a ``{% for x in items %}`` ... ``{% endfor %}``
   line-block repeats its body once per element. Loops nest; undefined
   names are errors, not empty strings.
2. **Parse** — the rendered text is a task-list document, written either
   as JSON or as a *restricted YAML subset* (mappings, ``-`` lists,
   inline ``[a, b]`` lists, scalars — two-space indentation, no anchors,
   no multi-line strings, no tabs).
3. **Build** — the document's ``tasks`` become a workflow: ``id``,
   ``work``, ``memory``, plus ``after``/``before`` dependency directives
   (a task id or list of ids; ``cost`` on the task prices its ``after``
   edges). Dangling references and duplicate ids raise
   :class:`~repro.utils.errors.IngestError`.

Everything is pure stdlib and deterministic: the same template and data
always produce the same workflow, bit for bit.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.ingest.normalize import WorkflowAssembler
from repro.ingest.registry import register_format
from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow

_VAR_RE = re.compile(r"\{\{\s*([A-Za-z_][\w.]*)\s*\}\}")
_FOR_RE = re.compile(
    r"\{%\s*for\s+([A-Za-z_]\w*)\s+in\s+([A-Za-z_][\w.]*)\s*%\}")
_ENDFOR_RE = re.compile(r"\{%\s*endfor\s*%\}")
_DIRECTIVE_RE = re.compile(r"\{%.*?%\}")
_MAPPING_RE = re.compile(r"^([^:\s][^:]*?)\s*:(\s+|$)")


# ----------------------------------------------------------------------
# stage 1: render {{var}} / {% for %} against user data
# ----------------------------------------------------------------------
def _lookup(expr: str, scope: Dict[str, Any], *, path: Optional[str],
            line: int) -> Any:
    parts = expr.split(".")
    if parts[0] not in scope:
        raise IngestError(
            f"undefined template variable {parts[0]!r} (available: "
            + (", ".join(sorted(map(str, scope))) or "none") + ")",
            path=path, line=line)
    value = scope[parts[0]]
    for part in parts[1:]:
        if isinstance(value, dict) and part in value:
            value = value[part]
        elif isinstance(value, (list, tuple)) and part.isdigit() \
                and int(part) < len(value):
            value = value[int(part)]
        else:
            raise IngestError(
                f"template variable {expr!r}: cannot resolve {part!r}",
                path=path, line=line)
    return value


def _render_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (dict, list, tuple)):
        return json.dumps(value)
    if value is None:
        return "null"
    return str(value)


def _substitute(line: str, scope: Dict[str, Any], *, path: Optional[str],
                lineno: int) -> str:
    def repl(match: "re.Match[str]") -> str:
        return _render_value(_lookup(match.group(1), scope, path=path,
                                     line=lineno))

    out = _VAR_RE.sub(repl, line)
    leftover = _DIRECTIVE_RE.search(out)
    if leftover:
        raise IngestError(
            f"unrecognized template directive {leftover.group(0)!r}",
            path=path, line=lineno)
    return out


def _render_block(lines: List[str], i: int, end: int,
                  scope: Dict[str, Any], out: List[str],
                  path: Optional[str]) -> None:
    while i < end:
        line = lines[i]
        match = _FOR_RE.search(line)
        if match:
            if line.strip() != match.group(0):
                raise IngestError(
                    "a {% for %} directive must stand on its own line",
                    path=path, line=i + 1)
            depth, j = 1, i + 1
            while j < end:
                if _FOR_RE.search(lines[j]):
                    depth += 1
                elif _ENDFOR_RE.search(lines[j]):
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if depth != 0:
                raise IngestError("{% for %} without a matching "
                                  "{% endfor %}", path=path, line=i + 1)
            var, expr = match.group(1), match.group(2)
            seq = _lookup(expr, scope, path=path, line=i + 1)
            if not isinstance(seq, (list, tuple)):
                raise IngestError(
                    f"{{% for %}} over {expr!r} needs a list, got "
                    f"{type(seq).__name__}", path=path, line=i + 1)
            for item in seq:
                inner = dict(scope)
                inner[var] = item
                _render_block(lines, i + 1, j, inner, out, path)
            i = j + 1
        elif _ENDFOR_RE.search(line):
            raise IngestError("{% endfor %} without a matching {% for %}",
                              path=path, line=i + 1)
        else:
            out.append(_substitute(line, scope, path=path, lineno=i + 1))
            i += 1


def render_template(text: str, data: Optional[Dict[str, Any]] = None, *,
                    path: Optional[str] = None) -> str:
    """Expand ``{{var}}`` substitutions and ``{% for %}`` blocks."""
    if data is None:
        data = {}
    if not isinstance(data, dict):
        raise IngestError(
            f"template data must be a mapping, got {type(data).__name__}",
            path=path)
    lines = text.splitlines()
    out: List[str] = []
    _render_block(lines, 0, len(lines), dict(data), out, path)
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# stage 2: parse the rendered document (JSON or restricted YAML subset)
# ----------------------------------------------------------------------
def _parse_scalar(raw: str) -> Any:
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "\"'":
        return raw[1:-1]
    low = raw.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    if low in ("null", "~"):
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _parse_value(raw: str, *, path: Optional[str], line: int) -> Any:
    raw = raw.strip()
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part.strip()) for part in inner.split(",")]
    if raw.startswith("{"):
        raise IngestError(
            "inline {...} mappings are outside the supported YAML subset",
            path=path, line=line)
    return _parse_scalar(raw)


def _parse_block(lines: List[Tuple[int, str, int]], i: int,
                 path: Optional[str]) -> Tuple[Any, int]:
    """Parse consecutive lines sharing the indentation of ``lines[i]``."""
    indent = lines[i][0]
    if lines[i][1] == "-" or lines[i][1].startswith("- "):
        items: List[Any] = []
        while i < len(lines) and lines[i][0] == indent and (
                lines[i][1] == "-" or lines[i][1].startswith("- ")):
            _, text, ln = lines[i]
            rest = text[1:].strip()
            if not rest:
                i += 1
                if i < len(lines) and lines[i][0] > indent:
                    value, i = _parse_block(lines, i, path)
                    items.append(value)
                else:
                    items.append(None)
            elif _MAPPING_RE.match(rest):
                # '- key: value' opens a mapping whose further keys sit
                # at the column where 'key' starts (indent + 2)
                sub: List[Tuple[int, str, int]] = [(indent + 2, rest, ln)]
                i += 1
                while i < len(lines) and lines[i][0] >= indent + 2:
                    sub.append(lines[i])
                    i += 1
                value, consumed = _parse_block(sub, 0, path)
                if consumed != len(sub):
                    raise IngestError("unparsable line in list item",
                                      path=path, line=sub[consumed][2])
                items.append(value)
            else:
                items.append(_parse_value(rest, path=path, line=ln))
                i += 1
        return items, i

    mapping: Dict[str, Any] = {}
    while i < len(lines) and lines[i][0] == indent:
        _, text, ln = lines[i]
        match = _MAPPING_RE.match(text)
        if not match:
            if mapping:
                break
            raise IngestError(
                f"expected 'key: value' or '- item', got {text!r}",
                path=path, line=ln)
        key = match.group(1).strip()
        if len(key) >= 2 and key[0] == key[-1] and key[0] in "\"'":
            key = key[1:-1]
        if key in mapping:
            raise IngestError(f"duplicate key {key!r}", path=path, line=ln)
        rest = text[match.end():].strip()
        i += 1
        if rest:
            mapping[key] = _parse_value(rest, path=path, line=ln)
        elif i < len(lines) and lines[i][0] > indent:
            mapping[key], i = _parse_block(lines, i, path)
        else:
            mapping[key] = None
    return mapping, i


def parse_structured(text: str, *, path: Optional[str] = None) -> Any:
    """Parse a rendered document: JSON if it starts with ``{``, else the
    restricted YAML subset."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise IngestError(f"invalid JSON: {exc.msg}", path=path,
                              line=exc.lineno) from None

    lines: List[Tuple[int, str, int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        without_comment = raw
        if not raw.lstrip().startswith("#"):
            # strip trailing comments outside quotes (restricted: no
            # '#' inside unquoted scalars)
            in_quote = ""
            for pos, ch in enumerate(raw):
                if in_quote:
                    if ch == in_quote:
                        in_quote = ""
                elif ch in "\"'":
                    in_quote = ch
                elif ch == "#":
                    without_comment = raw[:pos]
                    break
        else:
            continue
        if not without_comment.strip():
            continue
        stripped_line = without_comment.lstrip(" ")
        indent = len(without_comment) - len(stripped_line)
        if stripped_line.startswith("\t") or "\t" in without_comment[:indent]:
            raise IngestError("tab indentation is not allowed "
                              "(use spaces)", path=path, line=lineno)
        lines.append((indent, stripped_line.rstrip(), lineno))

    if not lines:
        raise IngestError("empty document", path=path)
    if lines[0][0] != 0:
        raise IngestError("top-level content must not be indented",
                          path=path, line=lines[0][2])
    value, consumed = _parse_block(lines, 0, path)
    if consumed != len(lines):
        raise IngestError("unparsable line (bad indentation?)",
                          path=path, line=lines[consumed][2])
    return value


# ----------------------------------------------------------------------
# stage 3: build a workflow from the parsed task list
# ----------------------------------------------------------------------
def _as_id_list(value: Any, what: str, *, path: Optional[str]) -> List[str]:
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        return [str(v) for v in value]
    if isinstance(value, (str, int, float)):
        return [str(value)]
    raise IngestError(f"{what} must be a task id or a list of ids",
                      path=path)


_TASK_KEYS = {"id", "work", "memory", "after", "before", "cost"}


def build_from_document(doc: Any, *, name: Optional[str] = None,
                        path: Optional[str] = None) -> Workflow:
    """Turn a parsed template document into a validated workflow."""
    if not isinstance(doc, dict) or not isinstance(doc.get("tasks"), list):
        raise IngestError(
            "template must render to a mapping with a 'tasks' list",
            path=path)
    wf_name = name or doc.get("name") or "workflow"
    asm = WorkflowAssembler(str(wf_name), path=path)

    entries: List[Dict[str, Any]] = []
    for entry in doc["tasks"]:
        if not isinstance(entry, dict) or "id" not in entry:
            raise IngestError(
                f"every task needs an 'id' field, got {entry!r}", path=path)
        unknown = set(entry) - _TASK_KEYS
        if unknown:
            raise IngestError(
                f"task {entry['id']!r}: unknown field(s) "
                + ", ".join(sorted(map(repr, unknown))), path=path)
        tid = str(entry["id"])
        work = entry.get("work", 1.0)
        memory = entry.get("memory", 0.0)
        for label, value in (("work", work), ("memory", memory)):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise IngestError(
                    f"task {tid!r}: {label} must be a number, got "
                    f"{value!r}", path=path)
        asm.add_task(tid, float(work), float(memory))
        entries.append(entry)

    for entry in entries:
        tid = str(entry["id"])
        cost = entry.get("cost", 0.0)
        if isinstance(cost, bool) or not isinstance(cost, (int, float)):
            raise IngestError(
                f"task {tid!r}: cost must be a number, got {cost!r}",
                path=path)
        for parent in _as_id_list(entry.get("after"),
                                  f"task {tid!r}: 'after'", path=path):
            asm.add_edge(parent, tid, float(cost))
        for child in _as_id_list(entry.get("before"),
                                 f"task {tid!r}: 'before'", path=path):
            asm.add_edge(tid, child, 0.0)
    return asm.finish()


def _sniff(text: str) -> bool:
    if "{{" in text or "{%" in text:
        return True
    return bool(re.search(r"(?m)^tasks:\s*$", text))


@register_format("template", extensions=(".tpl", ".wft", ".wft.yaml"),
                 sniffer=_sniff, display_name="workflow template",
                 summary="{{var}}/{% for %} task list with after/before deps")
def import_template(text: str, *, name: Optional[str] = None,
                    path: Optional[str] = None, data: Any = None) -> Workflow:
    rendered = render_template(text, data, path=path)
    doc = parse_structured(rendered, path=path)
    return build_from_document(doc, name=name, path=path)
