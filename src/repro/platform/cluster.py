"""The heterogeneous computing system ``S`` (Section 3.2)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.platform.processor import Processor


class Cluster:
    """An ordered collection of processors with a uniform bandwidth ``beta``.

    Processor order is the insertion order; presets insert machines grouped
    by kind, which makes experiment logs and tie-breaking deterministic.
    """

    def __init__(self, processors: Iterable[Processor], bandwidth: float = 1.0,
                 name: str = "cluster", bandwidth_model=None):
        self._procs: List[Processor] = list(processors)
        names = [p.name for p in self._procs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate processor names: {dupes}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self._by_name: Dict[str, Processor] = {p.name: p for p in self._procs}
        self.name = name
        if bandwidth_model is not None:
            # heterogeneous interconnect (repro.platform.bandwidth); the
            # scalar `bandwidth` becomes the model's fallback for links
            # whose endpoints are not yet decided
            self.bandwidth_model = bandwidth_model
            self.bandwidth = float(bandwidth_model.default)
        else:
            from repro.platform.bandwidth import UniformBandwidth
            self.bandwidth_model = UniformBandwidth(bandwidth)
            self.bandwidth = float(bandwidth)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._procs)

    def __iter__(self) -> Iterator[Processor]:
        return iter(self._procs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Processor:
        return self._by_name[name]

    @property
    def processors(self) -> List[Processor]:
        return list(self._procs)

    @property
    def k(self) -> int:
        """Number of processors (the paper's ``k``)."""
        return len(self._procs)

    # ------------------------------------------------------------------
    def by_memory_desc(self) -> List[Processor]:
        """Processors sorted by decreasing memory (DagHetMem's packing order).

        Ties broken by decreasing speed, then by name, so the baseline is
        deterministic on clusters with repeated machine kinds.
        """
        return sorted(self._procs, key=lambda p: (-p.memory, -p.speed, p.name))

    def by_speed_desc(self) -> List[Processor]:
        """Processors sorted by decreasing speed (idle-processor moves, Step 4)."""
        return sorted(self._procs, key=lambda p: (-p.speed, -p.memory, p.name))

    def min_memory(self) -> float:
        return min(p.memory for p in self._procs)

    def max_memory(self) -> float:
        return max(p.memory for p in self._procs)

    def total_memory(self) -> float:
        return sum(p.memory for p in self._procs)

    def smallest_memory_processor(self) -> Processor:
        """``p_min`` of Algorithm 1, Line 14."""
        return min(self._procs, key=lambda p: (p.memory, -p.speed, p.name))

    def link_bandwidth(self, p=None, q=None) -> float:
        """Bandwidth of the link between ``p`` and ``q``.

        Either endpoint may be None (block not yet assigned): the model's
        conservative default is used, which keeps Step 3's *estimated*
        makespans well-defined exactly as the paper's speed-1 rule does
        for unassigned processor speeds.
        """
        if p is None or q is None:
            return self.bandwidth_model.default
        return self.bandwidth_model.between(p, q)

    def communication_time(self, volume: float, p=None, q=None) -> float:
        """Transfer time of ``volume`` data units between two processors."""
        return volume / self.link_bandwidth(p, q)

    def with_bandwidth(self, beta: float) -> "Cluster":
        """Copy of this cluster with a uniform bandwidth (CCR sweeps, Fig. 7)."""
        return Cluster(self._procs, bandwidth=beta, name=self.name)

    def with_bandwidth_model(self, model) -> "Cluster":
        """Copy of this cluster with a heterogeneous interconnect model."""
        return Cluster(self._procs, name=self.name, bandwidth_model=model)

    def scaled_memories(self, factor: float) -> "Cluster":
        """Copy with every memory multiplied by ``factor``.

        Used by the experiment harness to "increase memory sizes
        proportionally until the task with the biggest memory requirement
        still has a processor it could be executed on" (Section 5.1.2).
        """
        procs = [Processor(p.name, p.speed, p.memory * factor, p.kind) for p in self._procs]
        return Cluster(procs, name=f"{self.name}-mem{factor:g}x",
                       bandwidth_model=self.bandwidth_model)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible description; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "processors": [[p.name, float(p.speed), float(p.memory), p.kind]
                           for p in self._procs],
            "bandwidth": self.bandwidth_model.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Cluster":
        """Rebuild a cluster (processors + interconnect) from ``to_dict``."""
        from repro.platform.bandwidth import model_from_dict
        procs = [Processor(str(name), float(speed), float(memory), str(kind))
                 for name, speed, memory, kind in data["processors"]]
        return cls(procs, name=str(data.get("name", "cluster")),
                   bandwidth_model=model_from_dict(data["bandwidth"]))

    def __repr__(self) -> str:
        return (f"Cluster({self.name!r}, k={self.k}, beta={self.bandwidth:g}, "
                f"mem=[{self.min_memory():g}..{self.max_memory():g}])")
