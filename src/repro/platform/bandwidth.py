"""Heterogeneous interconnect bandwidths (the paper's stated future work).

The paper models a uniform bandwidth ``beta`` and concludes: "As future
work, we plan ... to add one more level of heterogeneity by considering
different communication bandwidths." This module implements that level:

* :class:`UniformBandwidth` — the paper's model (default everywhere);
* :class:`LinkBandwidth` — an explicit per-processor-pair matrix;
* :class:`GroupedBandwidth` — fast links inside a group, slow links
  between groups; models the "networks of compute clusters" the paper's
  introduction motivates (e.g. per-site interconnect vs WAN).

The makespan engine queries ``Cluster.link_bandwidth(p, q)``; blocks not
yet assigned to processors fall back to the cluster's scalar ``bandwidth``
so Step 3's estimated makespans remain well-defined.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from repro.platform.processor import Processor

ProcLike = Union[Processor, str]


def _name(p: ProcLike) -> str:
    return p.name if isinstance(p, Processor) else p


class BandwidthModel:
    """Base class: bandwidth of the link between two processors."""

    def between(self, p: ProcLike, q: ProcLike) -> float:
        raise NotImplementedError

    @property
    def default(self) -> float:
        """Bandwidth assumed for links whose endpoints are undecided."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible description; inverse of :func:`model_from_dict`."""
        raise NotImplementedError


class UniformBandwidth(BandwidthModel):
    """The paper's model: every link has bandwidth ``beta``."""

    def __init__(self, beta: float):
        if beta <= 0:
            raise ValueError(f"bandwidth must be positive, got {beta}")
        self._beta = float(beta)

    def between(self, p: ProcLike, q: ProcLike) -> float:
        return self._beta

    @property
    def default(self) -> float:
        return self._beta

    def to_dict(self) -> Dict[str, object]:
        return {"type": "uniform", "beta": self._beta}

    def __repr__(self) -> str:
        return f"UniformBandwidth({self._beta:g})"


class LinkBandwidth(BandwidthModel):
    """Explicit per-pair bandwidths with a fallback default.

    Pairs are unordered (the interconnect is symmetric); missing pairs use
    ``default_beta``.
    """

    def __init__(self, links: Mapping[Tuple[str, str], float], default_beta: float):
        if default_beta <= 0:
            raise ValueError("default bandwidth must be positive")
        self._links: Dict[frozenset, float] = {}
        for (a, b), beta in links.items():
            if a == b:
                raise ValueError(
                    f"self-link ({a}, {b}) is meaningless: same-processor "
                    f"transfers are free (between() returns inf)")
            if beta <= 0:
                raise ValueError(f"bandwidth of link ({a}, {b}) must be positive")
            self._links[frozenset((a, b))] = float(beta)
        self._default = float(default_beta)

    def between(self, p: ProcLike, q: ProcLike) -> float:
        a, b = _name(p), _name(q)
        if a == b:
            return float("inf")  # same processor: no transfer needed
        return self._links.get(frozenset((a, b)), self._default)

    @property
    def default(self) -> float:
        return self._default

    def to_dict(self) -> Dict[str, object]:
        links = sorted([*sorted(pair), beta]
                       for pair, beta in self._links.items())
        return {"type": "links", "default": self._default, "links": links}

    def __repr__(self) -> str:
        return f"LinkBandwidth({len(self._links)} links, default={self._default:g})"


class GroupedBandwidth(BandwidthModel):
    """Two-level interconnect: intra-group links fast, inter-group slow.

    ``groups`` maps processor name -> group label (e.g. site name). The
    scalar fallback (for estimated makespans of unassigned blocks) is the
    *inter*-group bandwidth — the conservative choice, mirroring the
    paper's overestimating makespan model.
    """

    def __init__(self, groups: Mapping[str, str], intra_beta: float,
                 inter_beta: float):
        if intra_beta <= 0 or inter_beta <= 0:
            raise ValueError("bandwidths must be positive")
        self._groups = dict(groups)
        self._intra = float(intra_beta)
        self._inter = float(inter_beta)

    def group_of(self, p: ProcLike) -> Optional[str]:
        return self._groups.get(_name(p))

    def between(self, p: ProcLike, q: ProcLike) -> float:
        a, b = _name(p), _name(q)
        if a == b:
            return float("inf")
        ga, gb = self._groups.get(a), self._groups.get(b)
        if ga is not None and ga == gb:
            return self._intra
        return self._inter

    @property
    def default(self) -> float:
        return self._inter

    def to_dict(self) -> Dict[str, object]:
        return {"type": "grouped", "groups": dict(self._groups),
                "intra": self._intra, "inter": self._inter}

    def __repr__(self) -> str:
        return (f"GroupedBandwidth(intra={self._intra:g}, inter={self._inter:g}, "
                f"{len(set(self._groups.values()))} groups)")


def model_from_dict(data: Mapping[str, object]) -> BandwidthModel:
    """Rebuild a bandwidth model from its ``to_dict`` form."""
    kind = data.get("type")
    if kind == "uniform":
        return UniformBandwidth(float(data["beta"]))
    if kind == "links":
        links = {(a, b): float(beta) for a, b, beta in data["links"]}
        return LinkBandwidth(links, float(data["default"]))
    if kind == "grouped":
        return GroupedBandwidth({str(k): str(v)
                                 for k, v in data["groups"].items()},
                                float(data["intra"]), float(data["inter"]))
    raise ValueError(f"unknown bandwidth model type {kind!r}; "
                     f"valid: uniform, links, grouped")
