"""Cluster presets reproducing Tables 2 and 3 of the paper.

Default cluster (Table 2): six machine kinds, ``n`` nodes of each kind
(``n = 6`` by default -> 36 processors; the paper also evaluates a *small*
cluster with 3 of each kind = 18 and a *large* one with 10 of each = 60).

Heterogeneity variants (Table 3): for **MoreHet**, the smaller half of
memories is halved and the bigger half doubled (same for speeds); for
**LessHet** the procedure is reversed, except the biggest memory stays at
192 "to make sure that the largest memory requirements of tasks can still
be met". **NoHet** uses only C2 machines.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.platform.cluster import Cluster
from repro.platform.processor import Processor

# (kind, speed GHz, memory GB) — Table 2.
MACHINE_KINDS: List[Tuple[str, float, float]] = [
    ("local", 4, 16),
    ("A1", 32, 32),
    ("A2", 6, 64),
    ("N1", 12, 16),
    ("N2", 8, 8),
    ("C2", 32, 192),
]

# Table 3, left (MoreHet): local*, A1*, A2*, N1*, N2*, C2*.
MACHINE_KINDS_MOREHET: List[Tuple[str, float, float]] = [
    ("local*", 2, 8),
    ("A1*", 64, 64),
    ("A2*", 3, 128),
    ("N1*", 24, 8),
    ("N2*", 4, 4),
    ("C2*", 64, 384),
]

# Table 3, right (LessHet): local', A1', A2', N1', N2', C2'.
MACHINE_KINDS_LESSHET: List[Tuple[str, float, float]] = [
    ("local'", 8, 64),
    ("A1'", 16, 64),
    ("A2'", 12, 128),
    ("N1'", 12, 64),
    ("N2'", 16, 32),
    ("C2'", 16, 192),
]


def _build(kinds: List[Tuple[str, float, float]], per_kind: int, bandwidth: float,
           name: str) -> Cluster:
    procs = [
        Processor(f"{kind}-{i}", speed, memory, kind=kind)
        for kind, speed, memory in kinds
        for i in range(per_kind)
    ]
    return Cluster(procs, bandwidth=bandwidth, name=name)


def default_cluster(per_kind: int = 6, bandwidth: float = 1.0) -> Cluster:
    """The 36-node default cluster of Table 2 (6 nodes of each kind)."""
    return _build(MACHINE_KINDS, per_kind, bandwidth, f"default-{per_kind * len(MACHINE_KINDS)}")


def small_cluster(bandwidth: float = 1.0) -> Cluster:
    """18 processors: 3 of each kind (Section 5.1.2, 'Small and large clusters')."""
    return _build(MACHINE_KINDS, 3, bandwidth, "small-18")


def large_cluster(bandwidth: float = 1.0) -> Cluster:
    """60 processors: 10 of each kind."""
    return _build(MACHINE_KINDS, 10, bandwidth, "large-60")


def morehet_cluster(per_kind: int = 6, bandwidth: float = 1.0) -> Cluster:
    """More heterogeneous cluster (Table 3, left)."""
    return _build(MACHINE_KINDS_MOREHET, per_kind, bandwidth, "morehet")


def lesshet_cluster(per_kind: int = 6, bandwidth: float = 1.0) -> Cluster:
    """Less heterogeneous cluster (Table 3, right)."""
    return _build(MACHINE_KINDS_LESSHET, per_kind, bandwidth, "lesshet")


def nohet_cluster(per_kind: int = 6, bandwidth: float = 1.0) -> Cluster:
    """Homogeneous cluster: every node is a C2 (Section 5.1.2)."""
    n = per_kind * len(MACHINE_KINDS)
    procs = [Processor(f"C2-{i}", 32, 192, kind="C2") for i in range(n)]
    return Cluster(procs, bandwidth=bandwidth, name="nohet")


CLUSTER_PRESETS = {
    "default": default_cluster,
    "small": small_cluster,
    "large": large_cluster,
    "morehet": morehet_cluster,
    "lesshet": lesshet_cluster,
    "nohet": nohet_cluster,
}


def cluster_by_name(name: str, bandwidth: float = 1.0) -> Cluster:
    """Look up a preset by name; raises ``KeyError`` with the valid names."""
    try:
        factory = CLUSTER_PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown cluster preset {name!r}; valid: {sorted(CLUSTER_PRESETS)}") from None
    return factory(bandwidth=bandwidth)
