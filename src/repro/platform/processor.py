"""A single processor with individual memory size and speed."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Processor:
    """One compute node of the heterogeneous system ``S``.

    Attributes
    ----------
    name:
        Unique identifier within a cluster (e.g. ``"C2-3"``).
    speed:
        Normalized CPU speed ``s_j``; executing task ``u`` takes
        ``w_u / s_j`` time units.
    memory:
        Memory size ``M_j`` in the same (normalized GB) unit as task memory
        weights and edge costs.
    kind:
        Machine-kind label from Table 2 (``local``, ``A1``, ... ``C2``);
        purely informational.
    """

    name: str
    speed: float
    memory: float
    kind: str = field(default="", compare=False)

    def __post_init__(self):
        if self.speed <= 0:
            raise ValueError(f"processor {self.name!r}: speed must be positive, got {self.speed}")
        if self.memory <= 0:
            raise ValueError(f"processor {self.name!r}: memory must be positive, got {self.memory}")

    def execution_time(self, work: float) -> float:
        """Time to run ``work`` operations on this processor."""
        return work / self.speed

    def fits(self, requirement: float) -> bool:
        """Whether a block with peak-memory ``requirement`` fits here."""
        return requirement <= self.memory
