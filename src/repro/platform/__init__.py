"""Execution environment model: heterogeneous clusters (Section 3.2).

A :class:`~repro.platform.cluster.Cluster` is a set of
:class:`~repro.platform.processor.Processor` objects, each with an
individual memory size ``M_j`` and speed ``s_j``, plus a uniform
interconnect bandwidth ``beta``. :mod:`repro.platform.presets` builds the
exact configurations of the paper's evaluation (Tables 2 and 3, plus the
small/large size variants).
"""

from repro.platform.processor import Processor
from repro.platform.bandwidth import (
    BandwidthModel,
    UniformBandwidth,
    LinkBandwidth,
    GroupedBandwidth,
)
from repro.platform.cluster import Cluster
from repro.platform.presets import (
    MACHINE_KINDS,
    MACHINE_KINDS_MOREHET,
    MACHINE_KINDS_LESSHET,
    default_cluster,
    small_cluster,
    large_cluster,
    morehet_cluster,
    lesshet_cluster,
    nohet_cluster,
    cluster_by_name,
    CLUSTER_PRESETS,
)

__all__ = [
    "Processor",
    "BandwidthModel",
    "UniformBandwidth",
    "LinkBandwidth",
    "GroupedBandwidth",
    "Cluster",
    "MACHINE_KINDS",
    "MACHINE_KINDS_MOREHET",
    "MACHINE_KINDS_LESSHET",
    "default_cluster",
    "small_cluster",
    "large_cluster",
    "morehet_cluster",
    "lesshet_cluster",
    "nohet_cluster",
    "cluster_by_name",
    "CLUSTER_PRESETS",
]
