"""repro.api — the public scheduling surface.

One stable entry point for every consumer (CLI, experiment harness,
examples, future serving layers):

>>> from repro.api import ScheduleRequest, solve
>>> result = solve(ScheduleRequest(workflow=wf, cluster=cluster,
...                                algorithm="daghetpart"))
>>> result.makespan, result.k_prime, result.failure

* :mod:`repro.api.registry` — ``@register_algorithm`` plus name
  resolution; algorithms declare their name, config dataclass, and
  capabilities, and every entry point dispatches through it;
* :mod:`repro.api.envelopes` — frozen ``ScheduleRequest`` /
  ``ScheduleResult`` envelopes with structured ``FailureInfo`` and JSON
  round-tripping;
* :mod:`repro.api.batch` — ``solve(request)`` and
  ``solve_batch(requests, parallel=N)`` (deterministic parallel merge);
* :mod:`repro.api.schedulers` — the paper's two built-in algorithms.
"""

from repro.api.envelopes import (
    FailureInfo,
    ScheduleRequest,
    ScheduleResult,
    SchedulerOutput,
)
from repro.api.registry import (
    AlgorithmInfo,
    Scheduler,
    algorithm_infos,
    available_algorithms,
    canonical_name,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.api import schedulers as _builtin_schedulers  # noqa: F401  (registers)
from repro.api.batch import (
    PARALLEL_ENV,
    resolve_parallel,
    solve,
    solve_batch,
)
from repro.core.heuristic import SweepPoint

__all__ = [
    "AlgorithmInfo",
    "FailureInfo",
    "PARALLEL_ENV",
    "Scheduler",
    "SchedulerOutput",
    "ScheduleRequest",
    "ScheduleResult",
    "SweepPoint",
    "algorithm_infos",
    "available_algorithms",
    "canonical_name",
    "get_algorithm",
    "register_algorithm",
    "resolve_parallel",
    "solve",
    "solve_batch",
    "unregister_algorithm",
]
