"""repro.api — the public scheduling surface.

One stable entry point for every consumer (CLI, experiment harness,
examples, future serving layers):

>>> from repro.api import ScheduleRequest, solve
>>> result = solve(ScheduleRequest(workflow=wf, cluster=cluster,
...                                algorithm="daghetpart"))
>>> result.makespan, result.k_prime, result.failure

* :mod:`repro.api.registry` — ``@register_algorithm`` plus name
  resolution; algorithms declare their name, config dataclass, and
  capabilities, and every entry point dispatches through it;
* :mod:`repro.api.envelopes` — frozen ``ScheduleRequest`` /
  ``ScheduleResult`` envelopes with structured ``FailureInfo`` and JSON
  round-tripping;
* :mod:`repro.api.batch` — ``solve(request)``,
  ``solve_batch(requests, parallel=N)`` (deterministic parallel merge)
  and the streaming ``iter_solve_batch`` it is built on;
* :mod:`repro.api.scenario` — declarative ``ScenarioSpec`` (JSON-round-
  trippable experiment grids) with ``expand``/``run_scenario``;
* :mod:`repro.api.cache` — fingerprint-keyed on-disk ``ResultCache``
  (resume instead of recompute);
* :mod:`repro.api.schedulers` — the built-in algorithms: the paper's two
  plus the memory-oblivious HEFT-style list scheduler, the
  simulated-annealing refiner (``anneal``), and the best-of-N
  ``portfolio`` meta-scheduler.
"""

from repro.api.envelopes import (
    FailureInfo,
    ScheduleRequest,
    ScheduleResult,
    SchedulerOutput,
)
from repro.api.registry import (
    AlgorithmInfo,
    Scheduler,
    algorithm_infos,
    available_algorithms,
    canonical_name,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.api.schedulers import PortfolioConfig  # noqa: F401  (also registers)
from repro.api.batch import (
    PARALLEL_ENV,
    iter_solve_batch,
    resolve_parallel,
    solve,
    solve_batch,
)
from repro.api.cache import (
    CacheBackend,
    ResultCache,
    describe_cache,
    open_cache,
    request_fingerprint,
)
from repro.api.diff import diff_results, format_diff, load_result_lines
from repro.api.exec import (
    BACKEND_ENV,
    ExecutionBackend,
    ExecutionPolicy,
    QueueBackend,
    available_backends,
    create_backend,
    get_backend,
    register_backend,
    route,
    run_worker,
    solve_with_policy,
    unregister_backend,
)
from repro.api.scenario import (
    AlgorithmSpec,
    ExecutionSpec,
    FamilyGridSource,
    FileWorkflowSource,
    PlatformAxis,
    RealWorkflowSource,
    ScenarioSpec,
    TemplateWorkflowSource,
    collect_scenario,
    expand,
    load_scenario,
    run_scenario,
    save_scenario,
)
from repro.core.anneal import AnnealConfig
from repro.core.exact import ExactConfig
from repro.core.heuristic import SweepPoint

__all__ = [
    "AlgorithmInfo",
    "AlgorithmSpec",
    "AnnealConfig",
    "BACKEND_ENV",
    "CacheBackend",
    "ExactConfig",
    "ExecutionBackend",
    "ExecutionPolicy",
    "ExecutionSpec",
    "FailureInfo",
    "FamilyGridSource",
    "FileWorkflowSource",
    "PARALLEL_ENV",
    "PlatformAxis",
    "PortfolioConfig",
    "QueueBackend",
    "RealWorkflowSource",
    "ResultCache",
    "ScenarioSpec",
    "Scheduler",
    "SchedulerOutput",
    "ScheduleRequest",
    "ScheduleResult",
    "SweepPoint",
    "TemplateWorkflowSource",
    "algorithm_infos",
    "available_algorithms",
    "available_backends",
    "canonical_name",
    "collect_scenario",
    "create_backend",
    "describe_cache",
    "diff_results",
    "expand",
    "format_diff",
    "get_algorithm",
    "get_backend",
    "iter_solve_batch",
    "load_result_lines",
    "load_scenario",
    "open_cache",
    "register_algorithm",
    "register_backend",
    "request_fingerprint",
    "resolve_parallel",
    "route",
    "run_scenario",
    "run_worker",
    "save_scenario",
    "solve",
    "solve_batch",
    "solve_with_policy",
    "unregister_algorithm",
    "unregister_backend",
]
