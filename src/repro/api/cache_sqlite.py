"""SQLite cache backend: one ``.db`` file, transactional crash safety.

Where the JSONL :class:`~repro.api.cache.ResultCache` gets its crash
tolerance from line framing (torn tail skipped on load, repaired on the
next write), :class:`SqliteResultCache` gets the same guarantee from the
SQLite journal: every ``put`` is its own committed transaction, so a
process killed mid-write leaves the database at the last commit — no
repair pass, no in-memory offset index to rebuild on open. That makes it
the backend of choice for large sweeps (million-entry caches open in
constant time) and for sharing one cache file between sequential runs.

Selected by URI through :func:`repro.api.cache.open_cache`:
``sqlite:///abs/path.db`` or ``sqlite://relative.db``. The single-writer
contract of the batch façade (results are written from the batch parent,
not from workers) carries over unchanged.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Optional

from repro.api.cache import CacheBackend
from repro.api.envelopes import ScheduleResult

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fp TEXT PRIMARY KEY,
    result TEXT NOT NULL
)
"""


class SqliteResultCache(CacheBackend):
    """Fingerprint-keyed :class:`ScheduleResult` store in one SQLite file.

    Passes the same behavioural suite as the JSONL backend (retag-on-hit,
    dedupe-on-put, reopen-after-crash) through the shared
    :class:`~repro.api.cache.CacheBackend` contract.
    """

    kind = "sqlite"

    def __init__(self, path: str):
        super().__init__()
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # check_same_thread=False: the thread execution backend may drive
        # the batch loop from a worker thread; writes still come from one
        # thread at a time (single-writer contract)
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        # WAL keeps readers unblocked during the per-put commits and
        # survives crashes without a repair pass
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(_SCHEMA)
        self._conn.commit()

    @property
    def location(self) -> str:
        return self.path

    def put(self, fingerprint: str, result: ScheduleResult) -> None:
        """Record a freshly computed result; duplicates are ignored.

        Overrides the base implementation to skip its ``in self``
        pre-check: ``INSERT OR IGNORE`` already dedupes, so one
        round-trip per put instead of two (a million-request sweep saves
        a million SELECTs).
        """
        self._write(fingerprint, result)

    # -- storage hooks --------------------------------------------------
    def _read(self, fingerprint: str) -> Optional[ScheduleResult]:
        row = self._conn.execute(
            "SELECT result FROM results WHERE fp = ?", (fingerprint,)
        ).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except ValueError:  # defensive: unreadable payload = miss
            return None
        return ScheduleResult.from_dict(payload)

    def _write(self, fingerprint: str, result: ScheduleResult) -> None:
        # committed per put: a crash between puts loses at most nothing,
        # a crash mid-put is rolled back by the journal
        self._conn.execute(
            "INSERT OR IGNORE INTO results (fp, result) VALUES (?, ?)",
            (fingerprint, json.dumps(result.to_dict(), sort_keys=True)))
        self._conn.commit()

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def __contains__(self, fingerprint: str) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM results WHERE fp = ?", (fingerprint,)
        ).fetchone() is not None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
