"""SQLite cache backend: one ``.db`` file, transactional crash safety.

Where the JSONL :class:`~repro.api.cache.ResultCache` gets its crash
tolerance from line framing (torn tail skipped on load, repaired on the
next write), :class:`SqliteResultCache` gets the same guarantee from the
SQLite journal: every ``put`` is its own committed transaction, so a
process killed mid-write leaves the database at the last commit — no
repair pass, no in-memory offset index to rebuild on open. That makes it
the backend of choice for large sweeps (million-entry caches open in
constant time) and for sharing one cache file between sequential runs.

Selected by URI through :func:`repro.api.cache.open_cache`:
``sqlite:///abs/path.db`` or ``sqlite://relative.db``. Unlike the JSONL
backend, this store is safe for *concurrent* use: every operation on the
shared connection is serialized through the :class:`CacheBackend` RLock
(service dispatcher threads, the thread execution backend), and WAL plus
a generous busy timeout let several *processes* — queue-backend workers
sharing one zero-solve cache file — read and commit against the same
database without "database is locked" failures.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Optional

from repro.api.cache import CacheBackend
from repro.api.envelopes import ScheduleResult

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fp TEXT PRIMARY KEY,
    result TEXT NOT NULL
)
"""

#: how long a blocked connection waits for another process's commit
#: before giving up (seconds); applied both as the connect timeout and
#: as PRAGMA busy_timeout
_BUSY_TIMEOUT_S = 30.0


class SqliteResultCache(CacheBackend):
    """Fingerprint-keyed :class:`ScheduleResult` store in one SQLite file.

    Passes the same behavioural suite as the JSONL backend (retag-on-hit,
    dedupe-on-put, reopen-after-crash) through the shared
    :class:`~repro.api.cache.CacheBackend` contract.
    """

    kind = "sqlite"

    def __init__(self, path: str):
        super().__init__()
        self.path = str(path)
        if not self.path:
            raise ValueError(
                "SqliteResultCache needs a database path; got an empty "
                "location (pass a path or a sqlite:///PATH.db URI)")
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # check_same_thread=False so the service dispatcher and the
        # thread/queue execution backends can share one open cache; every
        # connection use below is serialized through the CacheBackend
        # RLock — sqlite3 objects are not safe under concurrent
        # execute/commit even when the module is "serialized" threadsafe
        self._conn = sqlite3.connect(self.path, check_same_thread=False,
                                     timeout=_BUSY_TIMEOUT_S)
        with self._lock:
            # WAL keeps readers unblocked during the per-put commits and
            # survives crashes without a repair pass; the busy timeout
            # makes concurrent *processes* (queue workers sharing one
            # cache file) wait out each other's commits instead of
            # raising "database is locked"
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(
                f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT_S * 1000)}")
            self._conn.execute(_SCHEMA)
            self._conn.commit()

    @property
    def location(self) -> str:
        return self.path

    def put(self, fingerprint: str, result: ScheduleResult) -> None:
        """Record a freshly computed result; duplicates are ignored.

        Overrides the base implementation to skip its ``in self``
        pre-check: ``INSERT OR IGNORE`` already dedupes, so one
        round-trip per put instead of two (a million-request sweep saves
        a million SELECTs).
        """
        with self._lock:
            self._write(fingerprint, result)

    # -- storage hooks (callers hold self._lock via get/put; the direct
    # entry points below take it themselves — it is reentrant) ----------
    def _read(self, fingerprint: str) -> Optional[ScheduleResult]:
        with self._lock:
            row = self._conn.execute(
                "SELECT result FROM results WHERE fp = ?", (fingerprint,)
            ).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except ValueError:  # defensive: unreadable payload = miss
            return None
        return ScheduleResult.from_dict(payload)

    def _write(self, fingerprint: str, result: ScheduleResult) -> None:
        # committed per put: a crash between puts loses at most nothing,
        # a crash mid-put is rolled back by the journal
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO results (fp, result) VALUES (?, ?)",
                (fingerprint, json.dumps(result.to_dict(), sort_keys=True)))
            self._conn.commit()

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return self._conn.execute(
                "SELECT 1 FROM results WHERE fp = ?", (fingerprint,)
            ).fetchone() is not None

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
