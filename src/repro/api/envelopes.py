"""Frozen request/result envelopes of the public scheduling API.

A :class:`ScheduleRequest` says *what* to solve (workflow, cluster,
algorithm name, config, scaling/validation knobs); a
:class:`ScheduleResult` says *what happened* — the mapping, makespan,
wall-clock runtime, the winning ``k'`` with its per-``k'`` sweep trace,
and a structured :class:`FailureInfo` instead of a swallowed exception.

Results are JSON round-trippable (:meth:`ScheduleResult.to_json` /
:meth:`ScheduleResult.from_json`) so batch runs can be persisted and
re-aggregated without re-scheduling. The live :class:`Mapping` object is
the one field that does not survive serialization (it holds the full
workflow and cluster); everything the experiment metrics need does.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping as TMapping, Optional, Tuple

from repro.core.heuristic import SweepPoint
from repro.core.mapping import Mapping
from repro.platform.cluster import Cluster
from repro.utils import errors as _errors
from repro.workflow.graph import Workflow

def _tupled(value: Any) -> Any:
    """Recursively turn JSON lists back into the tuples frozen configs use.

    Shared by every config-rehydration path (request ``from_dict`` here,
    ``AlgorithmSpec.build_config`` in :mod:`repro.api.scenario`).
    """
    if isinstance(value, list):
        return tuple(_tupled(v) for v in value)
    return value


#: exception classes a FailureInfo can be rehydrated into
_FAILURE_KINDS = {
    cls.__name__: cls
    for cls in (
        _errors.ReproError,
        _errors.CyclicWorkflowError,
        _errors.ExecutionTimeoutError,
        _errors.InvalidPartitionError,
        _errors.NoFeasibleMappingError,
        _errors.PartitionSplitError,
    )
}
#: the execution-layer failure kind (not an exception class name): a
#: request exceeded its ExecutionPolicy.timeout_s on some backend
_FAILURE_KINDS["timeout"] = _errors.ExecutionTimeoutError


@dataclass(frozen=True)
class FailureInfo:
    """Why a run failed: exception kind, message, and unplaced work."""

    kind: str  # exception class name, e.g. "NoFeasibleMappingError"
    message: str
    unplaced_tasks: int = 0

    @classmethod
    def from_exception(cls, exc: BaseException) -> "FailureInfo":
        return cls(kind=type(exc).__name__, message=str(exc),
                   unplaced_tasks=int(getattr(exc, "unplaced_tasks", 0)))

    def to_exception(self) -> _errors.ReproError:
        """Rehydrate the recorded failure as a raisable exception."""
        if self.kind == "NoFeasibleMappingError":
            return _errors.NoFeasibleMappingError(
                self.message, unplaced_tasks=self.unplaced_tasks)
        if self.kind == "CyclicWorkflowError":
            return _errors.CyclicWorkflowError(message=self.message)
        return _FAILURE_KINDS.get(self.kind, _errors.ReproError)(self.message)

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass(frozen=True)
class ScheduleRequest:
    """One scheduling problem for :func:`repro.api.solve`.

    ``config`` is the algorithm's own config object (``DagHetPartConfig``
    for the built-in heuristic; algorithms that take no config ignore it).
    ``scale_memory`` applies the paper's proportional memory scaling so
    the largest task fits somewhere (the synthetic-corpus rule; off by
    default for direct API calls). ``want_mapping=False`` drops the live
    :class:`Mapping` from the result — batch runs over large corpora use
    this to keep worker→parent transfers small. ``tags`` travel to the
    result untouched (instance/family metadata, user correlation ids).
    ``policy`` is an optional
    :class:`~repro.api.exec.policy.ExecutionPolicy` (per-request timeout,
    retries, backoff) enforced by every execution backend; like ``tags``
    it is an execution knob, excluded from the result-cache fingerprint.
    """

    workflow: Workflow
    cluster: Cluster
    algorithm: str = "daghetpart"
    config: Optional[Any] = None
    scale_memory: bool = False
    validate: bool = False
    want_mapping: bool = True
    tags: TMapping[str, Any] = field(default_factory=dict)
    policy: Optional[Any] = None

    def __post_init__(self):
        if self.policy is None:
            return
        # accept a plain policy dict (the spec-file idiom) but normalize
        # at construction — a bad policy must fail here, not as an opaque
        # AttributeError inside a backend worker
        from repro.api.exec.policy import ExecutionPolicy
        if isinstance(self.policy, ExecutionPolicy):
            return
        if isinstance(self.policy, TMapping):
            object.__setattr__(self, "policy",
                               ExecutionPolicy.from_dict(self.policy))
            return
        raise TypeError(
            f"policy must be an ExecutionPolicy, a mapping of its fields, "
            f"or None; got {type(self.policy).__name__}")

    # ------------------------------------------------------------------
    # JSON round trip (requests are fully serializable: workflow weights,
    # cluster + interconnect, config fields — so a request grid can be
    # shipped to another process or archived next to its results)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict of the complete request.

        ``config`` must be ``None`` or a dataclass instance (every
        registered ``config_cls`` is one); anything else raises
        ``TypeError`` — explicit rejection instead of a lossy repr.
        """
        import dataclasses

        from repro.workflow.io import workflow_to_dict

        if self.config is None:
            config = None
        elif dataclasses.is_dataclass(self.config) \
                and not isinstance(self.config, type):
            config = {"type": type(self.config).__name__,
                      "fields": dataclasses.asdict(self.config)}
        else:
            raise TypeError(
                f"cannot serialize config of type "
                f"{type(self.config).__name__}; expected None or a dataclass")
        return {
            "workflow": workflow_to_dict(self.workflow),
            "cluster": self.cluster.to_dict(),
            "algorithm": self.algorithm,
            "config": config,
            "scale_memory": self.scale_memory,
            "validate": self.validate,
            "want_mapping": self.want_mapping,
            "tags": dict(self.tags),
            "policy": None if self.policy is None else self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: TMapping[str, Any]) -> "ScheduleRequest":
        """Inverse of :meth:`to_dict`; config rebuilt via the registry."""
        from repro.api.registry import get_algorithm
        from repro.workflow.io import workflow_from_dict

        algorithm = data.get("algorithm", "daghetpart")
        config = None
        stored = data.get("config")
        if stored is not None:
            config_cls = get_algorithm(algorithm).config_cls
            if config_cls is None or config_cls.__name__ != stored["type"]:
                expected = "no config" if config_cls is None \
                    else config_cls.__name__
                raise ValueError(
                    f"algorithm {algorithm!r} takes {expected}, but the "
                    f"stored request carries a {stored['type']!r}")
            config = config_cls(**{k: _tupled(v)
                                   for k, v in stored["fields"].items()})
        policy = data.get("policy")
        if policy is not None:
            from repro.api.exec.policy import ExecutionPolicy
            policy = ExecutionPolicy.from_dict(policy)
        return cls(
            workflow=workflow_from_dict(data["workflow"]),
            cluster=Cluster.from_dict(data["cluster"]),
            algorithm=algorithm,
            config=config,
            scale_memory=bool(data.get("scale_memory", False)),
            validate=bool(data.get("validate", False)),
            want_mapping=bool(data.get("want_mapping", True)),
            tags=dict(data.get("tags", {})),
            policy=policy,
        )

    def to_json(self) -> str:
        """Deterministic strict JSON; non-finite floats are rejected."""
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleRequest":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SchedulerOutput:
    """What a registered :class:`~repro.api.registry.Scheduler` returns.

    Algorithms without a ``k'`` sweep leave ``k_prime``/``sweep`` at their
    defaults; the façade fills in timing, failure capture, and envelope
    metadata around this. ``extra`` carries algorithm-specific outcome
    metadata (the portfolio's winner, the annealer's seed makespan); the
    façade surfaces it as ``ScheduleResult.extra``, so it survives JSON
    round-trips and cache hits without mixing into the caller's ``tags``.
    Values must be JSON-serializable and finite.
    """

    mapping: Mapping
    k_prime: Optional[int] = None
    sweep: Tuple[SweepPoint, ...] = ()
    extra: TMapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one solve: envelope around a mapping or a failure."""

    algorithm: str  # display name, e.g. "DagHetPart"
    workflow: str  # workflow name
    n_tasks: int
    cluster: str  # cluster name actually used (after memory scaling)
    bandwidth: float
    makespan: float  # inf when the run failed
    runtime: float  # wall-clock seconds of the scheduling algorithm
    n_blocks: int  # 0 when the run failed
    k_prime: Optional[int] = None  # winning k' (sweep algorithms only)
    sweep: Tuple[SweepPoint, ...] = ()
    failure: Optional[FailureInfo] = None
    tags: TMapping[str, Any] = field(default_factory=dict)
    #: algorithm-reported outcome metadata (``SchedulerOutput.extra``):
    #: the portfolio's winner, the annealer's seed makespan. Determined
    #: by the computation — unlike ``tags``, which belong to the caller —
    #: so cache hits keep the stored ``extra`` while retagging.
    extra: TMapping[str, Any] = field(default_factory=dict)
    #: the live mapping; never serialized, None after from_json or when
    #: the request asked for want_mapping=False
    mapping: Optional[Mapping] = field(default=None, compare=False, repr=False)

    @property
    def success(self) -> bool:
        return self.failure is None

    def raise_if_failed(self) -> "ScheduleResult":
        """Raise the recorded failure (back-compat with raising APIs)."""
        if self.failure is not None:
            raise self.failure.to_exception()
        return self

    def without_mapping(self) -> "ScheduleResult":
        """A copy with the live mapping dropped (cheap to pickle/store)."""
        return replace(self, mapping=None)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict of everything except the live mapping.

        The ``+inf`` makespan of a failed run becomes ``null`` so the
        output is strict RFC 8259 JSON (no ``Infinity`` literal, which
        jq/JavaScript parsers reject); :meth:`from_dict` restores it.
        ``nan``/``-inf`` makespans have no failed-run meaning to restore,
        so they are rejected with ``ValueError`` rather than silently
        rehydrated as ``+inf`` (any other non-finite float in the
        envelope is likewise rejected, by ``allow_nan=False`` at dump
        time).
        """
        if not math.isfinite(self.makespan) and self.makespan != math.inf:
            raise ValueError(
                f"cannot serialize makespan {self.makespan!r}: only finite "
                f"values or +inf (failed run) are representable")
        return {
            "algorithm": self.algorithm,
            "workflow": self.workflow,
            "n_tasks": self.n_tasks,
            "cluster": self.cluster,
            "bandwidth": self.bandwidth,
            "makespan": self.makespan if math.isfinite(self.makespan) else None,
            "runtime": self.runtime,
            "n_blocks": self.n_blocks,
            "k_prime": self.k_prime,
            "sweep": [{"k_prime": p.k_prime, "makespan": p.makespan,
                       "status": p.status} for p in self.sweep],
            "failure": None if self.failure is None else {
                "kind": self.failure.kind,
                "message": self.failure.message,
                "unplaced_tasks": self.failure.unplaced_tasks,
            },
            "tags": dict(self.tags),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: TMapping[str, Any]) -> "ScheduleResult":
        failure = data.get("failure")
        makespan = data["makespan"]
        return cls(
            algorithm=data["algorithm"],
            workflow=data["workflow"],
            n_tasks=int(data["n_tasks"]),
            cluster=data["cluster"],
            bandwidth=float(data["bandwidth"]),
            makespan=float("inf") if makespan is None else float(makespan),
            runtime=float(data["runtime"]),
            n_blocks=int(data["n_blocks"]),
            k_prime=data.get("k_prime"),
            sweep=tuple(SweepPoint(p["k_prime"], p["makespan"], p["status"])
                        for p in data.get("sweep", ())),
            failure=None if failure is None else FailureInfo(
                kind=failure["kind"], message=failure["message"],
                unplaced_tasks=int(failure.get("unplaced_tasks", 0))),
            tags=dict(data.get("tags", {})),
            extra=dict(data.get("extra", {})),
        )

    def to_json(self) -> str:
        """Deterministic strict JSON (sorted keys); inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleResult":
        return cls.from_dict(json.loads(text))
