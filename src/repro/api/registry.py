"""Algorithm registry — the single dispatch point for scheduler names.

Every algorithm the library can run is registered exactly once with
:func:`register_algorithm`; the CLI, the experiment runner, and the
``schedule()`` back-compat shim all resolve names through
:func:`get_algorithm` instead of carrying their own ``if algorithm ==``
chains. Registering a new heuristic therefore makes it available to every
entry point at once:

>>> @register_algorithm("greedy-cp", summary="critical-path greedy")
... class GreedyCP:
...     def run(self, workflow, cluster, config=None):
...         return SchedulerOutput(mapping=...)

Names are canonicalized (case, ``-``/``_``/spaces ignored), so
``"DagHetPart"``, ``"dag-het-part"`` and ``"daghetpart"`` resolve to the
same entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.api.envelopes import SchedulerOutput
from repro.core.mapping import Mapping
from repro.platform.cluster import Cluster
from repro.workflow.graph import Workflow


@runtime_checkable
class Scheduler(Protocol):
    """The one method an algorithm must implement.

    ``run`` maps the workflow onto the cluster and returns a
    :class:`SchedulerOutput`; infeasibility is reported by raising
    :class:`~repro.utils.errors.NoFeasibleMappingError` (the façade turns
    it into a structured :class:`~repro.api.envelopes.FailureInfo`).
    """

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[Any] = None) -> SchedulerOutput:
        ...


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registry entry: the scheduler plus its self-description."""

    name: str  # canonical key, e.g. "daghetpart"
    display_name: str  # e.g. "DagHetPart" (used in records/reports)
    scheduler: Scheduler
    config_cls: Optional[type] = None  # the algorithm's config dataclass
    capabilities: FrozenSet[str] = frozenset()
    summary: str = ""


_REGISTRY: Dict[str, AlgorithmInfo] = {}


def canonical_name(name: str) -> str:
    """Normalize an algorithm name: lowercase, drop ``-``/``_``/spaces."""
    if not isinstance(name, str):
        raise TypeError(f"algorithm name must be a str, got {type(name).__name__}")
    return "".join(ch for ch in name.lower() if ch not in "-_ ")


class _FunctionScheduler:
    """Adapter so plain ``f(workflow, cluster, config)`` callables register."""

    def __init__(self, fn: Callable[..., Any]):
        self._fn = fn

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[Any] = None) -> SchedulerOutput:
        out = self._fn(workflow, cluster, config)
        if isinstance(out, SchedulerOutput):
            return out
        if isinstance(out, Mapping):
            return SchedulerOutput(mapping=out)
        raise TypeError(
            f"registered function {self._fn!r} must return a SchedulerOutput "
            f"or Mapping, got {type(out).__name__}")


def register_algorithm(name: str, *, display_name: Optional[str] = None,
                       config_cls: Optional[type] = None,
                       capabilities: Iterable[str] = (),
                       summary: str = ""):
    """Class/function decorator adding an algorithm to the registry.

    Accepts a :class:`Scheduler` class (instantiated once), an object with
    a ``run`` method, or a plain callable ``f(workflow, cluster, config)``
    returning a :class:`SchedulerOutput` or bare ``Mapping``. Duplicate
    names (after canonicalization) are rejected.
    """
    key = canonical_name(name)
    if not key:
        raise ValueError(f"algorithm name {name!r} is empty after canonicalization")

    def decorator(obj):
        scheduler: Any = obj() if isinstance(obj, type) else obj
        if not callable(getattr(scheduler, "run", None)):
            scheduler = _FunctionScheduler(scheduler)
        if key in _REGISTRY:
            raise ValueError(
                f"algorithm {name!r} already registered "
                f"(as {_REGISTRY[key].display_name!r}); use unregister_algorithm "
                f"first to replace it")
        _REGISTRY[key] = AlgorithmInfo(
            name=key,
            display_name=display_name or name,
            scheduler=scheduler,
            config_cls=config_cls,
            capabilities=frozenset(capabilities),
            summary=summary,
        )
        return obj

    return decorator


def unregister_algorithm(name: str) -> None:
    """Remove an entry (plugin teardown / tests); unknown names are a no-op."""
    _REGISTRY.pop(canonical_name(name), None)


def available_algorithms() -> Tuple[str, ...]:
    """Sorted canonical names of every registered algorithm."""
    return tuple(sorted(_REGISTRY))


def algorithm_infos() -> Tuple[AlgorithmInfo, ...]:
    """Every registry entry, sorted by canonical name."""
    return tuple(_REGISTRY[k] for k in available_algorithms())


def get_algorithm(name: str) -> AlgorithmInfo:
    """Resolve a (canonicalized) name; unknown names list the valid ones."""
    info = _REGISTRY.get(canonical_name(name))
    if info is None:
        valid = ", ".join(available_algorithms()) or "(none registered)"
        raise ValueError(f"unknown algorithm {name!r}; available: {valid}")
    return info
