"""Declarative scenarios: one JSON spec → request grid → streamed results.

A :class:`ScenarioSpec` names an experiment the way the paper's evaluation
does — a cross-product of workflow sources (generator-family grids,
real-world models, workflow files), platform axes (cluster presets swept
over bandwidths and memory scalings), and an algorithm grid with
per-algorithm configs. The spec is frozen and JSON-round-trippable
(:meth:`ScenarioSpec.to_json` / :meth:`ScenarioSpec.from_json`), so every
workload is a file, not a Python driver:

>>> spec = ScenarioSpec(
...     name="bandwidth-study",
...     workflows=(FamilyGridSource(families=("bwa", "soykb"),
...                                 sizes=(300,), seed=5),),
...     platforms=(PlatformAxis(preset="default",
...                             bandwidths=(0.1, 0.5, 1.0, 2.0, 5.0)),),
...     algorithms=(AlgorithmSpec("daghetmem"),
...                 AlgorithmSpec("daghetpart",
...                               config={"k_prime_strategy": "doubling"})),
... )
>>> for result in run_scenario(spec):  # doctest: +SKIP
...     ...

:func:`expand` lazily compiles the cross-product into tagged
:class:`~repro.api.envelopes.ScheduleRequest` envelopes — workflows are
generated one at a time, so the grid is never materialised.
:func:`run_scenario` streams the requests through
:func:`~repro.api.batch.iter_solve_batch`, optionally consulting an
on-disk :class:`~repro.api.cache.ResultCache` so re-runs and crashed
sweeps resume instead of recompute.

The expansion order is deterministic: workflow sources in spec order,
instances in source order, then platforms × bandwidths × memory factors ×
algorithms — with a single platform entry this is exactly the
instance-major, algorithm-minor order of the classic corpus runner, so a
scenario reproduces the figure drivers' records bit-for-bit (modulo the
measured ``runtime``).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping as TMapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.batch import ProgressHook, iter_solve_batch
from repro.api.cache import CacheBackend, open_cache
from repro.api.envelopes import ScheduleRequest, ScheduleResult, _tupled
from repro.api.exec.policy import ExecutionPolicy
from repro.api.registry import get_algorithm
from repro.sim.events import DynamicsSpec


def _listed(value: Any) -> Any:
    """Recursively turn tuples into JSON lists (serialization hygiene)."""
    if isinstance(value, tuple):
        return [_listed(v) for v in value]
    return value


# ----------------------------------------------------------------------
# Workflow sources
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FamilyGridSource:
    """A grid of synthetic workflows: families × sizes × replications.

    ``families=None`` means every generator family; ``sizes=None`` resolves
    the corpus sizes (``REPRO_FULL``/``REPRO_SCALE``-aware) at expansion
    time, a mapping is per-category task counts, and a plain sequence of
    ints becomes the single category ``"custom"``. Per-instance seeds are
    derived exactly as the evaluation corpus derives them
    (``seed + stable_hash(f"{family}:{n}")``); ``replications > 1`` adds
    shifted-seed repeats whose instance names carry a ``#r<i>`` suffix.
    """

    kind = "families"

    families: Optional[Tuple[str, ...]] = None
    sizes: Optional[Any] = None  # None | {category: (n, ...)} | (n, ...)
    seed: int = 0
    replications: int = 1
    work_factor: float = 1.0

    def __post_init__(self):
        if self.families is not None:
            object.__setattr__(self, "families", tuple(self.families))
        sizes = self.sizes
        if sizes is not None:
            if isinstance(sizes, TMapping):
                sizes = {str(cat): tuple(int(n) for n in counts)
                         for cat, counts in sizes.items()}
            else:
                sizes = {"custom": tuple(int(n) for n in sizes)}
            object.__setattr__(self, "sizes", sizes)
        if self.replications < 1:
            raise ValueError(f"replications must be >= 1, got {self.replications}")

    def resolved_sizes(self) -> Dict[str, Tuple[int, ...]]:
        if self.sizes is not None:
            return dict(self.sizes)
        from repro.experiments.instances import synthetic_sizes
        return synthetic_sizes()

    def resolved_families(self) -> Tuple[str, ...]:
        if self.families is not None:
            return self.families
        from repro.generators.families import WORKFLOW_FAMILIES
        return tuple(WORKFLOW_FAMILIES)

    def count(self) -> int:
        n_sizes = sum(len(c) for c in self.resolved_sizes().values())
        return len(self.resolved_families()) * n_sizes * self.replications

    def instances(self) -> Iterator["Instance"]:
        from repro.experiments.instances import Instance, seed_base
        from repro.generators.families import generate_workflow
        from repro.utils.rng import stable_hash

        base = seed_base(self.seed)
        sizes = self.resolved_sizes()
        for rep in range(self.replications):
            suffix = "" if rep == 0 else f"#r{rep}"
            for family in self.resolved_families():
                for category, counts in sizes.items():
                    for n in counts:
                        inst_seed = (base + rep
                                     + stable_hash(f"{family}:{n}")) % (2 ** 31)
                        wf = generate_workflow(family, n, seed=inst_seed,
                                               work_factor=self.work_factor)
                        yield Instance(name=f"{family}-{n}{suffix}",
                                       family=family, category=category,
                                       n_tasks_requested=n, workflow=wf)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "families": _listed(self.families),
                "sizes": None if self.sizes is None else
                {cat: list(counts) for cat, counts in self.sizes.items()},
                "seed": self.seed,
                "replications": self.replications,
                "work_factor": self.work_factor}


@dataclass(frozen=True)
class RealWorkflowSource:
    """The real-world-like workflow models (``names=None`` = all five)."""

    kind = "real"

    names: Optional[Tuple[str, ...]] = None
    seed: int = 0
    work_factor: float = 1.0

    def __post_init__(self):
        if self.names is not None:
            object.__setattr__(self, "names", tuple(self.names))

    def resolved_names(self) -> Tuple[str, ...]:
        if self.names is not None:
            return self.names
        from repro.generators.realworld import REAL_WORKFLOW_NAMES
        return tuple(REAL_WORKFLOW_NAMES)

    def count(self) -> int:
        return len(self.resolved_names())

    def instances(self) -> Iterator["Instance"]:
        from repro.experiments.instances import Instance
        from repro.generators.realworld import generate_real_workflow

        for name in self.resolved_names():
            yield Instance(
                name=name, family=name, category="real", n_tasks_requested=0,
                workflow=generate_real_workflow(name, seed=self.seed,
                                                work_factor=self.work_factor))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "names": _listed(self.names),
                "seed": self.seed, "work_factor": self.work_factor}


def _checked(wf, checksum: Optional[str], path: str):
    """Enforce a pinned content hash on an ingested workflow."""
    if checksum:
        from repro.ingest import workflow_fingerprint

        actual = workflow_fingerprint(wf)
        if actual != checksum:
            raise ValueError(
                f"{path}: workflow checksum mismatch — expected {checksum}, "
                f"ingested {actual} (the file changed since it was pinned)")
    return wf


@dataclass(frozen=True)
class FileWorkflowSource:
    """One workflow ingested from a file in any registered format.

    ``format=None`` sniffs the content (see
    :func:`repro.ingest.detect_format`); ``checksum`` pins the ingested
    workflow's :func:`~repro.ingest.workflow_fingerprint`, so a silently
    edited trace fails the run instead of poisoning a cached sweep.
    """

    kind = "file"

    path: str = ""
    format: Optional[str] = None
    checksum: Optional[str] = None
    category: str = "file"
    family: Optional[str] = None  # defaults to the loaded workflow's name

    def __post_init__(self):
        if not self.path:
            raise ValueError("FileWorkflowSource needs a path")

    def count(self) -> int:
        return 1

    def instances(self) -> Iterator["Instance"]:
        from repro.experiments.instances import Instance
        from repro.ingest import ingest_path

        wf = _checked(ingest_path(self.path, fmt=self.format),
                      self.checksum, self.path)
        yield Instance(name=wf.name, family=self.family or wf.name,
                       category=self.category, n_tasks_requested=wf.n_tasks,
                       workflow=wf)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "path": self.path, "format": self.format,
                "checksum": self.checksum, "category": self.category,
                "family": self.family}


def _plain(value: Any) -> Any:
    """Recursively undo ``_tupled``: template data must stay plain JSON."""
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, TMapping):
        return {k: _plain(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class TemplateWorkflowSource:
    """A workflow template rendered against data, then ingested.

    ``data`` is the inline substitution mapping; ``data_path`` loads it
    from a JSON file instead (exactly one may be given when the template
    uses variables). ``checksum`` pins the rendered workflow's content
    hash, same as :class:`FileWorkflowSource`.
    """

    kind = "template"

    path: str = ""
    data: Optional[Dict[str, Any]] = None
    data_path: Optional[str] = None
    name: Optional[str] = None
    checksum: Optional[str] = None
    category: str = "template"
    family: Optional[str] = None

    def __post_init__(self):
        if not self.path:
            raise ValueError("TemplateWorkflowSource needs a path")
        if self.data is not None and self.data_path is not None:
            raise ValueError("give either data or data_path, not both")
        if self.data is not None:
            object.__setattr__(self, "data", _plain(self.data))

    def count(self) -> int:
        return 1

    def _resolved_data(self) -> Dict[str, Any]:
        if self.data_path is not None:
            with open(self.data_path, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            if not isinstance(loaded, dict):
                raise ValueError(
                    f"{self.data_path}: template data must be a JSON object")
            return loaded
        return self.data or {}

    def instances(self) -> Iterator["Instance"]:
        from repro.experiments.instances import Instance
        from repro.ingest import ingest_path

        wf = _checked(
            ingest_path(self.path, fmt="template", name=self.name,
                        data=self._resolved_data()),
            self.checksum, self.path)
        yield Instance(name=wf.name, family=self.family or wf.name,
                       category=self.category, n_tasks_requested=wf.n_tasks,
                       workflow=wf)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "path": self.path, "data": self.data,
                "data_path": self.data_path, "name": self.name,
                "checksum": self.checksum, "category": self.category,
                "family": self.family}


WorkflowSource = Union[FamilyGridSource, RealWorkflowSource,
                       FileWorkflowSource, TemplateWorkflowSource]

_SOURCE_KINDS = {cls.kind: cls for cls in
                 (FamilyGridSource, RealWorkflowSource, FileWorkflowSource,
                  TemplateWorkflowSource)}


def source_from_dict(data: TMapping[str, Any]) -> WorkflowSource:
    """Rebuild a workflow source from its ``to_dict`` form."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _SOURCE_KINDS.get(kind)
    if cls is None:
        valid = ", ".join(sorted(_SOURCE_KINDS))
        raise ValueError(f"unknown workflow source kind {kind!r}; valid: {valid}")
    return cls(**{k: _tupled(v) for k, v in data.items()})


# ----------------------------------------------------------------------
# Platform and algorithm axes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlatformAxis:
    """One cluster preset swept over bandwidths and memory scalings.

    ``memory_factors`` multiply every processor memory (1.0 = the preset
    as-is), giving the "how much memory would we need" sweep; the paper's
    proportional per-workflow scaling rule is the separate, spec-level
    ``scale_memory`` knob.
    """

    preset: str = "default"
    bandwidths: Tuple[float, ...] = (1.0,)
    memory_factors: Tuple[float, ...] = (1.0,)

    def __post_init__(self):
        object.__setattr__(self, "bandwidths",
                           tuple(float(b) for b in self.bandwidths))
        object.__setattr__(self, "memory_factors",
                           tuple(float(f) for f in self.memory_factors))
        if not self.bandwidths or not self.memory_factors:
            raise ValueError("bandwidths and memory_factors must be non-empty")

    def count(self) -> int:
        return len(self.bandwidths) * len(self.memory_factors)

    def clusters(self) -> Iterator[Tuple["Cluster", float, float]]:
        """(cluster, bandwidth, memory_factor) for every axis point."""
        from repro.platform.presets import cluster_by_name

        for beta in self.bandwidths:
            base = cluster_by_name(self.preset, bandwidth=beta)
            for factor in self.memory_factors:
                cluster = base if factor == 1.0 else base.scaled_memories(factor)
                yield cluster, beta, factor

    def to_dict(self) -> Dict[str, Any]:
        return {"preset": self.preset, "bandwidths": list(self.bandwidths),
                "memory_factors": list(self.memory_factors)}


@dataclass(frozen=True)
class AlgorithmSpec:
    """One algorithm of the grid, with its (JSON) config fields.

    ``config`` may be given as the algorithm's config dataclass instance —
    it is normalised to a plain field dict so the spec stays serializable;
    at expansion time the dict is instantiated back through the registry's
    ``config_cls``.
    """

    name: str = "daghetpart"
    config: Optional[TMapping[str, Any]] = None

    def __post_init__(self):
        config = self.config
        if config is not None:
            if dataclasses.is_dataclass(config) and not isinstance(config, type):
                config = dataclasses.asdict(config)
            config = {str(k): _listed(v) for k, v in dict(config).items()}
            object.__setattr__(self, "config", config)

    def build_config(self) -> Optional[Any]:
        info = get_algorithm(self.name)  # raises on unknown names
        if self.config is None:
            return None
        if info.config_cls is None:
            raise ValueError(
                f"algorithm {self.name!r} takes no config, but the scenario "
                f"provides one: {dict(self.config)!r}")
        return info.config_cls(**{k: _tupled(v) for k, v in self.config.items()})

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name,
                "config": None if self.config is None else dict(self.config)}


#: the paper's algorithm pairing — the default grid
DEFAULT_ALGORITHMS = (AlgorithmSpec("daghetmem"), AlgorithmSpec("daghetpart"))


# ----------------------------------------------------------------------
# Execution block
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionSpec:
    """How a scenario wants to be executed (all fields optional).

    ``backend`` names a registered execution backend (``serial`` /
    ``thread`` / ``process``); ``parallel`` is the worker count
    (``-1`` = all CPUs); ``policy`` is the per-request
    :class:`~repro.api.exec.policy.ExecutionPolicy` attached to every
    expanded request; ``cache`` is a default cache URI
    (``sqlite:///path.db``, ``jsonl://dir``, or a plain directory).
    Everything here is a *default* — explicit ``run_scenario`` arguments
    and CLI flags override it, and :func:`~repro.api.exec.routing.route`
    still applies when ``backend`` is left unset.
    """

    backend: Optional[str] = None
    parallel: Optional[int] = None
    policy: Optional[ExecutionPolicy] = None
    cache: Optional[str] = None

    def __post_init__(self):
        if self.backend is not None:
            from repro.api.exec.backends import get_backend
            object.__setattr__(self, "backend", get_backend(self.backend).name)
        if self.parallel is not None:
            object.__setattr__(self, "parallel", int(self.parallel))
        if self.policy is not None and not isinstance(self.policy,
                                                     ExecutionPolicy):
            object.__setattr__(self, "policy",
                               ExecutionPolicy.from_dict(dict(self.policy)))

    def to_dict(self) -> Dict[str, Any]:
        return {"backend": self.backend,
                "parallel": self.parallel,
                "policy": None if self.policy is None else
                self.policy.to_dict(),
                "cache": self.cache}

    @classmethod
    def from_dict(cls, data: TMapping[str, Any]) -> "ExecutionSpec":
        known = {"backend", "parallel", "policy", "cache"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown execution field(s) {sorted(unknown)}; "
                f"valid: {sorted(known)}")
        return cls(**{k: data[k] for k in known if k in data})


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, frozen description of one experiment sweep.

    ``tags`` are templates: every string value is ``str.format``-ted per
    request with the expansion context (``scenario``, ``instance``,
    ``family``, ``category``, ``n_tasks``, ``preset``, ``bandwidth``,
    ``memory_factor``, ``algorithm``), so ``{"series": "{family}@{bandwidth}"}``
    labels each result without a Python driver. Non-string values pass
    through untouched.
    """

    name: str
    workflows: Tuple[WorkflowSource, ...]
    platforms: Tuple[PlatformAxis, ...] = (PlatformAxis(),)
    algorithms: Tuple[AlgorithmSpec, ...] = DEFAULT_ALGORITHMS
    tags: TMapping[str, Any] = field(default_factory=dict)
    scale_memory: bool = True
    validate: bool = False
    description: str = ""
    #: optional execution defaults (backend, workers, per-request policy,
    #: cache URI); explicit run_scenario/CLI arguments override it
    execution: Optional[ExecutionSpec] = None
    #: optional dynamics block (perturbation models + reaction policy);
    #: set, the spec runs through ``repro simulate`` /
    #: :func:`repro.sim.runner.run_dynamic_scenario`
    dynamics: Optional[DynamicsSpec] = None

    def __post_init__(self):
        if not self.workflows:
            raise ValueError("a scenario needs at least one workflow source")
        object.__setattr__(self, "workflows", tuple(self.workflows))
        object.__setattr__(self, "platforms", tuple(self.platforms))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        if not self.platforms:
            raise ValueError("a scenario needs at least one platform axis")
        if not self.algorithms:
            raise ValueError("a scenario needs at least one algorithm")

    # ------------------------------------------------------------------
    def size(self) -> int:
        """Number of requests :func:`expand` will yield (cheap; no workflows
        are generated)."""
        instances = sum(src.count() for src in self.workflows)
        platform_points = sum(axis.count() for axis in self.platforms)
        return instances * platform_points * len(self.algorithms)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "workflows": [src.to_dict() for src in self.workflows],
            "platforms": [axis.to_dict() for axis in self.platforms],
            "algorithms": [alg.to_dict() for alg in self.algorithms],
            "tags": dict(self.tags),
            "scale_memory": self.scale_memory,
            "validate": self.validate,
            "execution": None if self.execution is None else
            self.execution.to_dict(),
            "dynamics": None if self.dynamics is None else
            self.dynamics.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: TMapping[str, Any]) -> "ScenarioSpec":
        execution = data.get("execution")
        if execution is not None:
            execution = ExecutionSpec.from_dict(execution)
        dynamics = data.get("dynamics")
        if dynamics is not None and not isinstance(dynamics, DynamicsSpec):
            dynamics = DynamicsSpec.from_dict(dynamics)
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            workflows=tuple(source_from_dict(s) for s in data["workflows"]),
            platforms=tuple(PlatformAxis(**{k: _tupled(v) for k, v in p.items()})
                            for p in data.get("platforms", [{}])),
            algorithms=tuple(AlgorithmSpec(**{k: _tupled(v) if k != "config" else v
                                              for k, v in a.items()})
                             for a in data.get("algorithms",
                                               [{"name": "daghetmem"},
                                                {"name": "daghetpart"}])),
            tags=dict(data.get("tags", {})),
            scale_memory=bool(data.get("scale_memory", True)),
            validate=bool(data.get("validate", False)),
            execution=execution,
            dynamics=dynamics,
        )

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


def save_scenario(spec: ScenarioSpec, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spec.to_json() + "\n")


def load_scenario(path: str) -> ScenarioSpec:
    with open(path, "r", encoding="utf-8") as fh:
        return ScenarioSpec.from_json(fh.read())


# ----------------------------------------------------------------------
# Expansion and execution
# ----------------------------------------------------------------------
def _format_tags(templates: TMapping[str, Any],
                 context: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in templates.items():
        if isinstance(value, str):
            try:
                out[key] = value.format(**context)
            except KeyError as exc:
                valid = ", ".join(sorted(context))
                raise KeyError(
                    f"tag template {key!r} = {value!r} references unknown "
                    f"field {exc.args[0]!r}; available: {valid}") from None
        else:
            out[key] = value
    return out


def expand(spec: ScenarioSpec) -> Iterator[ScheduleRequest]:
    """Lazily compile the spec's cross-product into tagged requests.

    Workflows are generated one instance at a time and shared across the
    platform × algorithm inner grid; nothing is accumulated, so the
    iterator runs at constant memory regardless of grid size.
    """
    # resolve the algorithm grid and platform points once (also validates
    # names/presets eagerly, before any workflow is generated)
    algorithms = [(alg, get_algorithm(alg.name).display_name,
                   alg.build_config())
                  for alg in spec.algorithms]
    platforms = [(axis, tuple(axis.clusters())) for axis in spec.platforms]
    policy = spec.execution.policy if spec.execution is not None else None
    for source in spec.workflows:
        for inst in source.instances():
            for axis, points in platforms:
                for cluster, beta, factor in points:
                    for alg, display_name, config in algorithms:
                        context = {
                            "scenario": spec.name,
                            "instance": inst.name,
                            "family": inst.family,
                            "category": inst.category,
                            "n_tasks": inst.n_tasks,
                            "preset": axis.preset,
                            "bandwidth": beta,
                            "memory_factor": factor,
                            # display name, matching ScheduleResult.algorithm
                            "algorithm": display_name,
                        }
                        tags = {"instance": inst.name, "family": inst.family,
                                "category": inst.category,
                                "n_tasks": inst.n_tasks}
                        tags.update(_format_tags(spec.tags, context))
                        yield ScheduleRequest(
                            workflow=inst.workflow,
                            cluster=cluster,
                            algorithm=alg.name,
                            config=config,
                            scale_memory=spec.scale_memory,
                            validate=spec.validate,
                            want_mapping=False,
                            tags=tags,
                            policy=policy,
                        )


def run_scenario(spec: ScenarioSpec,
                 parallel: Optional[int] = None,
                 cache: Union[None, str, CacheBackend] = None,
                 progress: Optional[ProgressHook] = None,
                 window: Optional[int] = None,
                 backend: Optional[str] = None) -> Iterator[ScheduleResult]:
    """Stream the scenario's results in expansion order.

    ``cache`` is a cache URI (``sqlite:///path.db``, ``jsonl://dir``, or
    a plain directory path) or an open
    :class:`~repro.api.cache.CacheBackend`; previously computed requests
    are served from it without a ``solve`` call, and fresh results are
    appended as they complete, so an interrupted sweep resumes for free.
    ``parallel``/``progress``/``window``/``backend`` behave as in
    :func:`~repro.api.batch.iter_solve_batch`. Arguments left at ``None``
    fall back to the spec's ``execution`` block before the usual
    environment defaults apply.
    """
    execution = spec.execution
    if execution is not None:
        if parallel is None:
            parallel = execution.parallel
        if backend is None:
            backend = execution.backend
        if cache is None:
            cache = execution.cache
    own_cache = isinstance(cache, str)
    store = open_cache(cache) if own_cache else cache
    try:
        yield from iter_solve_batch(expand(spec), parallel=parallel,
                                    progress=progress, cache=store,
                                    window=window, backend=backend)
    finally:
        if own_cache:
            store.close()


def collect_scenario(spec: ScenarioSpec,
                     parallel: Optional[int] = None,
                     cache: Union[None, str, CacheBackend] = None,
                     progress: Optional[ProgressHook] = None,
                     backend: Optional[str] = None) -> List[ScheduleResult]:
    """:func:`run_scenario`, materialised (small grids / tests)."""
    return list(run_scenario(spec, parallel=parallel, cache=cache,
                             progress=progress, backend=backend))
