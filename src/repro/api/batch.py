"""``solve`` / ``solve_batch`` — one code path for serial and parallel runs.

:func:`solve` executes one :class:`ScheduleRequest` end to end: registry
lookup, optional memory scaling, timed algorithm run, failure capture into
a :class:`FailureInfo`, optional validation, envelope assembly.

:func:`solve_batch` runs many requests, optionally fanned out over worker
processes; results come back merged deterministically into the input
order, so apart from the measured ``runtime`` fields a parallel batch is
identical to a serial one. This is the machinery the corpus runner used to
carry privately — serial CLI calls and parallel experiment sweeps now go
through the same façade.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, List, Optional, Tuple

from repro.api.envelopes import FailureInfo, ScheduleRequest, ScheduleResult
from repro.api.registry import get_algorithm
from repro.utils.errors import ReproError

#: environment default for ``solve_batch(parallel=None)``; 0 = serial
PARALLEL_ENV = "REPRO_PARALLEL"

#: called after each request completes: (index, request, result)
ProgressHook = Callable[[int, ScheduleRequest, ScheduleResult], None]


def solve(request: ScheduleRequest) -> ScheduleResult:
    """Run one request; failures come back structured, never raised.

    Only algorithm failures (:class:`ReproError` subclasses — the paper's
    "platform too small" outcomes) are captured into
    ``ScheduleResult.failure``; programming errors (unknown algorithm
    name, wrong config type) raise immediately.
    """
    info = get_algorithm(request.algorithm)  # raises on unknown names

    cluster = request.cluster
    if request.scale_memory:
        # lazy: repro.experiments imports repro.api at package load
        from repro.experiments.instances import scaled_cluster_for
        cluster = scaled_cluster_for(request.workflow, cluster)

    failure: Optional[FailureInfo] = None
    output = None
    sweep: Tuple = ()
    start = time.perf_counter()
    try:
        output = info.scheduler.run(request.workflow, cluster, request.config)
    except ReproError as exc:
        failure = FailureInfo.from_exception(exc)
        sweep = tuple(getattr(exc, "sweep", ()))
    runtime = time.perf_counter() - start

    mapping = output.mapping if output is not None else None
    if mapping is not None and request.validate:
        mapping.validate()

    return ScheduleResult(
        algorithm=info.display_name,
        workflow=request.workflow.name,
        n_tasks=request.workflow.n_tasks,
        cluster=cluster.name,
        bandwidth=cluster.bandwidth,
        makespan=mapping.makespan() if mapping is not None else float("inf"),
        runtime=runtime,
        n_blocks=mapping.n_blocks if mapping is not None else 0,
        k_prime=output.k_prime if output is not None else None,
        sweep=tuple(output.sweep) if output is not None else sweep,
        failure=failure,
        tags=dict(request.tags),
        mapping=mapping if request.want_mapping else None,
    )


def resolve_parallel(parallel: Optional[int]) -> int:
    """Normalize the ``parallel`` knob to a worker count (0/1 = serial).

    ``None`` reads :data:`PARALLEL_ENV`; negative values mean "all
    available CPUs".
    """
    if parallel is None:
        try:
            parallel = int(os.environ.get(PARALLEL_ENV, "0"))
        except ValueError:
            parallel = 0
    if parallel < 0:
        parallel = os.cpu_count() or 1
    return parallel


def _worker(payload: Tuple[int, ScheduleRequest]) -> Tuple[int, ScheduleResult]:
    """Top-level worker (must be picklable): one request, one result."""
    index, request = payload
    return index, solve(request)


def solve_batch(requests: Iterable[ScheduleRequest],
                parallel: Optional[int] = None,
                progress: Optional[ProgressHook] = None) -> List[ScheduleResult]:
    """Run every request; results are returned in the input order.

    ``parallel`` > 1 distributes requests over that many worker processes
    (``None`` consults the ``REPRO_PARALLEL`` environment variable, ``-1``
    uses every CPU). The fork start method shares the already-built
    requests — and any custom algorithms registered before the call — with
    the workers; where fork is unavailable the default start method is
    used, which requires registrations to happen at import time.
    ``progress`` is called in the parent once per completed request.
    """
    requests = list(requests)
    workers = min(resolve_parallel(parallel), len(requests))
    if workers <= 1 or len(requests) <= 1:
        results: List[ScheduleResult] = []
        for index, request in enumerate(requests):
            result = solve(request)
            results.append(result)
            if progress is not None:
                progress(index, request, result)
        return results

    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    by_index: dict = {}
    with ctx.Pool(processes=workers) as pool:
        payloads = list(enumerate(requests))
        for index, result in pool.imap_unordered(_worker, payloads):
            by_index[index] = result
            if progress is not None:
                progress(index, requests[index], result)
    return [by_index[i] for i in range(len(requests))]
