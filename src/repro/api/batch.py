"""``solve`` / ``solve_batch`` — one code path for serial and parallel runs.

:func:`solve` executes one :class:`ScheduleRequest` end to end: registry
lookup, optional memory scaling, timed algorithm run, failure capture into
a :class:`FailureInfo`, optional validation, envelope assembly.

:func:`iter_solve_batch` streams results back in request order while
keeping only a bounded window of requests in flight, so arbitrarily large
sweeps (scenario cross-products, million-request corpora) never
materialise all requests or results at once; it optionally consults a
:class:`~repro.api.cache.ResultCache` so repeated sweeps are served from
disk instead of recomputed.

:func:`solve_batch` is the list-returning façade over the same iterator;
results come back merged deterministically into the input order, so apart
from the measured ``runtime`` fields a parallel batch is identical to a
serial one. This is the machinery the corpus runner used to carry
privately — serial CLI calls and parallel experiment sweeps now go
through the same façade.
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.api.envelopes import FailureInfo, ScheduleRequest, ScheduleResult
from repro.api.registry import get_algorithm
from repro.utils.errors import ReproError

#: environment default for ``solve_batch(parallel=None)``; 0 = serial
PARALLEL_ENV = "REPRO_PARALLEL"

#: called after each request completes: (index, request, result)
ProgressHook = Callable[[int, ScheduleRequest, ScheduleResult], None]


def solve(request: ScheduleRequest) -> ScheduleResult:
    """Run one request; failures come back structured, never raised.

    Only algorithm failures (:class:`ReproError` subclasses — the paper's
    "platform too small" outcomes) are captured into
    ``ScheduleResult.failure``; programming errors (unknown algorithm
    name, wrong config type) raise immediately.
    """
    info = get_algorithm(request.algorithm)  # raises on unknown names

    cluster = request.cluster
    if request.scale_memory:
        # lazy: repro.experiments imports repro.api at package load
        from repro.experiments.instances import scaled_cluster_for
        cluster = scaled_cluster_for(request.workflow, cluster)

    failure: Optional[FailureInfo] = None
    output = None
    sweep: Tuple = ()
    start = time.perf_counter()
    try:
        output = info.scheduler.run(request.workflow, cluster, request.config)
    except ReproError as exc:
        failure = FailureInfo.from_exception(exc)
        sweep = tuple(getattr(exc, "sweep", ()))
    runtime = time.perf_counter() - start

    mapping = output.mapping if output is not None else None
    if mapping is not None and request.validate:
        mapping.validate()

    return ScheduleResult(
        algorithm=info.display_name,
        workflow=request.workflow.name,
        n_tasks=request.workflow.n_tasks,
        cluster=cluster.name,
        bandwidth=cluster.bandwidth,
        makespan=mapping.makespan() if mapping is not None else float("inf"),
        runtime=runtime,
        n_blocks=mapping.n_blocks if mapping is not None else 0,
        k_prime=output.k_prime if output is not None else None,
        sweep=tuple(output.sweep) if output is not None else sweep,
        failure=failure,
        tags=dict(request.tags),
        extra=dict(output.extra) if output is not None else {},
        mapping=mapping if request.want_mapping else None,
    )


def resolve_parallel(parallel: Optional[int]) -> int:
    """Normalize the ``parallel`` knob to a worker count (0/1 = serial).

    ``None`` reads :data:`PARALLEL_ENV`; negative values mean "all
    available CPUs".
    """
    if parallel is None:
        raw = os.environ.get(PARALLEL_ENV, "0")
        try:
            parallel = int(raw)
        except ValueError:
            warnings.warn(
                f"ignoring unparsable {PARALLEL_ENV}={raw!r} (expected an "
                f"integer worker count); running serially",
                RuntimeWarning, stacklevel=2)
            parallel = 0
    if parallel < 0:
        parallel = os.cpu_count() or 1
    return parallel


def _worker(payload: Tuple[int, ScheduleRequest]) -> Tuple[int, ScheduleResult]:
    """Top-level worker (must be picklable): one request, one result."""
    index, request = payload
    return index, solve(request)


def _lookup(cache, request: ScheduleRequest):
    """(fingerprint, cached result) for a request; (None, None) when not cacheable.

    Requests that want the live mapping back are never served from cache —
    the mapping does not survive serialization, so a hit would silently
    downgrade the result.
    """
    if cache is None or request.want_mapping:
        return None, None
    fingerprint = cache.fingerprint(request)
    return fingerprint, cache.get(fingerprint, request)


def iter_solve_batch(requests: Iterable[ScheduleRequest],
                     parallel: Optional[int] = None,
                     progress: Optional[ProgressHook] = None,
                     cache=None,
                     window: Optional[int] = None) -> Iterator[ScheduleResult]:
    """Stream results back in request order, never holding the whole batch.

    ``requests`` may be any iterable — including a lazy generator over a
    scenario cross-product; it is consumed incrementally, with at most
    ``window`` requests (default ``4 x workers``) in flight at a time, so
    million-request sweeps stay at constant memory. ``parallel`` behaves
    as in :func:`solve_batch`. ``progress`` is called in the parent, in
    request order, as each result is yielded.

    ``cache`` is an optional :class:`repro.api.cache.ResultCache`:
    requests whose fingerprint is already stored are served from disk
    without a ``solve`` call (their ``tags`` are taken from the incoming
    request, not the stored result), and every freshly computed result is
    appended to the cache before being yielded — a crashed sweep resumes
    where it stopped. Requests with ``want_mapping=True`` bypass the
    cache, because the live mapping cannot be rehydrated from disk.
    """
    workers = resolve_parallel(parallel)
    if workers <= 1:
        for index, request in enumerate(requests):
            fingerprint, result = _lookup(cache, request)
            if result is None:
                result = solve(request)
                if fingerprint is not None:
                    cache.put(fingerprint, result)
            if progress is not None:
                progress(index, request, result)
            yield result
        return

    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    window = max(int(window or 4 * workers), workers)
    # entries are (index, request, fingerprint, ready result | None, future | None)
    pending: deque = deque()
    inflight = 0
    with ctx.Pool(processes=workers) as pool:
        for index, request in enumerate(requests):
            fingerprint, hit = _lookup(cache, request)
            if hit is not None:
                pending.append((index, request, fingerprint, hit, None))
            else:
                future = pool.apply_async(_worker, ((index, request),))
                pending.append((index, request, fingerprint, None, future))
                inflight += 1
            # drain: cached heads stream immediately; a future head is only
            # waited on once the in-flight window (or the pending queue,
            # when cache hits pile up behind a slow miss) is full
            while pending and (pending[0][4] is None or inflight >= window
                               or len(pending) >= 4 * window):
                idx, req, fp, result, future = pending.popleft()
                if future is not None:
                    _, result = future.get()
                    inflight -= 1
                    if fp is not None:
                        cache.put(fp, result)
                if progress is not None:
                    progress(idx, req, result)
                yield result
        while pending:
            idx, req, fp, result, future = pending.popleft()
            if future is not None:
                _, result = future.get()
                inflight -= 1
                if fp is not None:
                    cache.put(fp, result)
            if progress is not None:
                progress(idx, req, result)
            yield result


def solve_batch(requests: Iterable[ScheduleRequest],
                parallel: Optional[int] = None,
                progress: Optional[ProgressHook] = None,
                cache=None) -> List[ScheduleResult]:
    """Run every request; results are returned in the input order.

    ``parallel`` > 1 distributes requests over that many worker processes
    (``None`` consults the ``REPRO_PARALLEL`` environment variable, ``-1``
    uses every CPU). The fork start method shares the already-built
    requests — and any custom algorithms registered before the call — with
    the workers; where fork is unavailable the default start method is
    used, which requires registrations to happen at import time.
    ``progress`` is called in the parent, in request order, once per
    request. ``cache`` is forwarded to :func:`iter_solve_batch`.
    """
    requests = list(requests)
    workers = min(resolve_parallel(parallel), len(requests))
    return list(iter_solve_batch(requests, parallel=workers,
                                 progress=progress, cache=cache))
