"""``solve`` / ``solve_batch`` — thin façades over pluggable execution backends.

:func:`solve` executes one :class:`ScheduleRequest` end to end: registry
lookup, optional memory scaling, timed algorithm run, failure capture into
a :class:`FailureInfo`, optional validation, envelope assembly.

:func:`iter_solve_batch` streams results back in request order while
keeping only a bounded window of requests in flight, so arbitrarily large
sweeps (scenario cross-products, million-request corpora) never
materialise all requests or results at once. *Where* the requests run is
delegated to an :class:`~repro.api.exec.backends.ExecutionBackend`
(``serial`` / ``thread`` / ``process``, or a registered plugin), chosen
per batch by :func:`~repro.api.exec.routing.route` — explicit
``backend=`` override, then ``REPRO_BACKEND``, then algorithm metadata.
Per-request :class:`~repro.api.exec.policy.ExecutionPolicy` (timeout,
retries) is enforced by the backend, so a timed-out request yields a
structured ``FailureInfo(kind="timeout")`` instead of hanging the sweep.

The façade optionally consults a :class:`~repro.api.cache.CacheBackend`
so repeated sweeps are served from disk instead of recomputed; when no
cache is attached, no fingerprint is ever computed (fingerprinting hashes
the whole workflow — pure overhead on cache-less runs; see
``benchmarks/test_batch_overhead.py`` for the guard).

:func:`solve_batch` is the list-returning façade over the same iterator;
results come back merged deterministically into the input order, so apart
from the measured ``runtime`` fields a parallel batch is identical to a
serial one — and identical *across backends*.
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from itertools import chain
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.api.envelopes import FailureInfo, ScheduleRequest, ScheduleResult
from repro.api.registry import get_algorithm
from repro.utils.errors import ReproError

#: environment default for ``solve_batch(parallel=None)``; 0 = serial
PARALLEL_ENV = "REPRO_PARALLEL"

#: called after each request completes: (index, request, result)
ProgressHook = Callable[[int, ScheduleRequest, ScheduleResult], None]


def solve(request: ScheduleRequest) -> ScheduleResult:
    """Run one request; failures come back structured, never raised.

    Only algorithm failures (:class:`ReproError` subclasses — the paper's
    "platform too small" outcomes) are captured into
    ``ScheduleResult.failure``; programming errors (unknown algorithm
    name, wrong config type) raise immediately. The request's
    ``ExecutionPolicy`` is *not* enforced here — that is the backend's
    job (:func:`repro.api.exec.backends.solve_with_policy`).
    """
    info = get_algorithm(request.algorithm)  # raises on unknown names

    cluster = request.cluster
    if request.scale_memory:
        # lazy: repro.experiments imports repro.api at package load
        from repro.experiments.instances import scaled_cluster_for
        cluster = scaled_cluster_for(request.workflow, cluster)

    failure: Optional[FailureInfo] = None
    output = None
    sweep: Tuple = ()
    start = time.perf_counter()
    try:
        output = info.scheduler.run(request.workflow, cluster, request.config)
    except ReproError as exc:
        failure = FailureInfo.from_exception(exc)
        sweep = tuple(getattr(exc, "sweep", ()))
    runtime = time.perf_counter() - start

    mapping = output.mapping if output is not None else None
    if mapping is not None and request.validate:
        mapping.validate()

    return ScheduleResult(
        algorithm=info.display_name,
        workflow=request.workflow.name,
        n_tasks=request.workflow.n_tasks,
        cluster=cluster.name,
        bandwidth=cluster.bandwidth,
        makespan=mapping.makespan() if mapping is not None else float("inf"),
        runtime=runtime,
        n_blocks=mapping.n_blocks if mapping is not None else 0,
        k_prime=output.k_prime if output is not None else None,
        sweep=tuple(output.sweep) if output is not None else sweep,
        failure=failure,
        tags=dict(request.tags),
        extra=dict(output.extra) if output is not None else {},
        mapping=mapping if request.want_mapping else None,
    )


def resolve_parallel(parallel: Optional[int]) -> int:
    """Normalize the ``parallel`` knob to a worker count (0/1 = serial).

    ``None`` reads :data:`PARALLEL_ENV`; negative values mean "all
    available CPUs".
    """
    if parallel is None:
        raw = os.environ.get(PARALLEL_ENV, "0")
        try:
            parallel = int(raw)
        except ValueError:
            warnings.warn(
                f"ignoring unparsable {PARALLEL_ENV}={raw!r} (expected an "
                f"integer worker count); running serially",
                RuntimeWarning, stacklevel=2)
            parallel = 0
    if parallel < 0:
        parallel = os.cpu_count() or 1
    return parallel


def _fingerprint(cache, request: ScheduleRequest) -> Optional[str]:
    """The request's cache fingerprint, or ``None`` when not cacheable.

    The ``cache is None`` fast path must stay first: fingerprinting hashes
    the entire workflow and cluster, and a cache-less run must never pay
    for it. Requests that want the live mapping back are never served from
    cache either — the mapping does not survive serialization, so a hit
    would silently downgrade the result.
    """
    if cache is None or request.want_mapping:
        return None
    return cache.fingerprint(request)


def _cacheable(result: ScheduleResult) -> bool:
    """Timeouts are execution artifacts (machine/load-dependent), not
    outcomes of the computation — caching one would poison every later
    sweep with a failure that might not reproduce."""
    return result.failure is None or result.failure.kind != "timeout"


def iter_solve_batch(requests: Iterable[ScheduleRequest],
                     parallel: Optional[int] = None,
                     progress: Optional[ProgressHook] = None,
                     cache=None,
                     window: Optional[int] = None,
                     backend: Optional[str] = None) -> Iterator[ScheduleResult]:
    """Stream results back in request order, never holding the whole batch.

    ``requests`` may be any iterable — including a lazy generator over a
    scenario cross-product; it is consumed incrementally, with at most
    ``window`` requests (default ``4 x workers``) in flight at a time, so
    million-request sweeps stay at constant memory. ``parallel`` behaves
    as in :func:`solve_batch`. ``progress`` is called in the parent, in
    request order, as each result is yielded.

    ``backend`` overrides the execution backend (a registered name:
    ``serial``, ``thread``, ``process``, ...); by default
    :func:`~repro.api.exec.routing.route` picks one from the worker count,
    ``REPRO_BACKEND``, and the *first* request's algorithm capabilities —
    a lazy stream cannot be scanned ahead of time (:func:`solve_batch`,
    holding the whole list, routes on every algorithm in it). On the
    ``serial`` backend the semantics are bit-for-bit the classic loop:
    one request pulled, solved, cached, yielded at a time.

    ``cache`` is an optional :class:`repro.api.cache.CacheBackend`:
    requests whose fingerprint is already stored are served from disk
    without a ``solve`` call (their ``tags`` are taken from the incoming
    request, not the stored result), and every freshly computed result is
    appended to the cache before being yielded — a crashed sweep resumes
    where it stopped. Identical requests *within* a run dedupe on every
    backend: a request whose fingerprint is already in flight waits for
    the first submission's result instead of solving again (on serial the
    earlier result is already cached by the time the duplicate is
    submitted, so parallel backends now honour the same contract).
    Requests with ``want_mapping=True`` bypass the cache, because the
    live mapping cannot be rehydrated from disk; timed-out results are
    never cached.
    """
    from repro.api.exec.backends import create_backend, solve_with_policy
    from repro.api.exec.routing import route

    it = iter(requests)
    try:
        first = next(it)
    except StopIteration:
        return
    workers = resolve_parallel(parallel)
    engine = create_backend(route((first.algorithm,), backend=backend,
                                  workers=workers))
    if engine.name == "serial":
        window = 1
    else:
        workers = max(workers, 1)
        window = max(int(window or 4 * workers), workers)
    if cache is not None and hasattr(engine, "set_cache"):
        # backends whose workers live in other processes (the queue
        # engine) can share the batch's cache so workers serve repeats
        # themselves; the parent-side lookup/put below stays authoritative
        engine.set_cache(cache)

    # entries are (index, request, fingerprint, ready result | None,
    # submission | None, deferred); cached hits carry a ready result,
    # submitted requests a backend handle, and a *deferred* entry is a
    # duplicate of an in-flight fingerprint — it waits for the earlier
    # identical submission instead of re-running the solve
    pending: deque = deque()
    inflight = 0
    #: fingerprints with a live submission (within-run dedupe on
    #: parallel backends: later identical requests defer to the first)
    inflight_fps: set = set()

    def drain_head() -> ScheduleResult:
        nonlocal inflight
        index, request, fingerprint, result, submission, deferred = \
            pending.popleft()
        if submission is not None:
            result = submission.result()
            inflight -= 1
            if fingerprint is not None:
                if _cacheable(result):
                    cache.put(fingerprint, result)
                inflight_fps.discard(fingerprint)
        elif deferred:
            # the primary sat ahead of this entry in the in-order queue,
            # so it has drained (and been cached) by now — this is the
            # same lookup-then-hit a serial run performs, counters and
            # retagging included
            result = cache.get(fingerprint, request)
            if result is None:
                # the primary's outcome was uncacheable (a timeout);
                # solve inline, exactly as a serial run would re-run it
                result = solve_with_policy(request)
        if progress is not None:
            progress(index, request, result)
        return result

    engine.open(max(workers, 1))
    try:
        for index, request in enumerate(chain((first,), it)):
            fingerprint = _fingerprint(cache, request)
            hit = None
            deferred = fingerprint is not None and fingerprint in inflight_fps
            if fingerprint is not None and not deferred:
                hit = cache.get(fingerprint, request)
            if hit is not None:
                pending.append((index, request, fingerprint, hit, None,
                                False))
            elif deferred:
                pending.append((index, request, fingerprint, None, None,
                                True))
            else:
                pending.append((index, request, fingerprint, None,
                                engine.submit(request), False))
                inflight += 1
                if fingerprint is not None:
                    inflight_fps.add(fingerprint)
            # drain: ready heads (cache hits, deferred duplicates,
            # completed submissions) stream immediately; an unfinished
            # head is only waited on once the in-flight window (or the
            # pending queue, when cache hits pile up behind a slow miss)
            # is full
            while pending and (pending[0][4] is None or pending[0][4].done()
                               or inflight >= window
                               or len(pending) >= 4 * window):
                yield drain_head()
        while pending:
            yield drain_head()
    finally:
        engine.close()


def solve_batch(requests: Iterable[ScheduleRequest],
                parallel: Optional[int] = None,
                progress: Optional[ProgressHook] = None,
                cache=None,
                backend: Optional[str] = None) -> List[ScheduleResult]:
    """Run every request; results are returned in the input order.

    ``parallel`` > 1 distributes requests over that many workers of the
    routed backend (``None`` consults the ``REPRO_PARALLEL`` environment
    variable, ``-1`` uses every CPU); ``backend`` forces a specific
    execution backend regardless of worker count. On the ``process``
    backend the fork start method shares the already-built requests — and
    any custom algorithms registered before the call — with the workers;
    where fork is unavailable the default start method is used, which
    requires registrations to happen at import time. ``progress`` is
    called in the parent, in request order, once per request. ``cache``
    is forwarded to :func:`iter_solve_batch`.
    """
    from repro.api.exec.routing import route

    requests = list(requests)
    workers = min(resolve_parallel(parallel), len(requests))
    if requests:
        # unlike the lazily-streamed iterator, the whole list is in hand:
        # route on every algorithm (a mixed batch with one io-bound
        # request must not end up GIL-serialized on the thread backend)
        backend = route(sorted({r.algorithm for r in requests}),
                        backend=backend, workers=workers)
    return list(iter_solve_batch(requests, parallel=workers,
                                 progress=progress, cache=cache,
                                 backend=backend))
