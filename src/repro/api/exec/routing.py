"""Capabilities-aware backend routing for one request batch.

:func:`route` picks the execution backend the batch façade will use.
Precedence, highest first:

1. an explicit ``backend=`` override (CLI ``--backend``, scenario
   ``execution.backend``, direct API argument) — always wins;
2. the ``REPRO_BACKEND`` environment variable;
3. worker count: ``workers <= 1`` is always ``serial`` (parallel engines
   would only add overhead);
4. algorithm metadata: when every algorithm in the batch declares the
   ``"io-bound"`` capability (registered via
   ``register_algorithm(..., capabilities=("io-bound",))``), threads are
   the better engine — the GIL is released while the algorithm waits;
5. otherwise ``process`` — CPU-bound Python scheduling wants real
   parallelism.

The router validates every name it resolves, so a typo in
``REPRO_BACKEND`` fails loudly instead of silently running serial.

Nested batches are safe by construction: inside a backend worker (a
daemonic pool process, or a ``repro-exec`` thread of the thread backend
— e.g. the portfolio meta-scheduler calling ``solve_batch`` from within
a solve) the router falls back to ``serial``: daemonic processes cannot
fork children, forking from a multithreaded parent risks the classic
fork-with-locks deadlock, and nested pools would only oversubscribe an
already-saturated machine. An explicit ``backend=`` argument is honoured
as written (and fails loudly if it cannot work there).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Iterable, Optional

from repro.api.exec.backends import get_backend
from repro.api.registry import get_algorithm

#: environment override consulted between the explicit argument and the
#: capability rules
BACKEND_ENV = "REPRO_BACKEND"

#: set (to any non-empty value) in queue-backend worker processes:
#: nested batches there must run serial — a worker that re-routed to
#: ``queue`` would spool into a brand-new queue and spawn grandchildren
NESTED_ENV = "REPRO_EXEC_NESTED"

#: algorithm capability that routes a parallel batch onto threads
IO_BOUND_CAPABILITY = "io-bound"


def route(algorithms: Iterable[str] = (), *,
          backend: Optional[str] = None,
          workers: int = 1) -> str:
    """The canonical backend name a batch should run on.

    ``algorithms`` is a (possibly empty) sample of the batch's algorithm
    names — the façade passes the first request's algorithm, since a
    lazily streamed batch cannot be scanned ahead of time. Unknown
    algorithm names are ignored here (``solve`` reports them properly,
    per request).
    """
    if backend is not None:
        return get_backend(backend).name
    nested = (multiprocessing.current_process().daemon
              or threading.current_thread().name.startswith("repro-exec")
              or bool(os.environ.get(NESTED_ENV)))
    env = os.environ.get(BACKEND_ENV, "").strip()
    if env:
        name = get_backend(env).name  # validate even when overridden below
        if not nested:
            return name
    if nested:
        # a nested batch inside a backend worker: forking is impossible
        # (daemonic process) or unsafe (threaded parent), and extra pools
        # only thrash an already-saturated machine
        return get_backend("serial").name
    if workers <= 1:
        return get_backend("serial").name
    names = [name for name in algorithms]
    if names:
        try:
            infos = [get_algorithm(name) for name in names]
        except ValueError:
            infos = []
        if infos and all(IO_BOUND_CAPABILITY in info.capabilities
                         for info in infos):
            return get_backend("thread").name
    return get_backend("process").name
