"""repro.api.exec — pluggable execution backends and per-request policy.

* :mod:`repro.api.exec.policy` — frozen, JSON-round-trippable
  :class:`ExecutionPolicy` (per-request ``timeout_s``, ``retries``,
  ``retry_backoff``, ``on_timeout``), carried on ``ScheduleRequest`` and
  enforced uniformly by every backend;
* :mod:`repro.api.exec.backends` — the :class:`ExecutionBackend`
  protocol, the ``@register_backend`` registry, and the three shipped
  engines (``serial``, ``thread``, ``process``);
* :mod:`repro.api.exec.routing` — :func:`route`, the capabilities-aware
  override > ``REPRO_BACKEND`` > metadata dispatcher.
"""

from repro.api.exec.backends import (
    BackendInfo,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    Submission,
    ThreadBackend,
    available_backends,
    create_backend,
    get_backend,
    register_backend,
    solve_with_policy,
    unregister_backend,
)
from repro.api.exec.policy import ON_TIMEOUT_CHOICES, ExecutionPolicy
from repro.api.exec.routing import BACKEND_ENV, IO_BOUND_CAPABILITY, route

__all__ = [
    "BACKEND_ENV",
    "BackendInfo",
    "ExecutionBackend",
    "ExecutionPolicy",
    "IO_BOUND_CAPABILITY",
    "ON_TIMEOUT_CHOICES",
    "ProcessBackend",
    "SerialBackend",
    "Submission",
    "ThreadBackend",
    "available_backends",
    "create_backend",
    "get_backend",
    "register_backend",
    "route",
    "solve_with_policy",
    "unregister_backend",
]
