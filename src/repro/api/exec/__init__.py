"""repro.api.exec — pluggable execution backends and per-request policy.

* :mod:`repro.api.exec.policy` — frozen, JSON-round-trippable
  :class:`ExecutionPolicy` (per-request ``timeout_s``, ``retries``,
  ``retry_backoff``, ``on_timeout``), carried on ``ScheduleRequest`` and
  enforced uniformly by every backend;
* :mod:`repro.api.exec.backends` — the :class:`ExecutionBackend`
  protocol, the ``@register_backend`` registry, and the three shipped
  engines (``serial``, ``thread``, ``process``);
* :mod:`repro.api.exec.routing` — :func:`route`, the capabilities-aware
  override > ``REPRO_BACKEND`` > metadata dispatcher;
* :mod:`repro.api.exec.queue` / :mod:`repro.api.exec.worker` — the
  ``queue`` backend: a filesystem spool shared with independent
  ``repro worker`` processes (atomic-rename claims, heartbeat leases,
  poison tombstones).
"""

from repro.api.exec.backends import (
    BackendInfo,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    Submission,
    ThreadBackend,
    available_backends,
    create_backend,
    failure_result,
    get_backend,
    register_backend,
    solve_with_policy,
    unregister_backend,
)
from repro.api.exec.policy import ON_TIMEOUT_CHOICES, ExecutionPolicy
from repro.api.exec.queue import QueueBackend, Spool  # noqa: F401  (registers)
from repro.api.exec.routing import BACKEND_ENV, IO_BOUND_CAPABILITY, NESTED_ENV, route
from repro.api.exec.worker import run_worker

__all__ = [
    "BACKEND_ENV",
    "BackendInfo",
    "ExecutionBackend",
    "ExecutionPolicy",
    "IO_BOUND_CAPABILITY",
    "NESTED_ENV",
    "ON_TIMEOUT_CHOICES",
    "ProcessBackend",
    "QueueBackend",
    "SerialBackend",
    "Spool",
    "Submission",
    "ThreadBackend",
    "available_backends",
    "create_backend",
    "failure_result",
    "get_backend",
    "register_backend",
    "route",
    "run_worker",
    "solve_with_policy",
    "unregister_backend",
]
