"""The queue backend's worker loop — the ``repro worker`` engine.

A worker is deliberately dumb: attach to a spool directory, claim the
oldest pending request (atomic rename — see
:class:`~repro.api.exec.queue.Spool`), run it through the very same
:func:`~repro.api.exec.backends.solve_with_policy` every in-process
backend uses, land the result envelope in ``done/``, repeat. All policy
semantics (timeouts, retries, structured ``timeout`` failures) therefore
hold bit-for-bit across ``serial``/``thread``/``process``/``queue``.

Liveness is a heartbeat: a daemon thread touches the worker's lease file
every quarter lease interval. If the worker is SIGKILLed the beats stop,
the lease expires, and the parent re-enqueues its claims — requests are
re-run, never lost.

When a shared cache is attached (``--cache sqlite://...``), the worker
checks it before solving and records fresh results after — so identical
requests across *parents and machines* cost one solve total. Only the
SQLite store is multi-process safe; the JSONL store must stay with a
single writer.

Unexpected exceptions (bugs, corrupted spool payloads) are captured into
a structured ``FailureInfo(kind="WorkerError")`` envelope and landed like
any other result: the parent never hangs on a request whose worker hit a
crash it could catch. (Crashes it *cannot* catch — SIGKILL, interpreter
aborts — are what leases are for.)
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from typing import Optional

from repro.api.envelopes import ScheduleRequest
from repro.api.exec.backends import failure_result, solve_with_policy
from repro.api.exec.queue import Spool

#: failure kind of a request whose worker hit an unexpected exception
WORKER_ERROR_KIND = "WorkerError"


def _solve_one(payload: dict, cache) -> "ScheduleResult":
    """One claimed payload → one result envelope (never raises)."""
    try:
        request = ScheduleRequest.from_dict(payload["request"])
    except Exception as exc:
        raise RuntimeError(
            f"unreadable request payload in job {payload.get('id')!r}: "
            f"{exc}") from exc
    fingerprint = None
    if cache is not None and not request.want_mapping:
        fingerprint = cache.fingerprint(request)
        hit = cache.get(fingerprint, request)
        if hit is not None:
            return hit
    result = solve_with_policy(request)
    if fingerprint is not None:
        from repro.api.batch import _cacheable
        if _cacheable(result):
            cache.put(fingerprint, result)
    return result


def run_worker(spool_dir: str,
               worker_id: Optional[str] = None,
               poll_s: float = 0.1,
               cache: Optional[str] = None,
               lease_timeout_s: Optional[float] = None,
               max_idle_s: Optional[float] = None,
               once: bool = False) -> int:
    """Claim-and-solve loop over ``spool_dir``; returns jobs completed.

    Runs until the spool's stop marker appears, ``max_idle_s`` elapses
    without a claim (``None`` = wait forever), or — with ``once=True`` —
    the first claim completes. ``cache`` is a cache URI
    (``sqlite:///path.db``) shared with sibling workers; ``lease_timeout_s``
    only sizes the heartbeat interval (expiry is judged by the parent).
    """
    from repro.api.exec.queue import DEFAULT_LEASE_S

    if worker_id is None:
        worker_id = f"w-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    if lease_timeout_s is None:
        lease_timeout_s = DEFAULT_LEASE_S
    spool = Spool(spool_dir, lease_timeout_s=lease_timeout_s)
    store = None
    if cache:
        from repro.api.cache import open_cache
        store = open_cache(cache)

    # beat at a quarter lease: three missed beats of headroom before the
    # parent declares this worker dead
    spool.heartbeat(worker_id)
    stop_beating = threading.Event()
    interval = min(1.0, max(0.02, lease_timeout_s / 4.0))

    def beat() -> None:
        while not stop_beating.wait(interval):
            try:
                spool.heartbeat(worker_id)
            except OSError:  # spool removed under us: the loop will exit
                return

    heart = threading.Thread(target=beat, daemon=True,
                             name="repro-queue-heartbeat")
    heart.start()

    completed = 0
    idle_since = time.time()
    try:
        while True:
            if spool.stop_requested():
                break
            try:
                claim = spool.claim(worker_id)
            except FileNotFoundError:  # spool deleted: parent is gone
                break
            if claim is None:
                if max_idle_s is not None \
                        and time.time() - idle_since > max_idle_s:
                    break
                time.sleep(poll_s)
                continue
            job_id, payload = claim
            try:
                result = _solve_one(payload, store)
            except BaseException as exc:
                # land *something* structured — the parent must never
                # hang because this worker hit a bug it could catch
                try:
                    request = ScheduleRequest.from_dict(payload["request"])
                    result = failure_result(
                        request, WORKER_ERROR_KIND,
                        f"{type(exc).__name__}: {exc}")
                except BaseException:
                    # even the payload is beyond saving; leave the claim
                    # for maintain() to reclaim/tombstone
                    raise exc
            spool.write_result(job_id, result, worker_id)
            spool.finish(worker_id, job_id)
            completed += 1
            idle_since = time.time()
            if once:
                break
    finally:
        stop_beating.set()
        if store is not None:
            store.close()
    return completed
