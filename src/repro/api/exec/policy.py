"""Per-request execution policy: timeout, retries, backoff.

An :class:`ExecutionPolicy` travels on
:class:`~repro.api.envelopes.ScheduleRequest` and is enforced uniformly by
every execution backend (serial, thread, process alike), so a scenario's
timeout behaviour does not change when its backend does.

Semantics
---------
A request gets ``1 + retries`` attempts. A *successful* attempt is
terminal. A failed attempt (any structured
:class:`~repro.api.envelopes.FailureInfo`) is retried until the attempts
are exhausted, sleeping ``retry_backoff * 2**(attempt - 1)`` seconds
before attempt ``attempt + 1`` — except a timeout under
``on_timeout="fail"``, which is terminal immediately: the request gives
up its remaining attempts and reports ``FailureInfo(kind="timeout")``.
``on_timeout="requeue"`` instead puts a timed-out request back through
the attempt loop like any other failure (useful when timeouts are load
artifacts, e.g. an oversubscribed thread pool).

Retries are deterministic: the attempt loop is sequential and the
algorithms are seeded, so the same request under the same policy always
yields the same final result — retrying a deterministic
``NoFeasibleMappingError`` simply reproduces it.

The policy is an *execution* knob, not part of the computation: it is
deliberately excluded from the result-cache fingerprint
(:func:`repro.api.cache.request_fingerprint`), exactly like ``tags``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

#: accepted values of :attr:`ExecutionPolicy.on_timeout`
ON_TIMEOUT_CHOICES = ("fail", "requeue")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a backend must execute one request.

    ``timeout_s``      wall-clock budget per *attempt* (None = unlimited);
    ``retries``        extra attempts after a failed one (0 = single shot);
    ``retry_backoff``  base sleep before a retry, doubled per attempt;
    ``on_timeout``     ``"fail"`` stops at the first timeout, ``"requeue"``
                       re-attempts a timed-out request like any failure.
    """

    timeout_s: Optional[float] = None
    retries: int = 0
    retry_backoff: float = 0.0
    on_timeout: str = "fail"

    def __post_init__(self):
        if self.timeout_s is not None:
            timeout = float(self.timeout_s)
            if not math.isfinite(timeout) or timeout <= 0:
                raise ValueError(
                    f"timeout_s must be a positive finite number or None, "
                    f"got {self.timeout_s!r}")
            object.__setattr__(self, "timeout_s", timeout)
        retries = int(self.retries)
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries!r}")
        object.__setattr__(self, "retries", retries)
        backoff = float(self.retry_backoff)
        if not math.isfinite(backoff) or backoff < 0:
            raise ValueError(
                f"retry_backoff must be a finite number >= 0, "
                f"got {self.retry_backoff!r}")
        object.__setattr__(self, "retry_backoff", backoff)
        if self.on_timeout not in ON_TIMEOUT_CHOICES:
            raise ValueError(
                f"on_timeout must be one of {ON_TIMEOUT_CHOICES}, "
                f"got {self.on_timeout!r}")

    @property
    def attempts(self) -> int:
        """Total attempts a backend may spend on a request."""
        return 1 + self.retries

    def backoff_s(self, attempt: int) -> float:
        """Sleep before re-attempt number ``attempt`` (1-based retry index)."""
        if attempt < 1 or self.retry_backoff == 0.0:
            return 0.0
        return self.retry_backoff * (2.0 ** (attempt - 1))

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"timeout_s": self.timeout_s,
                "retries": self.retries,
                "retry_backoff": self.retry_backoff,
                "on_timeout": self.on_timeout}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionPolicy":
        known = {"timeout_s", "retries", "retry_backoff", "on_timeout"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ExecutionPolicy field(s) {sorted(unknown)}; "
                f"valid: {sorted(known)}")
        return cls(**{k: data[k] for k in known if k in data})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ExecutionPolicy":
        return cls.from_dict(json.loads(text))
