"""``queue`` — a stdlib-only filesystem work-queue execution backend.

Where ``thread``/``process`` parallelize inside one machine-local pool,
the queue backend decouples *submission* from *execution* entirely: the
parent spools each :class:`~repro.api.envelopes.ScheduleRequest` as a
JSON file into a shared **spool directory**, and independent worker
processes (``repro worker SPOOL_DIR`` — on this machine, or on any
machine sharing the filesystem) claim, solve, and land results. The
parent's :class:`Submission` handles simply poll for the result files,
so the batch façade's ordering/streaming/cache contracts hold unchanged.

Spool layout (all transitions are atomic renames on one filesystem)::

    SPOOL/
      pending/     submitted requests, one JSON file each (FIFO by name)
      claimed/<worker-id>/   requests a worker is executing
      claimed/<worker-id>.lease  worker heartbeat (mtime = last beat)
      done/        result envelopes, named after their request file
      tombstones/  poison requests parked after too many reclaims
      tmp/         staging for atomic writes
      stop         drain marker: workers exit when it appears

Robustness is first-class:

* **claims are atomic** — a worker takes a request by renaming it from
  ``pending/`` into its own ``claimed/`` directory; two workers can
  never run the same file;
* **leases** — a worker heartbeats its lease file while alive; the
  parent (via :meth:`Spool.maintain`, driven from the submission polls)
  re-enqueues every claim whose lease has expired, so a SIGKILLed
  worker's requests re-run instead of being lost;
* **poison tombstones** — a request reclaimed more than ``max_reclaims``
  times (it keeps killing workers) is parked in ``tombstones/`` and
  completed with a structured ``FailureInfo(kind="poison")`` so the
  sweep converges instead of crash-looping.

``ExecutionPolicy`` timeout/retry semantics are enforced *in the worker*
through the same :func:`~repro.api.exec.backends.solve_with_policy` every
other backend uses, so a timed-out request reports the identical
structured envelope. Workers can share one ``sqlite://`` result cache
(process-safe; see :mod:`repro.api.cache_sqlite`) so repeats across
parents cost zero solves.

By default the backend is self-contained: ``open(workers)`` creates a
private spool under the system temp directory and spawns ``workers``
local ``repro worker`` subprocesses (respawned if they die, within a
budget). Set ``REPRO_QUEUE_DIR`` to use a fixed spool directory and
``REPRO_QUEUE_SPAWN=0`` to attach to externally managed workers instead
— the CI kill-one-worker leg runs exactly that way.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.api.envelopes import ScheduleRequest, ScheduleResult
from repro.api.exec.backends import failure_result, register_backend

#: fixed spool directory (default: a fresh private temp dir per batch)
QUEUE_DIR_ENV = "REPRO_QUEUE_DIR"
#: "0"/"false" disables spawning local workers (attach to external ones)
QUEUE_SPAWN_ENV = "REPRO_QUEUE_SPAWN"
#: lease expiry in seconds (default 15); workers heartbeat at a quarter
QUEUE_LEASE_ENV = "REPRO_QUEUE_LEASE_S"
#: reclaims before a request is tombstoned as poison (default 3)
QUEUE_RECLAIMS_ENV = "REPRO_QUEUE_MAX_RECLAIMS"

DEFAULT_LEASE_S = 15.0
DEFAULT_MAX_RECLAIMS = 3
#: failure kind of a tombstoned request
POISON_KIND = "poison"

_PENDING = "pending"
_CLAIMED = "claimed"
_DONE = "done"
_TOMBSTONES = "tombstones"
_TMP = "tmp"
_LOGS = "logs"
_STOP = "stop"
_LEASE_SUFFIX = ".lease"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not a number")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not an integer")


class Spool:
    """The on-disk queue: atomic job files plus lease bookkeeping.

    One ``Spool`` object is cheap — it holds only the root path and the
    lease/reclaim knobs; all state lives on disk, so parents and workers
    in different processes coordinate purely through renames.
    """

    def __init__(self, root: str,
                 lease_timeout_s: float = DEFAULT_LEASE_S,
                 max_reclaims: int = DEFAULT_MAX_RECLAIMS):
        if not root:
            raise ValueError("Spool needs a directory; got an empty path")
        self.root = str(root)
        if lease_timeout_s <= 0:
            raise ValueError(
                f"lease_timeout_s must be positive, got {lease_timeout_s!r}")
        if max_reclaims < 0:
            raise ValueError(
                f"max_reclaims must be >= 0, got {max_reclaims!r}")
        self.lease_timeout_s = float(lease_timeout_s)
        self.max_reclaims = int(max_reclaims)
        self._seq = 0
        for sub in (_PENDING, _CLAIMED, _DONE, _TOMBSTONES, _TMP, _LOGS):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)

    # -- path helpers ---------------------------------------------------
    def _dir(self, sub: str) -> str:
        return os.path.join(self.root, sub)

    def _pending_path(self, job_id: str) -> str:
        return os.path.join(self.root, _PENDING, job_id + ".json")

    def _done_path(self, job_id: str) -> str:
        return os.path.join(self.root, _DONE, job_id + ".json")

    def _lease_path(self, worker_id: str) -> str:
        return os.path.join(self.root, _CLAIMED, worker_id + _LEASE_SUFFIX)

    def _claim_dir(self, worker_id: str) -> str:
        return os.path.join(self.root, _CLAIMED, worker_id)

    def _atomic_write(self, path: str, payload: Dict[str, Any]) -> None:
        """Land ``payload`` at ``path`` in one rename (same filesystem)."""
        fd, tmp = tempfile.mkstemp(dir=self._dir(_TMP), suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True, allow_nan=False)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _load(path: str) -> Optional[Dict[str, Any]]:
        """The file's JSON payload, or None if it vanished or is torn.

        Job/result files only ever appear via ``os.replace``, so a torn
        read means the file was *removed* between listing and opening —
        callers treat both the same way (skip, retry later).
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    # -- parent side ----------------------------------------------------
    def submit(self, request: ScheduleRequest) -> str:
        """Spool one request into ``pending/``; returns its job id.

        Job ids sort in submission order (per parent), so idle workers
        drain the spool roughly FIFO.
        """
        self._seq += 1
        job_id = f"{self._seq:08d}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._atomic_write(self._pending_path(job_id), {
            "id": job_id,
            "request": request.to_dict(),
            "reclaims": 0,
        })
        return job_id

    def read_result(self, job_id: str) -> Optional[ScheduleResult]:
        payload = self._load(self._done_path(job_id))
        if payload is None:
            return None
        return ScheduleResult.from_dict(payload["result"])

    def has_result(self, job_id: str) -> bool:
        return os.path.exists(self._done_path(job_id))

    def maintain(self) -> int:
        """Reclaim expired claims; tombstone poison requests.

        For every worker whose lease is stale (no heartbeat for
        ``lease_timeout_s`` — the worker was SIGKILLed, lost power, or
        hangs hard), each claimed request goes back to ``pending/`` with
        its reclaim counter bumped; a request over ``max_reclaims`` is
        parked in ``tombstones/`` and completed with a structured
        ``poison`` failure so the parent never hangs on it. Returns the
        number of requests re-enqueued or tombstoned.
        """
        moved = 0
        claimed_root = self._dir(_CLAIMED)
        try:
            names = os.listdir(claimed_root)
        except FileNotFoundError:
            return 0
        now = time.time()
        for name in names:
            claim_dir = os.path.join(claimed_root, name)
            if name.endswith(_LEASE_SUFFIX) or not os.path.isdir(claim_dir):
                continue
            lease = self._lease_path(name)
            try:
                age = now - os.path.getmtime(lease)
            except OSError:
                age = float("inf")  # no lease file at all: treat as dead
            if age <= self.lease_timeout_s:
                continue
            for job_file in sorted(os.listdir(claim_dir)):
                moved += self._reclaim(os.path.join(claim_dir, job_file))
            # drop the dead worker's empty dir + lease so later scans
            # skip it; a *live* worker re-creates both on its next claim
            try:
                os.rmdir(claim_dir)
                os.unlink(lease)
            except OSError:
                pass
        return moved

    def _reclaim(self, path: str) -> int:
        payload = self._load(path)
        if payload is None:
            return 0
        payload["reclaims"] = int(payload.get("reclaims", 0)) + 1
        job_id = payload["id"]
        if payload["reclaims"] > self.max_reclaims:
            # poison: the request has now taken out max_reclaims+1
            # workers — park it and complete the submission structurally
            request = ScheduleRequest.from_dict(payload["request"])
            result = failure_result(
                request, POISON_KIND,
                f"request reclaimed {payload['reclaims']} times from "
                f"expired worker leases; tombstoned as poison")
            self.write_result(job_id, result, worker_id="(reclaimer)")
            self._atomic_write(
                os.path.join(self._dir(_TOMBSTONES), job_id + ".json"),
                payload)
            try:
                os.unlink(path)
            except OSError:
                pass
            return 1
        # back to pending under its original name: FIFO position and
        # submission identity are preserved across reclaims
        self._atomic_write(self._pending_path(job_id), payload)
        try:
            os.unlink(path)
        except OSError:
            pass
        return 1

    def request_stop(self) -> None:
        """Ask every worker to drain and exit (idempotent)."""
        with open(os.path.join(self.root, _STOP), "w", encoding="utf-8"):
            pass

    def clear_stop(self) -> None:
        try:
            os.unlink(os.path.join(self.root, _STOP))
        except OSError:
            pass

    def stop_requested(self) -> bool:
        return os.path.exists(os.path.join(self.root, _STOP))

    def counts(self) -> Dict[str, int]:
        """Observability: files per stage (pending/claimed/done/tombstones)."""
        out = {}
        for sub in (_PENDING, _DONE, _TOMBSTONES):
            try:
                out[sub] = len([n for n in os.listdir(self._dir(sub))
                                if n.endswith(".json")])
            except FileNotFoundError:
                out[sub] = 0
        claimed = 0
        try:
            for name in os.listdir(self._dir(_CLAIMED)):
                path = os.path.join(self._dir(_CLAIMED), name)
                if os.path.isdir(path):
                    claimed += len(os.listdir(path))
        except FileNotFoundError:
            pass
        out[_CLAIMED] = claimed
        return out

    # -- worker side ----------------------------------------------------
    def heartbeat(self, worker_id: str) -> None:
        """Refresh the worker's lease (creating it on the first beat)."""
        lease = self._lease_path(worker_id)
        try:
            os.utime(lease)
        except OSError:
            with open(lease, "w", encoding="utf-8"):
                pass

    def claim(self, worker_id: str) -> Optional[Tuple[str, Dict[str, Any]]]:
        """Atomically take the oldest pending request, or ``None``.

        The rename either succeeds (this worker owns the file) or raises
        because a sibling won the race — in which case the next candidate
        is tried. The lease is refreshed *before* the rename so the
        parent can never observe a claim without a live lease.
        """
        claim_dir = self._claim_dir(worker_id)
        os.makedirs(claim_dir, exist_ok=True)
        self.heartbeat(worker_id)
        pending = self._dir(_PENDING)
        try:
            names = sorted(n for n in os.listdir(pending)
                           if n.endswith(".json"))
        except FileNotFoundError:
            return None
        for name in names:
            target = os.path.join(claim_dir, name)
            try:
                os.rename(os.path.join(pending, name), target)
            except OSError:
                continue  # a sibling claimed it first
            payload = self._load(target)
            if payload is None:  # unreadable claim: hand to maintain()
                continue
            return payload["id"], payload
        return None

    def write_result(self, job_id: str, result: ScheduleResult,
                     worker_id: str) -> None:
        """Land a result envelope (idempotent: last writer wins, but all
        writers of one job hold bit-identical deterministic results)."""
        self._atomic_write(self._done_path(job_id), {
            "id": job_id,
            "worker": worker_id,
            "result": result.to_dict(),
        })

    def finish(self, worker_id: str, job_id: str) -> None:
        """Drop the claim file once its result has landed."""
        try:
            os.unlink(os.path.join(self._claim_dir(worker_id),
                                   job_id + ".json"))
        except OSError:
            pass  # the parent reclaimed it meanwhile; results are idempotent


class _SpoolSubmission:
    """Parent-side handle: polls ``done/`` and drives spool maintenance."""

    __slots__ = ("_backend", "_job_id", "_result")

    def __init__(self, backend: "QueueBackend", job_id: str):
        self._backend = backend
        self._job_id = job_id
        self._result = None

    def done(self) -> bool:
        if self._result is not None:
            return True
        self._backend._maintain()
        return self._backend._spool.has_result(self._job_id)

    def result(self) -> ScheduleResult:
        if self._result is None:
            self._result = self._backend._await(self._job_id)
        return self._result


@register_backend("queue", capabilities=("parallel", "isolated",
                                         "distributed"),
                  summary="filesystem work queue; independent `repro "
                          "worker` processes claim spooled requests and "
                          "land results (leases reclaim killed workers)")
class QueueBackend:
    """Spool-directory execution with leased, restartable workers.

    Never auto-routed — select it explicitly (``backend=\"queue\"``,
    ``--backend queue``, ``REPRO_BACKEND=queue``, or a scenario's
    ``execution.backend``). Results cannot carry a live mapping back
    (they cross a process boundary as JSON), exactly like cache hits;
    sweeps (``want_mapping=False``) are its intended workload. Custom
    algorithms must be importable by the worker processes — registrations
    made only in the parent's memory do not exist in a fresh interpreter.
    """

    name = "queue"

    def __init__(self, spool_dir: Optional[str] = None,
                 spawn: Optional[bool] = None,
                 lease_timeout_s: Optional[float] = None,
                 max_reclaims: Optional[int] = None,
                 poll_s: float = 0.02):
        if spool_dir is None:
            spool_dir = os.environ.get(QUEUE_DIR_ENV) or None
        if spawn is None:
            spawn = os.environ.get(QUEUE_SPAWN_ENV, "1").strip().lower() \
                not in ("0", "false", "no")
        if lease_timeout_s is None:
            lease_timeout_s = _env_float(QUEUE_LEASE_ENV, DEFAULT_LEASE_S)
        if max_reclaims is None:
            max_reclaims = _env_int(QUEUE_RECLAIMS_ENV, DEFAULT_MAX_RECLAIMS)
        self._spool_dir = spool_dir
        self._owns_dir = False
        self._spawn = bool(spawn)
        self._lease_timeout_s = float(lease_timeout_s)
        self._max_reclaims = int(max_reclaims)
        self._poll_s = float(poll_s)
        self._spool: Optional[Spool] = None
        self._workers: List[subprocess.Popen] = []
        self._respawn_budget = 0
        self._next_worker = 0
        self._last_maintain = 0.0
        self._cache_uri: Optional[str] = None
        self._closing = False

    # -- the façade's cache hook ---------------------------------------
    def set_cache(self, cache) -> None:
        """Share the batch's cache with spawned workers (sqlite only —
        the JSONL store has a single-writer contract, so its lookups and
        puts stay in the parent)."""
        if getattr(cache, "kind", None) == "sqlite":
            self._cache_uri = f"sqlite://{cache.location}"

    # -- ExecutionBackend protocol --------------------------------------
    def open(self, workers: int) -> None:
        if self._spool_dir is None:
            self._spool_dir = tempfile.mkdtemp(prefix="repro-queue-")
            self._owns_dir = True
        self._spool = Spool(self._spool_dir,
                            lease_timeout_s=self._lease_timeout_s,
                            max_reclaims=self._max_reclaims)
        # a previous batch over the same fixed dir left its drain marker
        self._spool.clear_stop()
        self._closing = False
        if self._spawn:
            n = max(1, workers)
            # each genuine crash costs one respawn; poison tombstoning
            # bounds crashes per request, this bounds them per batch
            self._respawn_budget = n * (self._max_reclaims + 1)
            for _ in range(n):
                self._spawn_worker()

    def submit(self, request: ScheduleRequest) -> _SpoolSubmission:
        return _SpoolSubmission(self, self._spool.submit(request))

    def close(self) -> None:
        self._closing = True
        if self._spool is not None and self._spawn:
            # spawned workers are ours to drain; attached ones belong to
            # whoever started them (other parents may be sharing the spool)
            self._spool.request_stop()
        for proc in self._workers:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.time() + 5.0
        for proc in self._workers:
            try:
                proc.wait(timeout=max(0.1, deadline - time.time()))
            except subprocess.TimeoutExpired:
                proc.kill()  # SIGSTOPped or wedged: no mercy on close
                proc.wait()
        self._workers = []
        if self._owns_dir and self._spool_dir:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
            self._spool_dir = None
            self._owns_dir = False
        self._spool = None

    # -- internals ------------------------------------------------------
    def _spawn_worker(self) -> None:
        self._next_worker += 1
        worker_id = f"w{self._next_worker}-{os.getpid()}"
        cmd = [sys.executable, "-m", "repro", "worker", self._spool_dir,
               "--id", worker_id,
               "--lease", f"{self._lease_timeout_s:g}"]
        if self._cache_uri:
            cmd += ["--cache", self._cache_uri]
        log_path = os.path.join(self._spool_dir, _LOGS, worker_id + ".log")
        with open(log_path, "ab") as log:
            self._workers.append(subprocess.Popen(
                cmd, stdout=log, stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL))

    def _maintain(self) -> None:
        """Reclaim expired leases and keep the spawned fleet alive.

        Rate-limited: driven from every submission poll, but a scan only
        actually runs every quarter lease (bounded below so tests with
        tiny leases still reclaim promptly).
        """
        now = time.time()
        interval = min(1.0, max(0.05, self._lease_timeout_s / 4.0))
        if now - self._last_maintain < interval:
            return
        self._last_maintain = now
        self._spool.maintain()
        if not self._spawn or self._closing:
            return
        alive = []
        dead = 0
        for proc in self._workers:
            if proc.poll() is None:
                alive.append(proc)
            else:
                dead += 1
        self._workers = alive
        for _ in range(dead):
            if self._respawn_budget <= 0:
                break
            self._respawn_budget -= 1
            self._spawn_worker()

    def _await(self, job_id: str) -> ScheduleResult:
        while True:
            result = self._spool.read_result(job_id)
            if result is not None:
                return result
            self._maintain()
            if (self._spawn and not self._workers
                    and self._respawn_budget <= 0):
                raise RuntimeError(
                    f"queue backend: all spawned workers died and the "
                    f"respawn budget is exhausted; job {job_id} cannot "
                    f"complete (see {os.path.join(self._spool_dir, _LOGS)})")
            time.sleep(self._poll_s)
