"""Execution backends: *where* a request runs, behind one interface.

A backend is a tiny executor: :meth:`~ExecutionBackend.open` with a
worker count, :meth:`~ExecutionBackend.submit` one
:class:`~repro.api.envelopes.ScheduleRequest` at a time, get a
:class:`Submission` handle back, :meth:`~ExecutionBackend.close` when the
batch is drained. Ordering, bounded-window streaming, cache consultation
and progress hooks all stay in the batch façade
(:func:`repro.api.batch.iter_solve_batch`) — a backend only decides how
the ``solve`` call executes.

Backends register exactly like algorithms do (same canonical names, same
duplicate rejection): ``@register_backend("mybackend")``. Three ship:

``serial``   in-process, synchronous — ``submit`` returns a completed
             handle, so the façade's streaming is bit-for-bit the classic
             serial loop (one request pulled, one result yielded);
``thread``   a ``ThreadPoolExecutor`` — the GIL makes it pointless for
             CPU-bound scheduling, but it is the right engine for
             cache-hit-dominated re-runs and I/O-heavy custom algorithms,
             and it shares the parent's registry (no fork needed);
``process``  a ``multiprocessing`` pool (fork where available), the
             engine CPU-bound sweeps want — absorbed from the old
             hard-coded ``iter_solve_batch`` pool logic.

Every backend enforces the request's
:class:`~repro.api.exec.policy.ExecutionPolicy` through the shared
:func:`solve_with_policy`, so timeouts and retries behave identically
everywhere. Timeouts are implemented with a watchdog: the attempt runs in
a daemon thread that is abandoned when the budget expires, and the
request completes with a structured ``FailureInfo(kind="timeout")`` —
the batch keeps streaming instead of hanging. (The abandoned attempt may
keep burning one CPU until it finishes; a timed-out *process* worker is
likewise left to its pool slot. Pick ``timeout_s`` as a guard rail, not
as a throttle.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from repro.api.envelopes import FailureInfo, ScheduleRequest, ScheduleResult
from repro.api.registry import canonical_name, get_algorithm


# ----------------------------------------------------------------------
# Policy enforcement (shared by every backend)
# ----------------------------------------------------------------------
def failure_result(request: ScheduleRequest, kind: str, message: str,
                   elapsed: float = 0.0) -> ScheduleResult:
    """A structured failure envelope for an execution-layer outcome.

    The cluster is resolved exactly as ``solve`` resolves it (memory
    scaling applied), so the record aligns with every other outcome of
    the same request — ``scenario diff`` matches them by cluster name.
    ``makespan=inf`` like any other failure; identical on every backend
    by construction. Used for timeouts and for the queue backend's
    poison-request tombstones.
    """
    info = get_algorithm(request.algorithm)
    cluster = request.cluster
    if request.scale_memory:
        from repro.experiments.instances import scaled_cluster_for
        cluster = scaled_cluster_for(request.workflow, cluster)
    return ScheduleResult(
        algorithm=info.display_name,
        workflow=request.workflow.name,
        n_tasks=request.workflow.n_tasks,
        cluster=cluster.name,
        bandwidth=cluster.bandwidth,
        makespan=float("inf"),
        runtime=elapsed,
        n_blocks=0,
        failure=FailureInfo(kind=kind, message=message),
        tags=dict(request.tags),
    )


def _timeout_result(request: ScheduleRequest, timeout_s: float,
                    elapsed: float) -> ScheduleResult:
    """The structured envelope of a timed-out attempt."""
    return failure_result(request, "timeout",
                          f"scheduling exceeded timeout_s={timeout_s:g}",
                          elapsed)


def _attempt(request: ScheduleRequest,
             timeout_s: Optional[float]) -> ScheduleResult:
    """One attempt, watchdogged when a timeout budget is set."""
    from repro.api.batch import solve  # façade module; imported lazily

    if timeout_s is None:
        return solve(request)
    box: Dict[str, Any] = {}

    def target() -> None:
        try:
            box["result"] = solve(request)
        except BaseException as exc:  # re-raised in the caller below
            box["error"] = exc

    start = time.perf_counter()
    # the "repro-exec" prefix marks this thread as a backend worker for
    # route()'s nested-batch guard: an algorithm that itself calls
    # solve_batch (the portfolio) must not fork from this threaded parent
    watchdog = threading.Thread(target=target, daemon=True,
                                name="repro-exec-attempt")
    watchdog.start()
    watchdog.join(timeout_s)
    if watchdog.is_alive():
        return _timeout_result(request, timeout_s,
                               time.perf_counter() - start)
    if "error" in box:
        raise box["error"]
    return box["result"]


def solve_with_policy(request: ScheduleRequest) -> ScheduleResult:
    """``solve`` under the request's :class:`ExecutionPolicy`.

    Requests without a policy take the plain ``solve`` path (zero
    overhead — no watchdog thread, no attempt loop). See
    :mod:`repro.api.exec.policy` for the retry/timeout semantics.
    """
    policy = request.policy
    if policy is None:
        from repro.api.batch import solve
        return solve(request)
    result = None
    for attempt in range(policy.attempts):
        if attempt:
            backoff = policy.backoff_s(attempt)
            if backoff > 0:
                time.sleep(backoff)
        result = _attempt(request, policy.timeout_s)
        if result.failure is None:
            return result
        if result.failure.kind == "timeout" and policy.on_timeout == "fail":
            return result
    return result


# ----------------------------------------------------------------------
# The backend interface
# ----------------------------------------------------------------------
class Submission(Protocol):
    """Handle for one submitted request."""

    def done(self) -> bool:
        """Non-blocking: has the result landed?"""
        ...

    def result(self) -> ScheduleResult:
        """Block until the result is available and return it."""
        ...


@runtime_checkable
class ExecutionBackend(Protocol):
    """What an execution engine must implement.

    ``open(workers)`` acquires resources (pools); ``submit`` hands over
    one request and returns a :class:`Submission`; ``close`` releases
    everything. Submissions must complete in bounded time once submitted
    (the façade only ever blocks on the oldest one).
    """

    name: str

    def open(self, workers: int) -> None: ...

    def submit(self, request: ScheduleRequest) -> Submission: ...

    def close(self) -> None: ...


# ----------------------------------------------------------------------
# Backend registry (mirrors the algorithm registry's contract)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackendInfo:
    """One registry entry: a backend factory plus its self-description."""

    name: str  # canonical key, e.g. "process"
    factory: Callable[[], ExecutionBackend]
    summary: str = ""
    #: declared traits the router matches against (e.g. "parallel")
    capabilities: Tuple[str, ...] = ()


_BACKENDS: Dict[str, BackendInfo] = {}


def register_backend(name: str, *, summary: str = "",
                     capabilities: Tuple[str, ...] = ()):
    """Class decorator adding an execution backend to the registry.

    Names are canonicalized exactly like algorithm names (case and
    ``-``/``_``/spaces ignored); duplicates are rejected.
    """
    key = canonical_name(name)
    if not key:
        raise ValueError(f"backend name {name!r} is empty after canonicalization")

    def decorator(cls):
        if key in _BACKENDS:
            raise ValueError(
                f"backend {name!r} already registered; use "
                f"unregister_backend first to replace it")
        _BACKENDS[key] = BackendInfo(name=key, factory=cls, summary=summary,
                                     capabilities=tuple(capabilities))
        return cls

    return decorator


def unregister_backend(name: str) -> None:
    """Remove an entry (plugin teardown / tests); unknown names are a no-op."""
    _BACKENDS.pop(canonical_name(name), None)


def available_backends() -> Tuple[str, ...]:
    """Sorted canonical names of every registered backend."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> BackendInfo:
    """Resolve a (canonicalized) name; unknown names list the valid ones."""
    info = _BACKENDS.get(canonical_name(name))
    if info is None:
        valid = ", ".join(available_backends()) or "(none registered)"
        raise ValueError(f"unknown execution backend {name!r}; available: {valid}")
    return info


def create_backend(name: str) -> ExecutionBackend:
    """A fresh backend instance for one batch."""
    return get_backend(name).factory()


# ----------------------------------------------------------------------
# The three shipped backends
# ----------------------------------------------------------------------
class _Completed:
    """A submission that finished at submit time (serial backend)."""

    __slots__ = ("_result",)

    def __init__(self, result: ScheduleResult):
        self._result = result

    def done(self) -> bool:
        return True

    def result(self) -> ScheduleResult:
        return self._result


@register_backend("serial", summary="in-process, one request at a time "
                                    "(the reference semantics)")
class SerialBackend:
    """Synchronous execution; ``submit`` returns a completed handle."""

    name = "serial"

    def open(self, workers: int) -> None:  # workers ignored by design
        pass

    def submit(self, request: ScheduleRequest) -> Submission:
        return _Completed(solve_with_policy(request))

    def close(self) -> None:
        pass


class _FutureSubmission:
    """Adapter: ``concurrent.futures.Future`` → :class:`Submission`."""

    __slots__ = ("_future",)

    def __init__(self, future):
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self) -> ScheduleResult:
        return self._future.result()


@register_backend("thread", capabilities=("parallel",),
                  summary="thread pool; right for cache-hit-dominated "
                          "re-runs and I/O-heavy algorithms (GIL-bound "
                          "for CPU-heavy solves)")
class ThreadBackend:
    """``ThreadPoolExecutor``-backed execution, sharing the parent registry."""

    name = "thread"

    def __init__(self):
        self._pool = None

    def open(self, workers: int) -> None:
        from concurrent.futures import ThreadPoolExecutor
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-exec")

    def submit(self, request: ScheduleRequest) -> Submission:
        return _FutureSubmission(self._pool.submit(solve_with_policy, request))

    def close(self) -> None:
        if self._pool is not None:
            # cancel_futures: an abandoned batch (caller broke out of the
            # stream early) must not keep burning CPU on queued solves or
            # block interpreter exit on them
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


def _process_worker(request: ScheduleRequest) -> ScheduleResult:
    """Top-level worker (must be picklable): one request, one result."""
    return solve_with_policy(request)


class _AsyncResultSubmission:
    """Adapter: ``multiprocessing`` ``AsyncResult`` → :class:`Submission`."""

    __slots__ = ("_async",)

    def __init__(self, async_result):
        self._async = async_result

    def done(self) -> bool:
        return self._async.ready()

    def result(self) -> ScheduleResult:
        return self._async.get()


@register_backend("process", capabilities=("parallel", "isolated"),
                  summary="multiprocessing pool (fork where available); "
                          "the engine for CPU-bound sweeps")
class ProcessBackend:
    """Worker-process execution; absorbs the classic pool logic.

    The fork start method shares already-built requests — and any custom
    algorithms registered before the batch — with the workers; where fork
    is unavailable the default start method is used, which requires
    registrations to happen at import time.
    """

    name = "process"

    def __init__(self):
        self._pool = None

    def open(self, workers: int) -> None:
        import multiprocessing
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        self._pool = ctx.Pool(processes=max(1, workers))

    def submit(self, request: ScheduleRequest) -> Submission:
        return _AsyncResultSubmission(
            self._pool.apply_async(_process_worker, (request,)))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
