"""On-disk result caches keyed by a stable request fingerprint.

Storage is pluggable behind the :class:`CacheBackend` interface —
fingerprinting, hit/miss accounting, and the retag-on-hit contract are
shared; a concrete backend only implements ``_read``/``_write``/
``__len__``/``__contains__``. Two backends ship, selected by URI via
:func:`open_cache`:

* :class:`ResultCache` (a plain directory path, or ``jsonl://DIR``) — a
  directory holding one append-only JSONL file; each line is
  ``{"fp": <fingerprint>, "result": <ScheduleResult.to_dict()>}``.
  Lines are flushed as they are written, so a crashed sweep leaves a
  valid prefix behind and the next run resumes where it stopped instead
  of recomputing (a truncated final line — the crash artifact — is
  skipped on load and repaired on the next write).
* :class:`~repro.api.cache_sqlite.SqliteResultCache`
  (``sqlite:///path.db``) — one SQLite file in WAL mode, committed per
  put; the journal gives the same crash guarantee transactionally, and
  lookups need no in-memory index at all.

The JSONL backend keeps only a ``fingerprint → byte offset`` index in
memory; result payloads stay on disk and are read back lazily on a hit,
so a cache over a million-request sweep costs the parent process
megabytes, not the gigabytes the payloads occupy — the streaming batch
iterator keeps its constant-memory contract even when fully cache-served.

The fingerprint (:func:`request_fingerprint`) hashes everything that
determines the *outcome* of a solve — workflow structure and weights,
cluster processors and interconnect, canonical algorithm name, config
fields, and the ``scale_memory``/``validate`` knobs. It deliberately
excludes ``tags`` (correlation metadata that does not influence the
result), ``want_mapping`` (which only controls whether the live mapping
rides on the envelope), and the execution ``policy`` (timeout/retry
knobs that govern *how* the request runs, not what it computes): two
requests for the same computation hit the same cache line no matter how
they are labelled or executed. On a hit the stored
result is rehydrated with the *incoming* request's tags (the stored
``extra`` — algorithm-reported outcome metadata — is kept, since the
fingerprint keys the computation that produced it), so records rebuilt
from cached results are identical to freshly computed ones apart from
the recorded ``runtime``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from typing import Any, Dict, Optional

from repro.api.envelopes import ScheduleRequest, ScheduleResult
from repro.api.registry import canonical_name, get_algorithm

#: file name of the cache inside its directory
CACHE_FILENAME = "results.jsonl"


def _num(value):
    """Ints and floats render identically in the fingerprint JSON.

    A request that crosses a JSON boundary (the queue backend's spool,
    the HTTP service) comes back with every numeric weight as a float;
    without this coercion ``4`` and ``4.0`` would hash differently and a
    worker could never hit the entry its parent wrote (or vice versa).
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


def _workflow_key(wf) -> Dict[str, Any]:
    """Canonical description of a workflow: name, tasks, weights, edges."""
    return {
        "name": wf.name,
        "tasks": [[repr(u), _num(wf.work(u)), _num(wf.memory(u))]
                  for u in wf.tasks()],
        "edges": [[repr(u), repr(v), _num(c)] for u, v, c in wf.edges()],
    }


def _cluster_key(cluster) -> Dict[str, Any]:
    """Canonical description of a cluster: processors + interconnect model."""
    model = cluster.bandwidth_model
    model_key: Dict[str, Any] = {"type": type(model).__name__}
    for attr, value in sorted(vars(model).items()):
        model_key[attr] = _num(value) if isinstance(value, (int, float, str)) \
            else repr(value)
    return {
        "name": cluster.name,
        "processors": [[p.name, _num(p.speed), _num(p.memory), p.kind]
                       for p in cluster.processors],
        "bandwidth": model_key,
    }


def _config_key(config) -> Any:
    """Canonical description of an algorithm config (None, dataclass, dict).

    A config may define ``fingerprint_fields()`` to control what the
    cache keys on — e.g. ``PortfolioConfig`` hashes its *resolved* member
    list (the registry state matters) and drops its execution-only
    ``parallel`` knob.
    """
    if config is None:
        return None
    fingerprint_fields = getattr(config, "fingerprint_fields", None)
    if callable(fingerprint_fields):
        fields = dict(fingerprint_fields())
    elif dataclasses.is_dataclass(config) and not isinstance(config, type):
        fields = dataclasses.asdict(config)
    elif isinstance(config, dict):
        fields = dict(config)
    else:
        fields = {"repr": repr(config)}
    return {"type": type(config).__name__,
            "fields": json.loads(json.dumps(fields, sort_keys=True, default=repr))}


def request_fingerprint(request: ScheduleRequest) -> str:
    """Stable hex digest identifying the computation a request describes."""
    config = request.config
    if config is None:
        # an algorithm whose config class customises its fingerprint
        # (PortfolioConfig: registry-dependent membership) must key the
        # default-config request the same way as an explicit default —
        # config=None and config=PortfolioConfig() are one computation
        config_cls = get_algorithm(request.algorithm).config_cls
        if config_cls is not None and \
                callable(getattr(config_cls, "fingerprint_fields", None)):
            config = config_cls()
    payload = {
        "workflow": _workflow_key(request.workflow),
        "cluster": _cluster_key(request.cluster),
        "algorithm": canonical_name(request.algorithm),
        "config": _config_key(config),
        "scale_memory": bool(request.scale_memory),
        "validate": bool(request.validate),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CacheBackend:
    """The storage-agnostic result-cache contract.

    Subclasses implement ``_read(fingerprint)`` (the stored
    :class:`ScheduleResult` or ``None``), ``_write(fingerprint, result)``
    (persist one entry durably before returning), ``__len__`` and
    ``__contains__``; everything callers see — fingerprinting, hit/miss
    accounting, retag-on-hit, dedupe-on-put, context management — lives
    here, so every backend behaves identically.
    """

    #: short storage-kind label ("jsonl", "sqlite", ...) surfaced by
    #: :func:`describe_cache`; subclasses override
    kind = "custom"

    def __init__(self):
        self.hits = 0
        self.misses = 0
        #: serializes every get/put across threads — the service
        #: dispatcher and the thread execution backend drive one shared
        #: cache from several threads at once; subclasses reuse it for
        #: their own entry points (it is reentrant)
        self._lock = threading.RLock()

    @property
    def location(self) -> str:
        """Where the backend stores its entries (path, URI, ...)."""
        return ""

    # -- what a storage backend must provide ---------------------------
    def _read(self, fingerprint: str) -> Optional[ScheduleResult]:
        raise NotImplementedError

    def _write(self, fingerprint: str, result: ScheduleResult) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, fingerprint: str) -> bool:
        raise NotImplementedError

    # -- the shared behaviour ------------------------------------------
    def fingerprint(self, request: ScheduleRequest) -> str:
        return request_fingerprint(request)

    def get(self, fingerprint: str,
            request: Optional[ScheduleRequest] = None) -> Optional[ScheduleResult]:
        """The stored result, retagged with the incoming request's tags.

        Tags belong to the caller, so they are replaced wholesale; the
        stored ``extra`` (``SchedulerOutput.extra`` — e.g. the
        portfolio's winner) is kept, since it describes the computation,
        which is what the fingerprint keys.
        """
        with self._lock:
            result = self._read(fingerprint)
            if result is None:
                self.misses += 1
                return None
            self.hits += 1
        if request is not None:
            result = dataclasses.replace(result, tags=dict(request.tags))
        return result

    def put(self, fingerprint: str, result: ScheduleResult) -> None:
        """Record a freshly computed result; duplicates are ignored."""
        with self._lock:
            if fingerprint in self:
                return
            self._write(fingerprint, result)

    def close(self) -> None:
        pass

    def __enter__(self) -> "CacheBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, int]:
        """Counters for summaries: stored entries, hits, misses."""
        return {"entries": len(self), "hits": self.hits, "misses": self.misses}


class ResultCache(CacheBackend):
    """Append-only JSONL cache of :class:`ScheduleResult` envelopes.

    >>> cache = ResultCache("results-cache/")
    >>> for result in iter_solve_batch(requests, cache=cache):  # doctest: +SKIP
    ...     ...
    >>> cache.hits, cache.misses  # doctest: +SKIP

    One process appends at a time (results are written from the batch
    parent, not from workers); re-opening the same directory later — or
    after a crash — picks up every complete line.
    """

    kind = "jsonl"

    def __init__(self, directory: str):
        super().__init__()
        self.directory = str(directory)
        if not self.directory:
            # os.makedirs("") raises a bare FileNotFoundError; turn the
            # empty location into an actionable error instead
            raise ValueError(
                "ResultCache needs a directory; got an empty location "
                "(pass a directory path or a jsonl://DIR URI)")
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, CACHE_FILENAME)
        #: fingerprint -> byte offset of its line (payloads stay on disk)
        self._offsets: Dict[str, int] = {}
        self._load()
        self._fh = None  # append handle (binary), opened on first put
        self._rfh = None  # read handle (binary), opened on first hit

    @property
    def location(self) -> str:
        return self.directory

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            offset = 0
            for line in fh:
                entry = self._parse(line)
                if entry is not None:
                    self._offsets[entry["fp"]] = offset
                offset += len(line)

    @staticmethod
    def _parse(line: bytes) -> Optional[Dict[str, Any]]:
        line = line.strip()
        if not line:
            return None
        try:
            entry = json.loads(line.decode("utf-8"))
            entry["fp"], entry["result"]
            return entry
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            # a truncated/corrupt line (crashed writer); skip it — the
            # result will simply be recomputed and re-appended
            return None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._offsets)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._offsets

    def _read(self, fingerprint: str) -> Optional[ScheduleResult]:
        offset = self._offsets.get(fingerprint)
        if offset is None:
            return None
        if self._rfh is None:
            self._rfh = open(self.path, "rb")
        self._rfh.seek(offset)
        entry = self._parse(self._rfh.readline())
        if entry is None:  # defensive: index said yes, disk disagrees
            return None
        return ScheduleResult.from_dict(entry["result"])

    def _write(self, fingerprint: str, result: ScheduleResult) -> None:
        """Append one entry; flushed line-by-line."""
        if self._fh is None:
            # if a previous writer crashed mid-line, terminate the torn
            # fragment so the new entry starts on its own line
            torn = False
            if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
                with open(self.path, "rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    torn = fh.read(1) != b"\n"
            self._fh = open(self.path, "ab")
            if torn:
                self._fh.write(b"\n")
        line = json.dumps({"fp": fingerprint, "result": result.to_dict()},
                          sort_keys=True).encode("utf-8") + b"\n"
        self._fh.flush()
        # O_APPEND writes land at the true end of file, which is where
        # the new line's offset is (single-writer contract)
        self._offsets[fingerprint] = os.fstat(self._fh.fileno()).st_size
        self._fh.write(line)
        self._fh.flush()

    def close(self) -> None:
        for handle in (self._fh, self._rfh):
            if handle is not None:
                handle.close()
        self._fh = self._rfh = None


#: URI scheme -> how :func:`open_cache` interprets the rest of the URI
SQLITE_SCHEME = "sqlite://"
JSONL_SCHEME = "jsonl://"


def open_cache(uri: "str | CacheBackend") -> CacheBackend:
    """A cache backend from a URI (or a pass-through for open backends).

    * ``sqlite:///abs/path.db`` / ``sqlite://rel.db`` — the SQLite
      backend (:class:`~repro.api.cache_sqlite.SqliteResultCache`);
    * ``jsonl://DIR`` or a plain directory path — the JSONL
      :class:`ResultCache`.

    An already-open :class:`CacheBackend` is returned unchanged, so call
    sites can accept "URI or backend" uniformly (the caller keeps
    ownership — :func:`open_cache` only closes nothing it did not open).
    """
    if isinstance(uri, CacheBackend):
        return uri
    if not isinstance(uri, str):
        raise TypeError(
            f"expected a cache URI string or CacheBackend, "
            f"got {type(uri).__name__}")
    if uri.startswith(SQLITE_SCHEME):
        path = uri[len(SQLITE_SCHEME):]
        if not path:
            raise ValueError(
                f"cache URI {uri!r} has an empty location; expected "
                f"{SQLITE_SCHEME}PATH.db (e.g. sqlite:///tmp/results.db)")
        from repro.api.cache_sqlite import SqliteResultCache
        return SqliteResultCache(path)
    if uri.startswith(JSONL_SCHEME):
        directory = uri[len(JSONL_SCHEME):]
        if not directory:
            raise ValueError(
                f"cache URI {uri!r} has an empty location; expected "
                f"{JSONL_SCHEME}DIR (e.g. jsonl://results-cache)")
        return ResultCache(directory)
    if "://" in uri:
        # a typo'd or unsupported scheme must fail loudly, not become a
        # literal directory named "sqlit://..." caching into the void
        scheme = uri.split("://", 1)[0]
        raise ValueError(
            f"unknown cache URI scheme {scheme + '://'!r}; valid: "
            f"{SQLITE_SCHEME!r}, {JSONL_SCHEME!r}, or a plain directory path")
    if not uri:
        raise ValueError(
            "empty cache URI; expected sqlite:///PATH.db, jsonl://DIR, "
            "or a plain directory path")
    return ResultCache(uri)


def describe_cache(backend: CacheBackend) -> Dict[str, Any]:
    """One observability payload for any backend, shared by every surface.

    ``repro cache stats`` prints it and the service's ``/v1/stats``
    endpoint embeds it, so the CLI and the HTTP API can never drift:
    storage kind, location, stored-entry count, and this *session's*
    hit/miss counters (both shipped stores persist entries, not
    counters — a freshly opened cache always starts at 0/0).
    """
    stats = backend.stats()
    total = stats["hits"] + stats["misses"]
    return {
        "kind": backend.kind,
        "location": backend.location,
        "entries": stats["entries"],
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": round(stats["hits"] / total, 6) if total else None,
    }
