"""Compare two result-JSONL dumps: aligned by record fingerprint.

``repro scenario run --json`` writes one :class:`ScheduleResult` envelope
per line. :func:`diff_results` aligns two such dumps by a *record
fingerprint* — a hash of the identity fields (workflow, task count,
cluster, bandwidth, algorithm, tags), everything that names the request a
record answers — and reports what changed between the runs:

* ``makespan_deltas``  — records present in both whose makespan moved by
  more than ``tolerance`` (relative);
* ``new_failures`` / ``fixed_failures`` — success flipped to failure or
  back (the failure kind rides along);
* ``only_in_a`` / ``only_in_b`` — requests missing from one side;
* ``robustness_deltas`` — simulator outputs (``repro simulate --json``)
  carry flat ``sim_*`` metrics in ``extra``; records present in both
  sides are compared on every such key (floats within ``tolerance``,
  everything else — counts, policies, the resolved event log — exactly).

Measured ``runtime``, the sweep trace, and the ``sim_*_s`` reaction
latencies are deliberately ignored — two runs of the same scenario
always differ there.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: fields that identify the request a record answers (everything else is
#: outcome or measurement). The algorithm *config* is not part of a
#: result record, so a spec running one algorithm under several configs
#: must distinguish them with a tag template (e.g.
#: ``{"variant": "..."}``) — otherwise those records collapse to one
#: fingerprint and are reported under the ``duplicates`` counter.
IDENTITY_FIELDS = ("workflow", "n_tasks", "cluster", "bandwidth",
                   "algorithm", "tags")


def record_fingerprint(record: Dict[str, Any]) -> str:
    """Stable hex digest of a result record's identity fields."""
    payload = {name: record.get(name) for name in IDENTITY_FIELDS}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _label(record: Dict[str, Any]) -> str:
    """Human-readable identity of one record for the report."""
    instance = record.get("tags", {}).get("instance", record.get("workflow"))
    return (f"{instance}/{record.get('algorithm')}"
            f"@{record.get('cluster')}(beta={record.get('bandwidth')})")


def load_result_lines(path: str) -> List[Dict[str, Any]]:
    """Parse a result-JSONL file (blank lines skipped, bad lines rejected)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON result record: {exc}"
                ) from None
    return records


@dataclass
class ResultsDiff:
    """Everything that differs between two result dumps."""

    matched: int = 0
    #: (label, makespan_a, makespan_b) with relative delta > tolerance
    makespan_deltas: List[Tuple[str, Optional[float], Optional[float]]] = \
        field(default_factory=list)
    #: succeeded in A, failed in B: (label, failure kind in B)
    new_failures: List[Tuple[str, str]] = field(default_factory=list)
    #: failed in A, succeeded in B: (label, failure kind in A)
    fixed_failures: List[Tuple[str, str]] = field(default_factory=list)
    #: failed in both but differently: (label, kind in A, kind in B)
    changed_failures: List[Tuple[str, str, str]] = field(default_factory=list)
    #: simulator metrics that moved: (label, key, value_a, value_b) over
    #: the ``sim_*`` extra entries (wall-clock ``*_s`` keys excluded)
    robustness_deltas: List[Tuple[str, str, Any, Any]] = \
        field(default_factory=list)
    only_in_a: List[str] = field(default_factory=list)
    only_in_b: List[str] = field(default_factory=list)
    #: duplicate fingerprints seen within one file (kept: first occurrence)
    duplicates: int = 0
    #: duplicate fingerprints whose *outcomes* disagree within one file —
    #: the identity key cannot tell the records apart (same algorithm
    #: under two configs with no distinguishing tag), so the comparison
    #: is unreliable and the diff refuses to call it agreement
    conflicts: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the runs agree on every shared record and cover the
        same requests."""
        return not (self.makespan_deltas or self.new_failures or
                    self.fixed_failures or self.changed_failures or
                    self.robustness_deltas or
                    self.only_in_a or self.only_in_b or self.conflicts)


def _outcome(record: Dict[str, Any]) -> Tuple[Any, Any]:
    """What a record reports, runtime excluded: (makespan, failure kind)."""
    failure = record.get("failure")
    return (record.get("makespan"),
            None if failure is None else failure.get("kind"))


def _index(records: Iterable[Dict[str, Any]]
           ) -> Tuple[Dict[str, Dict[str, Any]], int, List[str]]:
    indexed: Dict[str, Dict[str, Any]] = {}
    duplicates = 0
    conflicts: List[str] = []
    for record in records:
        fp = record_fingerprint(record)
        if fp in indexed:
            duplicates += 1
            if _outcome(indexed[fp]) != _outcome(record):
                # same identity, different outcome: the key cannot tell
                # these records apart, so dropping one would hide a real
                # difference — refuse to report agreement
                conflicts.append(_label(record))
            continue
        indexed[fp] = record
    return indexed, duplicates, conflicts


def _sim_metrics(record: Dict[str, Any]) -> Dict[str, Any]:
    """The comparable simulator metrics of one record.

    ``sim_*`` extra entries minus the ``*_s`` wall-clock latencies (two
    runs always differ there, like ``runtime``).
    """
    extra = record.get("extra") or {}
    return {key: value for key, value in extra.items()
            if key.startswith("sim_") and not key.endswith("_s")}


def _robustness_delta(label: str, a_rec: Dict[str, Any],
                      b_rec: Dict[str, Any], tolerance: float
                      ) -> List[Tuple[str, str, Any, Any]]:
    a_sim, b_sim = _sim_metrics(a_rec), _sim_metrics(b_rec)
    out: List[Tuple[str, str, Any, Any]] = []
    for key in sorted(set(a_sim) | set(b_sim)):
        va, vb = a_sim.get(key), b_sim.get(key)
        if isinstance(va, float) and isinstance(vb, float):
            scale = max(abs(va), abs(vb))
            if abs(va - vb) > tolerance * scale:
                out.append((label, key, va, vb))
        elif va != vb:
            out.append((label, key, va, vb))
    return out


def diff_results(a_records: Iterable[Dict[str, Any]],
                 b_records: Iterable[Dict[str, Any]],
                 tolerance: float = 1e-9) -> ResultsDiff:
    """Align two record sets by fingerprint and report the differences.

    ``tolerance`` is relative: makespans ``a`` and ``b`` count as a delta
    when ``|a - b| > tolerance * max(|a|, |b|)``. A ``null`` makespan
    (failed run) never produces a makespan delta — the failure flip is
    reported instead.
    """
    a_index, a_dupes, a_conflicts = _index(a_records)
    b_index, b_dupes, b_conflicts = _index(b_records)
    diff = ResultsDiff(duplicates=a_dupes + b_dupes,
                       conflicts=sorted(set(a_conflicts + b_conflicts)))

    for fp, a_rec in a_index.items():
        b_rec = b_index.get(fp)
        if b_rec is None:
            diff.only_in_a.append(_label(a_rec))
            continue
        diff.matched += 1
        a_fail, b_fail = a_rec.get("failure"), b_rec.get("failure")
        if a_fail is None and b_fail is not None:
            diff.new_failures.append(
                (_label(a_rec), b_fail.get("kind", "?")))
        elif a_fail is not None and b_fail is None:
            diff.fixed_failures.append(
                (_label(a_rec), a_fail.get("kind", "?")))
        elif a_fail is not None and b_fail is not None:
            # both failed: a changed kind (e.g. infeasible -> timeout) is
            # a materially different outcome, not agreement
            if a_fail.get("kind") != b_fail.get("kind"):
                diff.changed_failures.append(
                    (_label(a_rec), a_fail.get("kind", "?"),
                     b_fail.get("kind", "?")))
        elif a_fail is None and b_fail is None:
            ma, mb = a_rec.get("makespan"), b_rec.get("makespan")
            if ma is not None and mb is not None:
                scale = max(abs(ma), abs(mb))
                if abs(ma - mb) > tolerance * scale:
                    diff.makespan_deltas.append((_label(a_rec), ma, mb))
            diff.robustness_deltas.extend(
                _robustness_delta(_label(a_rec), a_rec, b_rec, tolerance))
    for fp, b_rec in b_index.items():
        if fp not in a_index:
            diff.only_in_b.append(_label(b_rec))
    diff.only_in_a.sort()
    diff.only_in_b.sort()
    return diff


def format_diff(diff: ResultsDiff, a_name: str = "A",
                b_name: str = "B", limit: int = 20) -> str:
    """The human-readable report ``repro scenario diff`` prints."""
    lines = [f"matched   : {diff.matched} record(s)"]
    if diff.duplicates:
        lines.append(f"duplicates: {diff.duplicates} "
                     f"(first occurrence kept per file)")

    def section(title: str, rows: List[str]) -> None:
        lines.append(f"{title} ({len(rows)}):")
        for row in rows[:limit]:
            lines.append(f"  {row}")
        if len(rows) > limit:
            lines.append(f"  ... and {len(rows) - limit} more")

    if diff.makespan_deltas:
        def pct(ma: float, mb: float) -> str:
            return f" ({100 * (mb - ma) / ma:+.3f}%)" if ma else ""
        section("makespan deltas", [
            f"{label}: {ma:.6g} -> {mb:.6g}{pct(ma, mb)}"
            for label, ma, mb in diff.makespan_deltas])
    if diff.robustness_deltas:
        def show(value: Any) -> str:
            return f"{value:.6g}" if isinstance(value, float) else repr(value)
        section("robustness deltas", [
            f"{label}: {key} {show(va)} -> {show(vb)}"
            for label, key, va, vb in diff.robustness_deltas])
    if diff.new_failures:
        section(f"new failures in {b_name}",
                [f"{label}: {kind}" for label, kind in diff.new_failures])
    if diff.fixed_failures:
        section(f"failures fixed in {b_name}",
                [f"{label}: {kind}" for label, kind in diff.fixed_failures])
    if diff.changed_failures:
        section("failure kind changed", [
            f"{label}: {kind_a} -> {kind_b}"
            for label, kind_a, kind_b in diff.changed_failures])
    if diff.only_in_a:
        section(f"only in {a_name} (missing from {b_name})", diff.only_in_a)
    if diff.only_in_b:
        section(f"only in {b_name} (new requests)", diff.only_in_b)
    if diff.conflicts:
        section("ambiguous records (same identity, different outcome — "
                "add a distinguishing tag, e.g. a config variant)",
                diff.conflicts)
    if diff.clean:
        lines.append("runs agree: same requests, same outcomes, "
                     "same makespans (modulo runtime)")
    return "\n".join(lines)
