"""The built-in algorithms, registered as pluggable schedulers.

Importing :mod:`repro.api` loads this module, which populates the registry
with ``daghetmem`` (Section 4.1 baseline), ``daghetpart`` (Section 4.2
four-step heuristic), ``heftlist`` — a memory-oblivious HEFT-style
list scheduler that bounds how much the memory constraint costs —,
``anneal`` — simulated-annealing refinement of the DagHetPart mapping on
the incremental makespan evaluator — and ``portfolio`` — a meta-scheduler
that runs a capability-filtered set of registered algorithms and keeps
the best feasible mapping. Third-party algorithms register the same way;
see :func:`repro.api.registry.register_algorithm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.api.envelopes import SchedulerOutput
from repro.api.registry import (
    algorithm_infos,
    get_algorithm,
    register_algorithm,
)
from repro.core.anneal import AnnealConfig, anneal_refine
from repro.core.baseline import dag_het_mem
from repro.core.cpack import critical_path_pack, rank_order, upward_ranks
from repro.core.evaluator import MakespanEvaluator
from repro.core.exact import ExactConfig, exact_schedule
from repro.core.heuristic import DagHetPartConfig, dag_het_part_sweep
from repro.core.mapping import BlockAssignment, Mapping
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.utils.errors import NoFeasibleMappingError
from repro.workflow.graph import Workflow


@register_algorithm(
    "daghetmem", display_name="DagHetMem",
    capabilities=("baseline", "memory-packing"),
    summary="memory-optimal traversal packed greedily onto processors by "
            "decreasing memory (Section 4.1); no makespan optimization")
class DagHetMemScheduler:
    """The validity baseline; takes no config."""

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[object] = None) -> SchedulerOutput:
        return SchedulerOutput(mapping=dag_het_mem(workflow, cluster))


@register_algorithm(
    "daghetpart", display_name="DagHetPart",
    config_cls=DagHetPartConfig,
    capabilities=("makespan-optimizing", "k-prime-sweep", "configurable"),
    summary="acyclic partition + BiggestAssign + merge-unassigned + swap "
            "local search over the k' sweep (Section 4.2)")
class DagHetPartScheduler:
    """The four-step heuristic; reports the winning ``k'`` and sweep trace."""

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[DagHetPartConfig] = None) -> SchedulerOutput:
        if config is not None and not isinstance(config, DagHetPartConfig):
            raise TypeError(
                f"daghetpart expects a DagHetPartConfig, got "
                f"{type(config).__name__}")
        outcome = dag_het_part_sweep(workflow, cluster, config=config)
        return SchedulerOutput(mapping=outcome.mapping,
                               k_prime=outcome.k_prime,
                               sweep=outcome.sweep)


# rank helpers are shared with the critical-path packer (repro.core.cpack)
_upward_ranks = upward_ranks
_rank_order = rank_order


@register_algorithm(
    "heftlist", display_name="HeftList",
    capabilities=("baseline", "memory-oblivious", "list-scheduler"),
    summary="HEFT-style memory-oblivious list scheduler: upward-rank "
            "priority order, contiguous work-balanced blocks, greedy "
            "earliest-finish-time processor selection; bounds how much "
            "the memory constraint costs")
class HeftListScheduler:
    """The classic third baseline — list scheduling without memory awareness.

    Tasks are ordered by decreasing HEFT upward rank, the order is cut
    into at most ``k`` contiguous, work-balanced blocks (contiguity in a
    topological order keeps the quotient graph acyclic, so the block
    makespan model of Section 3.3 applies), and each block is placed on
    the distinct processor minimizing its finish time. Memory plays no
    role in any decision, so the schedule never fails for lack of memory
    — its makespan bounds what the memory constraint costs DagHetPart.
    """

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[object] = None) -> SchedulerOutput:
        if workflow.n_tasks == 0:
            return SchedulerOutput(
                mapping=Mapping(workflow, cluster, [], algorithm="HeftList"))

        procs = cluster.processors
        avg_speed = sum(p.speed for p in procs) / len(procs)
        beta = cluster.bandwidth_model.default
        ranks = upward_ranks(workflow, avg_speed, beta)
        order = rank_order(workflow, ranks)

        # cut the priority order into <= k contiguous, work-balanced blocks
        n_blocks = min(cluster.k, workflow.n_tasks)
        total_work = workflow.total_work()
        target = total_work / n_blocks if total_work > 0 else 0.0
        segments: List[List[Hashable]] = [[]]
        acc = 0.0
        for u in order:
            if (segments[-1] and acc >= target * len(segments)
                    and len(segments) < n_blocks):
                segments.append([])
            segments[-1].append(u)
            acc += workflow.work(u)

        seg_of = {u: i for i, seg in enumerate(segments) for u in seg}
        seg_work = [sum(workflow.work(u) for u in seg) for seg in segments]
        cut_cost: Dict[Tuple[int, int], float] = {}
        for u, v, c in workflow.edges():
            su, sv = seg_of[u], seg_of[v]
            if su != sv:
                cut_cost[(su, sv)] = cut_cost.get((su, sv), 0.0) + c

        # greedy earliest-finish-time placement, one distinct processor
        # per block, in block (priority) order
        chosen: List = []
        finish: List[float] = []
        available = list(procs)
        for i, _ in enumerate(segments):
            preds = [(j, cost) for (j, k2), cost in cut_cost.items() if k2 == i]
            best = None
            for p in available:
                ready = 0.0
                for j, cost in preds:
                    arrival = finish[j] + cost / cluster.link_bandwidth(chosen[j], p)
                    if arrival > ready:
                        ready = arrival
                eft = ready + seg_work[i] / p.speed
                key = (eft, -p.speed, p.name)
                if best is None or key < best[0]:
                    best = (key, p)
            proc = best[1]
            available.remove(proc)
            chosen.append(proc)
            finish.append(best[0][0])

        cache = RequirementCache(workflow)
        assignments = []
        for seg, proc in zip(segments, chosen):
            result = cache.requirement(seg)
            assignments.append(BlockAssignment(
                tasks=frozenset(seg), processor=proc,
                requirement=result.peak, traversal=result.order))
        return SchedulerOutput(
            mapping=Mapping(workflow, cluster, assignments, algorithm="HeftList"))


@register_algorithm(
    "cpack", display_name="CPack",
    capabilities=("makespan-optimizing", "list-scheduler", "memory-packing"),
    summary="greedy critical-path packer: decreasing upward-rank order cut "
            "into contiguous memory-feasible segments, packed onto distinct "
            "processors fastest-first; O(n log n) packing decisions, never "
            "violates the memory constraint")
class CPackScheduler:
    """The cheap contender (see :mod:`repro.core.cpack`); takes no config.

    Unlike ``heftlist`` it is memory-aware — every emitted block fits its
    processor — so it qualifies for the portfolio's default membership
    and gives the expensive heuristics a floor to beat on big instances.
    """

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[object] = None) -> SchedulerOutput:
        return SchedulerOutput(mapping=critical_path_pack(workflow, cluster))


@register_algorithm(
    "anneal", display_name="Anneal",
    config_cls=AnnealConfig,
    capabilities=("makespan-optimizing", "refinement", "seeded",
                  "configurable"),
    summary="simulated-annealing refinement (moves to idle processors + "
            "pairwise swaps, Metropolis acceptance) of the best DagHetPart "
            "mapping, priced entirely by the incremental makespan "
            "evaluator; deterministic per seed, never worse than its seed "
            "mapping")
class AnnealScheduler:
    """DagHetPart's best sweep mapping, refined by simulated annealing.

    The seed mapping comes from :func:`dag_het_part_sweep` (its ``k'``
    strategy is the config's ``k_prime_strategy``); the refinement then
    explores move/swap neighbours under a cooling schedule, pricing every
    candidate through :class:`~repro.core.evaluator.MakespanEvaluator` —
    zero full bottom-weight passes after the evaluator initializes. The
    best state ever visited is returned, so the result is never worse
    than the seed; the seed's makespan and the run's acceptance counts
    ride on ``SchedulerOutput.extra``.
    """

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[AnnealConfig] = None) -> SchedulerOutput:
        if config is not None and not isinstance(config, AnnealConfig):
            raise TypeError(
                f"anneal expects an AnnealConfig, got {type(config).__name__}")
        config = config or AnnealConfig()
        cache = RequirementCache(workflow)
        outcome = dag_het_part_sweep(
            workflow, cluster,
            config=DagHetPartConfig(k_prime_strategy=config.k_prime_strategy),
            cache=cache)
        if workflow.n_tasks == 0:
            return SchedulerOutput(mapping=outcome.mapping)

        q = outcome.mapping.to_quotient()
        evaluator = MakespanEvaluator(q, cluster)
        stats = anneal_refine(q, cluster, cache, config=config,
                              evaluator=evaluator)
        mapping = Mapping.from_quotient(q, cluster, cache, algorithm="Anneal")
        return SchedulerOutput(
            mapping=mapping,
            k_prime=outcome.k_prime,
            sweep=outcome.sweep,
            extra={
                "anneal_seed_makespan": stats.initial_makespan,
                "anneal_trials": stats.trials,
                "anneal_accepted": stats.accepted,
            })


@register_algorithm(
    "exact", display_name="Exact",
    config_cls=ExactConfig,
    capabilities=("exact", "reference", "makespan-optimizing",
                  "memory-packing", "tiny-only", "configurable"),
    summary="exhaustive reference solver for tiny instances (<= 8 tasks "
            "by default): enumerates every acyclic, memory-feasible set "
            "partition and branch-and-bounds processor-kind assignments "
            "under uniform bandwidth; provably optimal, used to measure "
            "heuristic optimality gaps")
class ExactScheduler:
    """The optimality yardstick (see :mod:`repro.core.exact`).

    Carries ``tiny-only`` so the portfolio's default capability filter
    never drafts it onto instances it would reject with ``ValueError``;
    searched-space counters ride on ``SchedulerOutput.extra``.
    """

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[ExactConfig] = None) -> SchedulerOutput:
        if config is not None and not isinstance(config, ExactConfig):
            raise TypeError(
                f"exact expects an ExactConfig, got {type(config).__name__}")
        mapping, stats = exact_schedule(workflow, cluster, config=config)
        return SchedulerOutput(mapping=mapping, extra=dict(stats))


@dataclass(frozen=True)
class PortfolioConfig:
    """Membership and execution knobs of the portfolio meta-scheduler.

    ``algorithms=None`` selects every registered algorithm whose
    capabilities avoid ``exclude_capabilities`` (by default: other meta
    schedulers, to prevent recursion; memory-oblivious baselines, whose
    mappings may violate the memory constraint the portfolio is supposed
    to respect; and tiny-only reference solvers, which raise on the
    instance sizes the portfolio usually sees). Members run with their
    default configs. ``parallel`` fans the member solves out over worker
    processes (0/1 = serial).
    """

    algorithms: Optional[Tuple[str, ...]] = None
    exclude_capabilities: Tuple[str, ...] = ("meta", "memory-oblivious",
                                             "tiny-only")
    parallel: int = 0

    def __post_init__(self):
        if self.algorithms is not None:
            object.__setattr__(self, "algorithms", tuple(self.algorithms))
            if not self.algorithms:
                raise ValueError("portfolio needs at least one algorithm")
        object.__setattr__(self, "exclude_capabilities",
                           tuple(self.exclude_capabilities))

    def fingerprint_fields(self) -> Dict[str, object]:
        """What the result cache should key on (see ``_config_key``).

        The *resolved* member list, not the raw fields: with
        ``algorithms=None`` the membership depends on the live registry,
        so registering a new algorithm must miss old cache lines instead
        of serving a stale winner. ``parallel`` is execution-only — two
        runs differing only in worker count compute the same result — so
        it is deliberately excluded.
        """
        return {"algorithms": list(resolve_portfolio_members(self))}


def resolve_portfolio_members(config: PortfolioConfig) -> Tuple[str, ...]:
    """The portfolio's member algorithms (canonical names, stable order).

    Explicit ``algorithms`` are resolved through the registry (unknown
    names raise, nested meta schedulers are rejected); ``None`` selects
    by capability filter in registry order.
    """
    if config.algorithms is not None:
        names = []
        for name in config.algorithms:
            info = get_algorithm(name)  # raises on unknown names
            if "meta" in info.capabilities:
                raise ValueError(
                    f"portfolio member {name!r} is itself a meta "
                    f"scheduler; nesting is not supported")
            names.append(info.name)
        return tuple(names)
    excluded = set(config.exclude_capabilities)
    return tuple(info.name for info in algorithm_infos()
                 if not (set(info.capabilities) & excluded))


@register_algorithm(
    "portfolio", display_name="Portfolio",
    config_cls=PortfolioConfig,
    capabilities=("meta", "makespan-optimizing", "configurable"),
    summary="meta-scheduler: runs a capability-filtered set of registered "
            "algorithms through solve_batch and keeps the best feasible "
            "mapping (argmin makespan, first member wins ties); the "
            "winner's name rides on the result's extra metadata")
class PortfolioScheduler:
    """Best-of-N over the registry: the per-request argmin of its members.

    Each member runs on the same (workflow, cluster) request via the
    batch façade, so member failures are captured per member and a
    single feasible mapping suffices; only when *every* member fails does
    the portfolio raise :class:`NoFeasibleMappingError`. The winning
    member's display name is reported as ``portfolio_winner`` in
    ``SchedulerOutput.extra`` (and thus on ``ScheduleResult.extra``),
    along with the winner's ``k_prime``/``sweep``.
    """

    def members(self, config: PortfolioConfig) -> Tuple[str, ...]:
        """Resolve the member list (see :func:`resolve_portfolio_members`)."""
        return resolve_portfolio_members(config)

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[PortfolioConfig] = None) -> SchedulerOutput:
        # lazy: repro.api.batch imports the registry this module populates
        from repro.api.batch import solve_batch
        from repro.api.envelopes import ScheduleRequest

        if config is not None and not isinstance(config, PortfolioConfig):
            raise TypeError(
                f"portfolio expects a PortfolioConfig, got "
                f"{type(config).__name__}")
        config = config or PortfolioConfig()
        members = self.members(config)
        if not members:
            raise ValueError(
                "portfolio has no members after capability filtering; "
                "pass PortfolioConfig(algorithms=...) explicitly")

        requests = [ScheduleRequest(workflow=workflow, cluster=cluster,
                                    algorithm=name, want_mapping=True)
                    for name in members]
        results = solve_batch(requests, parallel=config.parallel)

        best = None
        for result in results:
            if result.success and result.mapping is not None \
                    and (best is None or result.makespan < best.makespan):
                best = result
        if best is None:
            raise NoFeasibleMappingError(
                f"portfolio: none of {len(members)} member algorithm(s) "
                f"({', '.join(members)}) found a feasible mapping of "
                f"{workflow.name!r} onto {cluster.name!r}",
                unplaced_tasks=workflow.n_tasks)
        return SchedulerOutput(
            mapping=best.mapping,
            k_prime=best.k_prime,
            sweep=best.sweep,
            extra={
                "portfolio_winner": best.algorithm,
                "portfolio_members": ",".join(members),
            })
