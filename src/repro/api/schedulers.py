"""The paper's two algorithms, registered as pluggable schedulers.

Importing :mod:`repro.api` loads this module, which populates the registry
with ``daghetmem`` (Section 4.1 baseline) and ``daghetpart`` (Section 4.2
four-step heuristic). Third-party algorithms register the same way; see
:func:`repro.api.registry.register_algorithm`.
"""

from __future__ import annotations

from typing import Optional

from repro.api.envelopes import SchedulerOutput
from repro.api.registry import register_algorithm
from repro.core.baseline import dag_het_mem
from repro.core.heuristic import DagHetPartConfig, dag_het_part_sweep
from repro.platform.cluster import Cluster
from repro.workflow.graph import Workflow


@register_algorithm(
    "daghetmem", display_name="DagHetMem",
    capabilities=("baseline", "memory-packing"),
    summary="memory-optimal traversal packed greedily onto processors by "
            "decreasing memory (Section 4.1); no makespan optimization")
class DagHetMemScheduler:
    """The validity baseline; takes no config."""

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[object] = None) -> SchedulerOutput:
        return SchedulerOutput(mapping=dag_het_mem(workflow, cluster))


@register_algorithm(
    "daghetpart", display_name="DagHetPart",
    config_cls=DagHetPartConfig,
    capabilities=("makespan-optimizing", "k-prime-sweep", "configurable"),
    summary="acyclic partition + BiggestAssign + merge-unassigned + swap "
            "local search over the k' sweep (Section 4.2)")
class DagHetPartScheduler:
    """The four-step heuristic; reports the winning ``k'`` and sweep trace."""

    def run(self, workflow: Workflow, cluster: Cluster,
            config: Optional[DagHetPartConfig] = None) -> SchedulerOutput:
        if config is not None and not isinstance(config, DagHetPartConfig):
            raise TypeError(
                f"daghetpart expects a DagHetPartConfig, got "
                f"{type(config).__name__}")
        outcome = dag_het_part_sweep(workflow, cluster, config=config)
        return SchedulerOutput(mapping=outcome.mapping,
                               k_prime=outcome.k_prime,
                               sweep=outcome.sweep)
