"""A small blocking client for the service (urllib, zero dependencies).

The service speaks plain HTTP/JSON, so any client works — this one
exists for the repo's own consumers: ``examples/service_demo.py``, the
test suite, and the CI smoke leg. It intentionally mirrors the endpoint
surface one-to-one instead of abstracting over it; the docstrings double
as endpoint documentation.

>>> client = ServiceClient("http://127.0.0.1:8533")        # doctest: +SKIP
>>> job = client.submit_schedule(request.to_dict())         # doctest: +SKIP
>>> final = client.wait(job["id"])                          # doctest: +SKIP
>>> final["result"]["results"][0]["makespan"]               # doctest: +SKIP
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Optional


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and decoded body."""

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")


class ServiceClient:
    """Blocking convenience wrapper over one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _call(self, method: str, path: str,
              payload: Optional[Dict[str, Any]] = None) -> Any:
        body = None if payload is None else \
            json.dumps(payload, sort_keys=True).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                decoded = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                decoded = {"error": str(exc)}
            raise ServiceError(exc.code, decoded) from None

    # -- submissions ----------------------------------------------------
    def submit_schedule(self, request_dict: Dict[str, Any]) -> Dict[str, Any]:
        """POST /v1/schedule — body is ``ScheduleRequest.to_dict()``."""
        return self._call("POST", "/v1/schedule", request_dict)

    def submit_scenario(self, spec_dict: Dict[str, Any]) -> Dict[str, Any]:
        """POST /v1/scenarios — body is ``ScenarioSpec.to_dict()``."""
        return self._call("POST", "/v1/scenarios", spec_dict)

    # -- polling --------------------------------------------------------
    def job(self, job_id: str) -> Dict[str, Any]:
        """GET /v1/jobs/{id} — status, plus the result once ``done``."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        """GET /v1/jobs — every job id with its current state."""
        return self._call("GET", "/v1/jobs")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the final job view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["status"]["state"] in ("done", "failed", "crashed"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['status']['state']!r} "
                    f"after {timeout:g}s")
            time.sleep(poll_s)

    # -- streaming ------------------------------------------------------
    def events(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[Dict[str, Any]]:
        """GET /v1/jobs/{id}/events — yields decoded ndjson events.

        The stream ends when the server sends the job's ``end`` event
        (urllib undoes the chunked transfer encoding transparently).
        """
        request = urllib.request.Request(
            self.base_url + f"/v1/jobs/{job_id}/events")
        with urllib.request.urlopen(
                request, timeout=timeout or self.timeout) as response:
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    # -- observability --------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """GET /healthz."""
        return self._call("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """GET /v1/stats."""
        return self._call("GET", "/v1/stats")

    # -- lifecycle ------------------------------------------------------
    def shutdown(self) -> Dict[str, Any]:
        """POST /v1/shutdown — begins the graceful drain."""
        return self._call("POST", "/v1/shutdown")
