"""Frozen job envelopes of the scheduling service.

A :class:`JobSpec` says *what* a client submitted — one
:class:`~repro.api.envelopes.ScheduleRequest` (kind ``"schedule"``) or a
whole :class:`~repro.api.scenario.ScenarioSpec` (kind ``"scenario"``),
carried as the envelope's own ``to_dict`` payload, so a job record is
exactly the offline wire format plus a job id. A :class:`JobStatus` says
*where the job is* in its lifecycle; a :class:`JobResult` says *what came
out* — the per-request :class:`~repro.api.envelopes.ScheduleResult`
dicts (bit-identical to an offline ``scenario run`` of the same spec,
modulo measured runtimes) plus the job-level tallies the stats surface
reports.

All three are JSON round-trippable exactly like the PR 2/3 envelopes
(``to_json``/``from_json``, strict RFC 8259, sorted keys), so the
append-only job store is a plain JSONL file and a restarted server
rehydrates every record without bespoke parsing.

Lifecycle::

    queued -> running -> done | failed
                  \\-> crashed           (server died mid-run; recorded
                                          by the *next* server on restart)

``failed`` means the job ran to completion but an internal error kept it
from producing results (e.g. an unregisterable algorithm name that
slipped past submission validation); per-request scheduling failures are
*not* job failures — they come back as structured ``FailureInfo`` on the
individual results, exactly as offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping as TMapping, Optional, Tuple

#: the two payload kinds a job can carry
JOB_KINDS = ("schedule", "scenario")

#: every state a job can be in (see the module docstring for the graph)
JOB_STATES = ("queued", "running", "done", "failed", "crashed")

#: states from which a job will never move again
TERMINAL_STATES = ("done", "failed", "crashed")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class JobSpec:
    """One submitted job: an id, a payload kind, and the payload itself.

    ``payload`` is the submitted envelope's ``to_dict`` form —
    ``ScheduleRequest.to_dict()`` for ``kind="schedule"``,
    ``ScenarioSpec.to_dict()`` for ``kind="scenario"`` — validated by the
    submission endpoint (it rebuilds the envelope before accepting the
    job, so a stored spec always rehydrates). ``tags`` are client
    correlation metadata, travelling on the job like request tags travel
    on results; ``submitted_at`` is a unix timestamp.
    """

    id: str
    kind: str
    payload: TMapping[str, Any]
    submitted_at: float = 0.0
    tags: TMapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        _require(bool(self.id), "a job needs a non-empty id")
        _require(self.kind in JOB_KINDS,
                 f"unknown job kind {self.kind!r}; valid: {', '.join(JOB_KINDS)}")
        _require(isinstance(self.payload, TMapping),
                 f"payload must be a mapping, got {type(self.payload).__name__}")
        object.__setattr__(self, "payload", dict(self.payload))
        object.__setattr__(self, "tags", dict(self.tags))

    # ------------------------------------------------------------------
    def build_requests(self):
        """Rehydrate the payload into a list of ``ScheduleRequest``.

        Single-schedule payloads always come back with
        ``want_mapping=False``: the live mapping neither serializes into
        the job store nor survives the HTTP boundary, so the service
        variant of a request is the cacheable one.
        """
        from repro.api.envelopes import ScheduleRequest
        from repro.api.scenario import ScenarioSpec, expand

        if self.kind == "schedule":
            request = ScheduleRequest.from_dict(self.payload)
            if request.want_mapping:
                request = replace(request, want_mapping=False)
            return [request]
        return list(expand(ScenarioSpec.from_dict(self.payload)))

    def total_requests(self) -> int:
        """How many requests the payload expands to (cheap; no workflows)."""
        from repro.api.scenario import ScenarioSpec

        if self.kind == "schedule":
            return 1
        return ScenarioSpec.from_dict(self.payload).size()

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.id, "kind": self.kind,
                "payload": dict(self.payload),
                "submitted_at": self.submitted_at,
                "tags": dict(self.tags)}

    @classmethod
    def from_dict(cls, data: TMapping[str, Any]) -> "JobSpec":
        return cls(id=data["id"], kind=data["kind"],
                   payload=data["payload"],
                   submitted_at=float(data.get("submitted_at", 0.0)),
                   tags=dict(data.get("tags", {})))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class JobStatus:
    """Where one job is in its lifecycle, plus live progress counters.

    ``total`` is the request count the payload expands to; ``completed``
    / ``ok`` / ``failed`` / ``timeouts`` tick per finished request while
    the job runs (``failed`` counts infeasible requests, ``timeouts``
    policy timeouts — both are *request* outcomes, not job outcomes).
    ``error`` is set only on ``failed``/``crashed`` jobs.
    """

    id: str
    state: str = "queued"
    total: int = 0
    completed: int = 0
    ok: int = 0
    failed: int = 0
    timeouts: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None

    def __post_init__(self):
        _require(bool(self.id), "a job status needs a non-empty id")
        _require(self.state in JOB_STATES,
                 f"unknown job state {self.state!r}; "
                 f"valid: {', '.join(JOB_STATES)}")
        for name in ("total", "completed", "ok", "failed", "timeouts"):
            _require(getattr(self, name) >= 0, f"{name} must be >= 0")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.id, "state": self.state, "total": self.total,
                "completed": self.completed, "ok": self.ok,
                "failed": self.failed, "timeouts": self.timeouts,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error}

    @classmethod
    def from_dict(cls, data: TMapping[str, Any]) -> "JobStatus":
        started = data.get("started_at")
        finished = data.get("finished_at")
        return cls(
            id=data["id"], state=data.get("state", "queued"),
            total=int(data.get("total", 0)),
            completed=int(data.get("completed", 0)),
            ok=int(data.get("ok", 0)),
            failed=int(data.get("failed", 0)),
            timeouts=int(data.get("timeouts", 0)),
            submitted_at=float(data.get("submitted_at", 0.0)),
            started_at=None if started is None else float(started),
            finished_at=None if finished is None else float(finished),
            error=data.get("error"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "JobStatus":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class JobResult:
    """What a finished job produced.

    ``results`` holds one ``ScheduleResult.to_dict()`` per request, in
    expansion order — the same records an offline ``scenario run --json``
    writes, so ``repro scenario diff`` aligns a job dump against an
    offline dump directly. ``cache_hits``/``cache_misses`` are the
    job's *delta* on the shared result cache (exact when jobs run one at
    a time, approximate under concurrent jobs sharing one cache);
    ``elapsed_s`` is the job's wall-clock from start to finish.
    """

    id: str
    results: Tuple[TMapping[str, Any], ...] = ()
    n_ok: int = 0
    n_failed: int = 0
    n_timeout: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0

    def __post_init__(self):
        _require(bool(self.id), "a job result needs a non-empty id")
        object.__setattr__(self, "results",
                           tuple(dict(r) for r in self.results))
        for name in ("n_ok", "n_failed", "n_timeout",
                     "cache_hits", "cache_misses"):
            _require(getattr(self, name) >= 0, f"{name} must be >= 0")

    def schedule_results(self):
        """The stored records rehydrated as ``ScheduleResult`` envelopes."""
        from repro.api.envelopes import ScheduleResult

        return [ScheduleResult.from_dict(r) for r in self.results]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.id, "results": [dict(r) for r in self.results],
                "n_ok": self.n_ok, "n_failed": self.n_failed,
                "n_timeout": self.n_timeout,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "elapsed_s": self.elapsed_s}

    @classmethod
    def from_dict(cls, data: TMapping[str, Any]) -> "JobResult":
        return cls(
            id=data["id"],
            results=tuple(data.get("results", ())),
            n_ok=int(data.get("n_ok", 0)),
            n_failed=int(data.get("n_failed", 0)),
            n_timeout=int(data.get("n_timeout", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "JobResult":
        return cls.from_dict(json.loads(text))
