"""Append-only JSONL job store with `ResultCache`-style crash semantics.

One directory, one ``jobs.jsonl`` file, one JSON object per line::

    {"type": "spec",   "job": <JobSpec.to_dict()>}
    {"type": "status", "job": <JobStatus.to_dict()>}
    {"type": "result", "job": <JobResult.to_dict()>}

The store is event-sourced: a job's history is its sequence of lines,
and its current state is the *last* status line for its id. Nothing is
ever rewritten — crash durability is the same contract as the result
cache (:class:`repro.api.cache.ResultCache`): every append is flushed
line-by-line, a truncated final line (the crash artifact) is skipped on
load, and the next writer terminates the torn fragment before appending
so the file self-repairs.

Memory stays bounded the same way too: specs and statuses are small and
kept in memory, but result payloads (which carry every per-request
record of a scenario job) are indexed by byte offset and read back
lazily on :meth:`JobStore.result`.

:meth:`JobStore.recover` is the restart contract: jobs that were
``queued`` when the previous server died are simply still queued (the
new dispatcher re-enqueues them); jobs that were ``running`` are marked
``crashed`` — the server cannot know how far they got, so it reports
the truth rather than resuming mid-batch. Progress ticks are *not*
persisted per request (that would write O(requests) status lines); the
store sees queued → running → terminal, and live progress counters flow
through the dispatcher's in-memory view instead.

All methods are thread-safe: the dispatcher finishes jobs from worker
threads while the asyncio loop reads statuses for poll requests.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterator, List, Optional, Tuple

from repro.service.jobs import JobResult, JobSpec, JobStatus

#: file name of the job log inside its directory
STORE_FILENAME = "jobs.jsonl"

#: line types the store knows how to replay
LINE_TYPES = ("spec", "status", "result")


class JobStore:
    """Durable record of every job a server ever accepted.

    >>> store = JobStore("service-store/")      # doctest: +SKIP
    >>> store.submit(spec)                      # doctest: +SKIP
    >>> store.status(spec.id).state             # doctest: +SKIP
    'queued'
    """

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, STORE_FILENAME)
        self._lock = threading.Lock()
        self._specs: Dict[str, JobSpec] = {}
        self._statuses: Dict[str, JobStatus] = {}
        #: job id -> byte offset of its result line (payloads stay on disk)
        self._result_offsets: Dict[str, int] = {}
        self._order: List[str] = []  # submission order of job ids
        self._fh = None   # append handle (binary), opened on first append
        self._rfh = None  # read handle (binary), opened on first result read
        self._load()

    # -- replay ---------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            offset = 0
            for line in fh:
                entry = self._parse(line)
                if entry is not None:
                    self._replay(entry, offset)
                offset += len(line)

    @staticmethod
    def _parse(line: bytes) -> Optional[Dict]:
        line = line.strip()
        if not line:
            return None
        try:
            entry = json.loads(line.decode("utf-8"))
            if entry.get("type") not in LINE_TYPES:
                return None
            entry["job"]["id"]
            return entry
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            # a truncated/corrupt line (crashed writer); skip it — at
            # worst the affected job replays one state older than it was
            return None

    def _replay(self, entry: Dict, offset: int) -> None:
        kind, payload = entry["type"], entry["job"]
        try:
            if kind == "spec":
                spec = JobSpec.from_dict(payload)
                if spec.id not in self._specs:
                    self._order.append(spec.id)
                self._specs[spec.id] = spec
            elif kind == "status":
                self._statuses[payload["id"]] = JobStatus.from_dict(payload)
            else:
                # the payload is validated lazily on read; only the
                # offset is kept so huge scenario results cost nothing
                self._result_offsets[payload["id"]] = offset
        except (ValueError, KeyError, TypeError):
            pass  # same contract as _parse: a bad record is skipped

    # -- appends --------------------------------------------------------
    def _append(self, kind: str, payload: Dict) -> int:
        """Write one line; returns its byte offset. Caller holds the lock."""
        if self._fh is None:
            # terminate a torn fragment left by a crashed writer so the
            # new line starts cleanly (ResultCache's repair contract)
            torn = False
            if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
                with open(self.path, "rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    torn = fh.read(1) != b"\n"
            self._fh = open(self.path, "ab")
            if torn:
                self._fh.write(b"\n")
                self._fh.flush()
        line = json.dumps({"type": kind, "job": payload},
                          sort_keys=True, allow_nan=False).encode("utf-8")
        offset = os.fstat(self._fh.fileno()).st_size
        self._fh.write(line + b"\n")
        self._fh.flush()
        return offset

    # -- the write API --------------------------------------------------
    def submit(self, spec: JobSpec) -> JobStatus:
        """Record a new job: its spec plus an initial ``queued`` status."""
        with self._lock:
            if spec.id in self._specs:
                raise ValueError(f"job id {spec.id!r} already exists")
            status = JobStatus(id=spec.id, state="queued",
                               total=spec.total_requests(),
                               submitted_at=spec.submitted_at)
            self._append("spec", spec.to_dict())
            self._append("status", status.to_dict())
            self._specs[spec.id] = spec
            self._statuses[spec.id] = status
            self._order.append(spec.id)
            return status

    def update(self, status: JobStatus) -> None:
        """Persist a status transition (queued → running → terminal)."""
        with self._lock:
            if status.id not in self._specs:
                raise KeyError(f"unknown job id {status.id!r}")
            self._append("status", status.to_dict())
            self._statuses[status.id] = status

    def finish(self, status: JobStatus, result: Optional[JobResult]) -> None:
        """Persist a terminal status and (for ``done`` jobs) the result.

        The result line goes first: if the process dies between the two
        appends, the replayed job shows ``running`` (and recovery marks
        it ``crashed``) rather than claiming ``done`` without a result.
        """
        if not status.terminal:
            raise ValueError(f"finish() needs a terminal state, "
                             f"got {status.state!r}")
        with self._lock:
            if status.id not in self._specs:
                raise KeyError(f"unknown job id {status.id!r}")
            if result is not None:
                offset = self._append("result", result.to_dict())
                self._result_offsets[status.id] = offset
            self._append("status", status.to_dict())
            self._statuses[status.id] = status

    # -- the read API ---------------------------------------------------
    def spec(self, job_id: str) -> Optional[JobSpec]:
        with self._lock:
            return self._specs.get(job_id)

    def status(self, job_id: str) -> Optional[JobStatus]:
        with self._lock:
            return self._statuses.get(job_id)

    def result(self, job_id: str) -> Optional[JobResult]:
        """The stored result, read back lazily from its byte offset."""
        with self._lock:
            offset = self._result_offsets.get(job_id)
            if offset is None:
                return None
            if self._rfh is None:
                self._rfh = open(self.path, "rb")
            self._rfh.seek(offset)
            entry = self._parse(self._rfh.readline())
        if entry is None:  # defensive: index said yes, disk disagrees
            return None
        try:
            return JobResult.from_dict(entry["job"])
        except (ValueError, KeyError, TypeError):
            return None

    def jobs(self) -> List[str]:
        """Every known job id, in submission order."""
        with self._lock:
            return list(self._order)

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._specs

    def counts(self) -> Dict[str, int]:
        """How many jobs sit in each state (for ``/v1/stats``)."""
        with self._lock:
            out: Dict[str, int] = {}
            for status in self._statuses.values():
                out[status.state] = out.get(status.state, 0) + 1
            return out

    # -- restart --------------------------------------------------------
    def recover(self) -> Tuple[List[str], List[str]]:
        """Reconcile jobs left over by a dead server.

        Returns ``(requeued, crashed)``: ids still ``queued`` (the new
        dispatcher should enqueue them again) and ids that were
        ``running`` when the previous process died — those are marked
        ``crashed`` durably, because the server cannot know how much of
        a half-run batch completed and must not silently re-run it.
        """
        import dataclasses

        requeued: List[str] = []
        crashed: List[str] = []
        with self._lock:
            for job_id in self._order:
                status = self._statuses.get(job_id)
                if status is None:
                    # spec line survived but its status line was torn
                    # off by the crash: treat as freshly queued
                    status = JobStatus(
                        id=job_id, state="queued",
                        total=self._specs[job_id].total_requests(),
                        submitted_at=self._specs[job_id].submitted_at)
                    self._append("status", status.to_dict())
                    self._statuses[job_id] = status
                if status.state == "queued":
                    requeued.append(job_id)
                elif status.state == "running":
                    tombstone = dataclasses.replace(
                        status, state="crashed",
                        error="server terminated while the job was running")
                    self._append("status", tombstone.to_dict())
                    self._statuses[job_id] = tombstone
                    crashed.append(job_id)
        return requeued, crashed

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            for handle in (self._fh, self._rfh):
                if handle is not None:
                    handle.close()
            self._fh = self._rfh = None

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
