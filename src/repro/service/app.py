"""The HTTP/JSON front door: a raw-asyncio server over the dispatcher.

No web framework and no ``http.server`` — the protocol surface the
service needs (HTTP/1.1 keep-alive, JSON bodies, chunked streaming for
the event feed) is small enough to speak directly over
:func:`asyncio.start_server`, which keeps the whole subsystem inside the
stdlib-plus-numpy dependency budget of the repo.

Endpoints (see the README's service section for the curl quickstart):

==============================  =======================================
``POST /v1/schedule``           submit one ``ScheduleRequest`` → job id
``POST /v1/scenarios``          submit a full ``ScenarioSpec`` → job id
``GET /v1/jobs``                every job id with its current state
``GET /v1/jobs/{id}``           status (+ result once terminal)
``GET /v1/jobs/{id}/events``    chunked ndjson progress stream
``GET /v1/stats``               dispatcher/cache/backend counters
``GET /healthz``                liveness (``ok`` | ``draining``)
``POST /v1/shutdown``           graceful drain + exit (also SIGTERM)
==============================  =======================================

Graceful shutdown — whether triggered by ``POST /v1/shutdown``, SIGTERM,
or SIGINT — follows one sequence: new submissions start failing with 503
immediately, every accepted job runs to completion and lands durably in
the job store, event streams see their end events, and only then do the
listener, store, and cache close. A ``kill -9`` instead exercises the
store's crash contract: the next server reports the interrupted jobs as
``crashed`` and re-enqueues the ones that never started.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, Optional, Tuple

from repro.service.dispatcher import Dispatcher, ServiceDraining
from repro.service.store import JobStore

#: request bodies above this are rejected with 413 (a full scenario spec
#: is a few KB; the ceiling only guards against nonsense)
MAX_BODY_BYTES = 64 * 1024 * 1024

#: listen backlog — must exceed the load test's connection burst
LISTEN_BACKLOG = 2048

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}


class ServiceApp:
    """One running service: store + cache + dispatcher + HTTP listener."""

    def __init__(self, store_dir: str, cache=None,
                 backend: Optional[str] = None, workers: int = 2,
                 parallel: int = 0):
        from repro.api.cache import open_cache

        self.store = JobStore(store_dir)
        self._own_cache = isinstance(cache, str)
        self.cache = open_cache(cache) if cache is not None else None
        self.dispatcher = Dispatcher(self.store, cache=self.cache,
                                     backend=backend, workers=workers,
                                     parallel=parallel)
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown_started = False
        self._done = asyncio.Event()
        self.recovered: Tuple[Tuple[str, ...], Tuple[str, ...]] = ((), ())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Recover the store, start workers, bind the listener."""
        requeued, crashed = await self.dispatcher.start()
        self.recovered = (tuple(requeued), tuple(crashed))
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port, backlog=LISTEN_BACKLOG)

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; 0 → ephemeral)."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.shutdown()))
            except NotImplementedError:  # non-unix event loops
                pass

    async def shutdown(self) -> None:
        """Drain everything, persist everything, then stop (idempotent)."""
        if self._shutdown_started:
            await self._done.wait()
            return
        self._shutdown_started = True
        await self.dispatcher.drain()
        await self.dispatcher.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.cache is not None and self._own_cache:
            self.cache.close()
        self.store.close()
        self._done.set()

    async def wait_closed(self) -> None:
        await self._done.wait()

    # ------------------------------------------------------------------
    # the connection loop
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return  # client closed the keep-alive connection
                except asyncio.LimitOverrunError:
                    await self._respond(writer, 431,
                                        {"error": "request head too large"},
                                        keep=False)
                    return
                try:
                    method, target, headers = self._parse_head(head)
                except ValueError as exc:
                    await self._respond(writer, 400, {"error": str(exc)},
                                        keep=False)
                    return
                length = int(headers.get("content-length", "0") or "0")
                if length > MAX_BODY_BYTES:
                    await self._respond(writer, 413,
                                        {"error": "request body too large"},
                                        keep=False)
                    return
                body = await reader.readexactly(length) if length else b""
                keep = headers.get("connection", "").lower() != "close"
                streamed = await self._route(method, target, body,
                                             writer, keep)
                if streamed or not keep:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 — already torn down
                pass

    @staticmethod
    def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as exc:
            raise ValueError("undecodable request head") from exc
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ValueError(f"malformed request line {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return parts[0].upper(), parts[1], headers

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, target: str, body: bytes,
                     writer: asyncio.StreamWriter, keep: bool) -> bool:
        """Dispatch one request; returns True when the response streamed
        (the connection is finished either way then)."""
        path = target.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/healthz":
                if method != "GET":
                    return await self._method_not_allowed(writer, keep)
                stats = self.dispatcher.stats()
                await self._respond(writer, 200, {
                    "status": "draining" if self.dispatcher.draining
                    else "ok",
                    "uptime_s": stats["uptime_s"],
                    "jobs": stats["jobs"]}, keep=keep)
            elif path == "/v1/stats":
                if method != "GET":
                    return await self._method_not_allowed(writer, keep)
                await self._respond(writer, 200, self.dispatcher.stats(),
                                    keep=keep)
            elif path in ("/v1/schedule", "/v1/scenarios"):
                if method != "POST":
                    return await self._method_not_allowed(writer, keep)
                kind = "schedule" if path == "/v1/schedule" else "scenario"
                await self._submit(writer, kind, body, keep)
            elif path == "/v1/jobs":
                if method != "GET":
                    return await self._method_not_allowed(writer, keep)
                jobs = []
                for job_id in self.store.jobs():
                    status = self.dispatcher.status_view(job_id)
                    if status is not None:
                        jobs.append({"id": job_id, "state": status.state,
                                     "completed": status.completed,
                                     "total": status.total})
                await self._respond(writer, 200, {"jobs": jobs}, keep=keep)
            elif path.startswith("/v1/jobs/") and path.endswith("/events"):
                if method != "GET":
                    return await self._method_not_allowed(writer, keep)
                job_id = path[len("/v1/jobs/"):-len("/events")]
                return await self._stream_events(writer, job_id, keep)
            elif path.startswith("/v1/jobs/"):
                if method != "GET":
                    return await self._method_not_allowed(writer, keep)
                await self._job_view(writer, path[len("/v1/jobs/"):], keep)
            elif path == "/v1/shutdown":
                if method != "POST":
                    return await self._method_not_allowed(writer, keep)
                await self._respond(writer, 202, {"status": "draining"},
                                    keep=keep)
                asyncio.ensure_future(self.shutdown())
            else:
                await self._respond(writer, 404,
                                    {"error": f"no route for {path!r}"},
                                    keep=keep)
        except (ConnectionResetError, BrokenPipeError):
            return True
        except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the loop
            await self._respond(
                writer, 500,
                {"error": f"{type(exc).__name__}: {exc}"}, keep=keep)
        return False

    async def _submit(self, writer: asyncio.StreamWriter, kind: str,
                      body: bytes, keep: bool) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            await self._respond(writer, 400,
                                {"error": f"invalid JSON body: {exc}"},
                                keep=keep)
            return
        if not isinstance(payload, dict):
            await self._respond(
                writer, 400,
                {"error": "body must be a JSON object (the envelope's "
                          "to_dict form)"}, keep=keep)
            return
        try:
            status = self.dispatcher.submit(kind, payload)
        except ServiceDraining as exc:
            await self._respond(writer, 503, {"error": str(exc)}, keep=keep)
            return
        except (ValueError, TypeError, KeyError) as exc:
            await self._respond(
                writer, 400,
                {"error": f"invalid {kind} payload: "
                          f"{type(exc).__name__}: {exc}"}, keep=keep)
            return
        await self._respond(writer, 202,
                            {"id": status.id, "state": status.state,
                             "total": status.total}, keep=keep)

    async def _job_view(self, writer: asyncio.StreamWriter, job_id: str,
                        keep: bool) -> None:
        status = self.dispatcher.status_view(job_id)
        if status is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {job_id!r}"},
                                keep=keep)
            return
        spec = self.store.spec(job_id)
        view: Dict[str, Any] = {
            "id": job_id,
            "kind": spec.kind if spec is not None else None,
            "tags": dict(spec.tags) if spec is not None else {},
            "status": status.to_dict(),
            "result": None,
        }
        if status.state == "done":
            result = self.store.result(job_id)
            if result is not None:
                view["result"] = result.to_dict()
        await self._respond(writer, 200, view, keep=keep)

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job_id: str, keep: bool) -> bool:
        if self.store.status(job_id) is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {job_id!r}"},
                                keep=keep)
            return False
        queue = self.dispatcher.subscribe(job_id)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        try:
            await writer.drain()
            while True:
                event = await queue.get()
                if event is None:
                    break
                data = (json.dumps(event, sort_keys=True) + "\n"
                        ).encode("utf-8")
                writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.dispatcher.unsubscribe(job_id, queue)
        return True

    async def _method_not_allowed(self, writer: asyncio.StreamWriter,
                                  keep: bool) -> bool:
        await self._respond(writer, 405, {"error": "method not allowed"},
                            keep=keep)
        return False

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, code: int,
                       payload: Dict[str, Any], keep: bool = True) -> None:
        body = (json.dumps(payload, sort_keys=True, allow_nan=False) + "\n"
                ).encode("utf-8")
        head = (f"HTTP/1.1 {code} {_REASONS.get(code, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep else 'close'}\r\n"
                f"\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def serve(host: str, port: int, store_dir: str, cache=None,
                backend: Optional[str] = None, workers: int = 2,
                parallel: int = 0, announce=print) -> None:
    """Run a service until SIGTERM/SIGINT or ``POST /v1/shutdown``."""
    app = ServiceApp(store_dir, cache=cache, backend=backend,
                     workers=workers, parallel=parallel)
    await app.start(host=host, port=port)
    app.install_signal_handlers()
    requeued, crashed = app.recovered
    if announce is not None:
        announce(f"repro service listening on http://{host}:{app.port}")
        announce(f"store     : {store_dir}")
        if requeued or crashed:
            announce(f"recovered : requeued={len(requeued)} "
                     f"crashed={len(crashed)}")
    await app.wait_closed()
    if announce is not None:
        announce("service drained and stopped")
