"""Scheduling-as-a-service: the async HTTP layer over ``repro.api``.

The wire format was frozen in PRs 2/3 (``ScheduleRequest`` /
``ScenarioSpec`` round-trip JSON), execution became pluggable in PR 5 —
this package adds the missing front door: a long-running asyncio
HTTP/JSON server (``repro serve``) with a durable job store, live
stats, streaming progress, and a load-test regression gate
(``BENCH_service.json``).

Layering, bottom up:

* :mod:`repro.service.jobs` — frozen ``JobSpec``/``JobStatus``/
  ``JobResult`` envelopes;
* :mod:`repro.service.store` — the append-only JSONL job store with
  ``ResultCache``-style torn-line crash repair;
* :mod:`repro.service.dispatcher` — asyncio queue + worker threads
  feeding :func:`repro.api.batch.iter_solve_batch`;
* :mod:`repro.service.app` — the HTTP listener and graceful shutdown;
* :mod:`repro.service.client` — a blocking urllib client;
* :mod:`repro.service.loadtest` — the throughput/latency benchmark
  behind ``repro serve --loadtest``.
"""

from repro.service.app import ServiceApp, serve
from repro.service.client import ServiceClient, ServiceError
from repro.service.dispatcher import Dispatcher, ServiceDraining
from repro.service.jobs import JobResult, JobSpec, JobStatus
from repro.service.store import JobStore

__all__ = [
    "Dispatcher",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "JobStore",
    "ServiceApp",
    "ServiceClient",
    "ServiceDraining",
    "ServiceError",
    "serve",
]
