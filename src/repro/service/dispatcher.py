"""The service's job engine: an asyncio queue feeding worker threads.

The dispatcher owns the job lifecycle between "accepted" and "terminal".
Accepted jobs go onto an :class:`asyncio.Queue`; ``workers`` async
worker tasks pull ids and run each job to completion on a dedicated
:class:`~concurrent.futures.ThreadPoolExecutor` — the solve itself is
plain blocking Python, so the event loop stays free to answer polls and
stream events while jobs grind. Inside the worker thread a job is
exactly an offline run: the stored payload rehydrates to
:class:`~repro.api.envelopes.ScheduleRequest` envelopes and streams
through :func:`~repro.api.batch.iter_solve_batch` with the same cache,
backend routing, and :class:`~repro.api.exec.policy.ExecutionPolicy`
enforcement as ``repro scenario run`` — which is what makes the
service's records bit-identical to offline ones (modulo measured
runtimes).

Worker threads are named ``repro-serve-*`` on purpose: the nested-batch
guard in :func:`repro.api.exec.routing.route` forces *serial* routing
only inside ``repro-exec*`` threads, so a job running on a service
worker can still fan out over the thread/process backends exactly as it
would offline.

Concurrency notes: the shared :class:`~repro.api.cache.CacheBackend` is
wrapped in a lock (both stores assume one writer), and all cross-thread
signalling into asyncio-land goes through ``loop.call_soon_threadsafe``.

The :meth:`hold`/:meth:`release` gate exists for the load test: with the
gate held, accepted jobs pile up in the queue (workers park before
touching a job), so "N concurrent submissions in the system" is exact
and reproducible; releasing the gate starts the drain. The gate is open
by default and normal service operation never touches it.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.service.jobs import JobResult, JobSpec, JobStatus
from repro.service.store import JobStore

#: worker threads carry this prefix so the nested-batch guard in
#: ``route()`` (which keys on "repro-exec") never fires for service jobs
WORKER_THREAD_PREFIX = "repro-serve"


class ServiceDraining(RuntimeError):
    """Raised on submission once shutdown has begun (the HTTP 503)."""


class _LockedCache:
    """A thread-safe shim over one shared :class:`CacheBackend`.

    Both shipped cache backends assume a single writer (the batch
    parent); the service runs many batch parents — one per worker
    thread — against one cache, so every access is serialized here.
    ``fingerprint`` stays lock-free (it is a pure hash of the request).
    """

    def __init__(self, inner):
        self.inner = inner
        self._lock = threading.Lock()

    def fingerprint(self, request):
        return self.inner.fingerprint(request)

    def get(self, fingerprint, request=None):
        with self._lock:
            return self.inner.get(fingerprint, request)

    def put(self, fingerprint, result):
        with self._lock:
            self.inner.put(fingerprint, result)

    def __contains__(self, fingerprint):
        with self._lock:
            return fingerprint in self.inner

    def __len__(self):
        with self._lock:
            return len(self.inner)

    def stats(self):
        with self._lock:
            return self.inner.stats()

    def close(self):
        with self._lock:
            self.inner.close()


class Dispatcher:
    """Runs accepted jobs; the single source of truth for live progress.

    ``backend``/``parallel`` are the service-wide execution defaults; a
    scenario job whose spec carries an ``execution`` block falls back to
    that block's ``backend``/``parallel`` exactly as ``run_scenario``
    does when no explicit argument overrides it.
    """

    def __init__(self, store: JobStore, cache=None,
                 backend: Optional[str] = None, workers: int = 2,
                 parallel: int = 0):
        self.store = store
        self.cache = _LockedCache(cache) if cache is not None else None
        self.backend = backend
        self.workers = max(1, int(workers))
        self.parallel = int(parallel)
        self.started_at = time.time()

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._tasks: List[asyncio.Task] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._draining = False

        self._gate = threading.Event()
        self._gate.set()  # open unless the load test holds it

        # live state, guarded by _mutex (read from the loop thread,
        # written from worker threads)
        self._mutex = threading.Lock()
        self._live: Dict[str, Dict[str, int]] = {}   # running jobs' ticks
        self._in_flight = 0        # jobs currently on a worker thread
        self._active = 0           # accepted, not yet terminal
        self._peak_active = 0      # max of _active over the lifetime
        self._completed_jobs = 0
        self._completed_requests = 0
        self._per_backend: Dict[str, Dict[str, float]] = {}

        # event-stream subscribers: job id -> list of asyncio queues
        # (touched only from the loop thread)
        self._subscribers: Dict[str, List[asyncio.Queue]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[List[str], List[str]]:
        """Recover the store, then start the worker tasks.

        Returns the store's ``(requeued, crashed)`` reconciliation so the
        server can log what a restart found.
        """
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix=WORKER_THREAD_PREFIX)
        requeued, crashed = self.store.recover()
        for job_id in requeued:
            with self._mutex:
                self._active += 1
                self._peak_active = max(self._peak_active, self._active)
            self._queue.put_nowait(job_id)
        self._tasks = [asyncio.ensure_future(self._worker())
                       for _ in range(self.workers)]
        return requeued, crashed

    async def drain(self) -> None:
        """Stop accepting jobs, then wait until every accepted job ends."""
        self._draining = True
        self._gate.set()  # a held gate must not deadlock shutdown
        if self._queue is not None:
            await self._queue.join()

    async def stop(self) -> None:
        """Tear down workers and the thread pool (after :meth:`drain`)."""
        self._draining = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @property
    def draining(self) -> bool:
        return self._draining

    # -- the load-test gate --------------------------------------------
    def hold(self) -> None:
        """Park the workers: accepted jobs queue up but none runs."""
        self._gate.clear()

    def release(self) -> None:
        """Re-open the gate; parked workers start draining the queue."""
        self._gate.set()

    # ------------------------------------------------------------------
    # submission (loop thread)
    # ------------------------------------------------------------------
    def submit(self, kind: str, payload: Dict[str, Any],
               tags: Optional[Dict[str, Any]] = None) -> JobStatus:
        """Validate, persist, and enqueue one job; returns its status.

        Validation happens *here*, before the job is accepted: the
        payload must rebuild into its envelope (``ScheduleRequest`` /
        ``ScenarioSpec``), so a stored spec is always runnable and a
        malformed submission is a 400, not a failed job. Raises
        :class:`ServiceDraining` once shutdown has begun.
        """
        if self._draining:
            raise ServiceDraining("server is draining; not accepting jobs")
        spec = JobSpec(id=uuid.uuid4().hex, kind=kind, payload=payload,
                       submitted_at=time.time(), tags=tags or {})
        spec.total_requests()  # validates the payload shape cheaply
        if kind == "schedule":
            # deep-validate: a single request must rehydrate completely
            spec.build_requests()
        else:
            from repro.api.scenario import ScenarioSpec
            ScenarioSpec.from_dict(spec.payload)
        status = self.store.submit(spec)
        with self._mutex:
            self._active += 1
            self._peak_active = max(self._peak_active, self._active)
        assert self._queue is not None, "dispatcher not started"
        self._queue.put_nowait(spec.id)
        return status

    # ------------------------------------------------------------------
    # views (loop thread)
    # ------------------------------------------------------------------
    def status_view(self, job_id: str) -> Optional[JobStatus]:
        """The stored status overlaid with live progress counters."""
        status = self.store.status(job_id)
        if status is None:
            return None
        with self._mutex:
            live = self._live.get(job_id)
            if live is not None and status.state == "running":
                status = dataclasses.replace(status, **live)
        return status

    def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` payload."""
        from repro.api.cache import describe_cache

        now = time.time()
        with self._mutex:
            per_backend = {
                name: {
                    "jobs": int(entry["jobs"]),
                    "requests": int(entry["requests"]),
                    "busy_s": round(entry["busy_s"], 6),
                    "requests_per_s": (
                        round(entry["requests"] / entry["busy_s"], 3)
                        if entry["busy_s"] > 0 else None),
                }
                for name, entry in sorted(self._per_backend.items())
            }
            snapshot = {
                "uptime_s": round(now - self.started_at, 3),
                "workers": self.workers,
                "draining": self._draining,
                "queue_depth": (self._queue.qsize()
                                if self._queue is not None else 0),
                "in_flight": self._in_flight,
                "active": self._active,
                "peak_active": self._peak_active,
                "completed_jobs": self._completed_jobs,
                "completed_requests": self._completed_requests,
                "backends": per_backend,
            }
        snapshot["jobs"] = self.store.counts()
        snapshot["cache"] = (describe_cache(self.cache.inner)
                             if self.cache is not None else None)
        return snapshot

    # -- event streams --------------------------------------------------
    def subscribe(self, job_id: str) -> asyncio.Queue:
        """An asyncio queue of progress events for one job (loop thread).

        Terminal jobs get their end event immediately, so late
        subscribers always see a finite stream.
        """
        queue: asyncio.Queue = asyncio.Queue()
        status = self.status_view(job_id)
        if status is not None and status.terminal:
            queue.put_nowait(self._end_event(status))
            queue.put_nowait(None)
        else:
            self._subscribers.setdefault(job_id, []).append(queue)
        return queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        listeners = self._subscribers.get(job_id)
        if listeners and queue in listeners:
            listeners.remove(queue)
            if not listeners:
                del self._subscribers[job_id]

    def _publish(self, job_id: str, event: Dict[str, Any],
                 final: bool) -> None:
        """Deliver one event to every listener (runs on the loop thread)."""
        for queue in self._subscribers.get(job_id, ()):
            queue.put_nowait(event)
            if final:
                queue.put_nowait(None)
        if final:
            self._subscribers.pop(job_id, None)

    def _post(self, job_id: str, event: Dict[str, Any],
              final: bool = False) -> None:
        """Thread-safe publish from a worker thread."""
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(
                self._publish, job_id, event, final)

    @staticmethod
    def _end_event(status: JobStatus) -> Dict[str, Any]:
        return {"event": "end", "job": status.id, "state": status.state,
                "completed": status.completed, "total": status.total,
                "ok": status.ok, "failed": status.failed,
                "timeouts": status.timeouts, "error": status.error}

    # ------------------------------------------------------------------
    # the workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            job_id = await self._queue.get()
            try:
                await self._loop.run_in_executor(
                    self._pool, self._run_job, job_id)
            finally:
                self._queue.task_done()

    def _run_job(self, job_id: str) -> None:
        """Execute one job end to end (worker thread)."""
        self._gate.wait()
        spec = self.store.spec(job_id)
        status = self.store.status(job_id)
        if spec is None or status is None or status.state != "queued":
            return  # recovered tombstone or duplicate enqueue; nothing to do
        started = time.time()
        status = dataclasses.replace(status, state="running",
                                     started_at=started)
        self.store.update(status)
        with self._mutex:
            self._in_flight += 1
            self._live[job_id] = {"completed": 0, "ok": 0, "failed": 0,
                                  "timeouts": 0}
        self._post(job_id, {"event": "start", "job": job_id,
                            "total": status.total})
        try:
            result, backend_used = self._solve(spec, status)
            final = dataclasses.replace(
                status, state="done",
                completed=len(result.results), ok=result.n_ok,
                failed=result.n_failed, timeouts=result.n_timeout,
                finished_at=time.time())
            self.store.finish(final, result)
        except Exception as exc:  # noqa: BLE001 — a job must never kill its worker
            result, backend_used = None, None
            with self._mutex:
                live = dict(self._live.get(job_id, {}))
            final = dataclasses.replace(
                status, state="failed", finished_at=time.time(),
                error=f"{type(exc).__name__}: {exc}", **live)
            self.store.finish(final, None)
        finally:
            with self._mutex:
                self._in_flight -= 1
                self._active -= 1
                self._live.pop(job_id, None)
                if final.state == "done":
                    self._completed_jobs += 1
                    self._completed_requests += final.completed
                    entry = self._per_backend.setdefault(
                        backend_used or "auto",
                        {"jobs": 0, "requests": 0, "busy_s": 0.0})
                    entry["jobs"] += 1
                    entry["requests"] += final.completed
                    entry["busy_s"] += final.finished_at - started
            self._post(job_id, self._end_event(final), final=True)

    def _solve(self, spec: JobSpec,
               status: JobStatus) -> Tuple[JobResult, str]:
        """The offline-identical core of a job (worker thread)."""
        from repro.api.batch import iter_solve_batch, resolve_parallel
        from repro.api.exec.routing import route

        requests = spec.build_requests()
        backend, parallel = self.backend, self.parallel
        if spec.kind == "scenario":
            # same fallback order as run_scenario: explicit service
            # settings first, then the spec's execution block
            from repro.api.scenario import ScenarioSpec
            execution = ScenarioSpec.from_dict(spec.payload).execution
            if execution is not None:
                if backend is None:
                    backend = execution.backend
                if not parallel and execution.parallel is not None:
                    parallel = execution.parallel
        # the whole request list is in hand, so route on every algorithm
        # in it, exactly as solve_batch does
        resolved = route(sorted({r.algorithm for r in requests}),
                         backend=backend,
                         workers=resolve_parallel(parallel))

        def tick(index, request, result):
            failed = result.failure is not None
            timeout = failed and result.failure.kind == "timeout"
            with self._mutex:
                live = self._live.get(spec.id)
                if live is not None:
                    live["completed"] += 1
                    live["ok"] += 0 if failed else 1
                    live["failed"] += 1 if failed else 0
                    live["timeouts"] += 1 if timeout else 0
            self._post(spec.id, {
                "event": "tick", "job": spec.id, "index": index,
                "completed": index + 1, "total": status.total,
                "algorithm": result.algorithm, "workflow": result.workflow,
                "makespan": (None if result.makespan == float("inf")
                             else result.makespan),
                "ok": not failed})

        before = self.cache.stats() if self.cache is not None else None
        t0 = time.perf_counter()
        records = [r.to_dict() for r in iter_solve_batch(
            requests, parallel=parallel, progress=tick,
            cache=self.cache, backend=resolved)]
        elapsed = time.perf_counter() - t0
        after = self.cache.stats() if self.cache is not None else None

        n_failed = sum(1 for r in records if r["failure"] is not None)
        n_timeout = sum(1 for r in records
                        if r["failure"] is not None
                        and r["failure"]["kind"] == "timeout")
        result = JobResult(
            id=spec.id, results=tuple(records),
            n_ok=len(records) - n_failed, n_failed=n_failed,
            n_timeout=n_timeout,
            cache_hits=(after["hits"] - before["hits"]) if before else 0,
            cache_misses=(after["misses"] - before["misses"]) if before else 0,
            elapsed_s=elapsed)
        return result, resolved
