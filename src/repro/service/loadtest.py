"""The service load test behind ``repro serve --loadtest``.

Boots a real :class:`~repro.service.app.ServiceApp` on an ephemeral
port and replays a synthetic scenario corpus against it over real HTTP,
then writes the throughput/latency report that ``BENCH_service.json``
commits and CI gates (the ``BENCH_core.json``/``BENCH_sim.json``
pattern).

The test is a **gated burst**, which makes "N concurrent submissions"
an exact, reproducible number instead of a race between the submitters
and the drain: the dispatcher's worker gate is held while every job is
submitted (accepted jobs pile up durably in the queue — the measured
submission throughput includes validation, the job-store append, and
the HTTP round-trip), so at the moment the last acceptance lands the
service provably holds ``n_jobs`` concurrent jobs. Releasing the gate
starts the drain, whose completion latencies come from the job store's
own ``finished_at`` timestamps.

Submissions travel over a fixed pool of keep-alive connections (64 by
default) rather than one socket per job — thousands of simultaneous
sockets would measure the machine's file-descriptor limit, not the
service.

Absolute throughput is machine-dependent, so the regression gate is a
*ratio*: the same request corpus (a sample of it) is also run through
:func:`~repro.api.batch.iter_solve_batch` directly — no HTTP, no job
store, no dispatcher — in the same process, and the gate compares the
service's drain rate against that offline rate (``efficiency``). The
hard, machine-independent checks: zero dropped submissions, zero
failed/crashed jobs, and a peak concurrency floor of
``min(1000, n_jobs)``.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: benchmark defaults — the acceptance scale of the issue
DEFAULT_JOBS = 1024
DEFAULT_WORKERS = 4
DEFAULT_CONNECTIONS = 64
DEFAULT_N_TASKS = 16
DEFAULT_SAMPLE = 192
DEFAULT_TOLERANCE = 0.5

#: families cycled through the corpus (distinct seeds per job keep every
#: request a genuine solve — no two jobs share a cache fingerprint)
FAMILY_CYCLE = ("blast", "bwa", "genome", "soykb")


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _build_corpus(n_jobs: int, n_tasks: int, algorithm: str,
                  seed: int) -> List[bytes]:
    """Pre-serialized POST bodies, one distinct request per job."""
    from repro.api.envelopes import ScheduleRequest
    from repro.core.heuristic import DagHetPartConfig
    from repro.generators.families import generate_workflow
    from repro.platform.presets import cluster_by_name

    cluster = cluster_by_name("default")
    config = DagHetPartConfig(k_prime_strategy="doubling") \
        if algorithm == "daghetpart" else None
    bodies: List[bytes] = []
    for i in range(n_jobs):
        family = FAMILY_CYCLE[i % len(FAMILY_CYCLE)]
        request = ScheduleRequest(
            workflow=generate_workflow(family, n_tasks, seed=seed + i),
            cluster=cluster, algorithm=algorithm, config=config,
            scale_memory=True, want_mapping=False,
            tags={"loadtest": i})
        bodies.append(request.to_json().encode("utf-8"))
    return bodies


async def _submit_over_connection(host: str, port: int,
                                  jobs: List[Tuple[int, bytes]],
                                  latencies: Dict[int, float],
                                  accepted: List[str],
                                  errors: List[str]) -> None:
    """One pooled keep-alive connection submitting its slice in order."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for index, body in jobs:
            head = (f"POST /v1/schedule HTTP/1.1\r\n"
                    f"Host: {host}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n").encode("latin-1")
            t0 = time.perf_counter()
            writer.write(head + body)
            await writer.drain()
            status_head = await reader.readuntil(b"\r\n\r\n")
            lines = status_head.decode("latin-1").split("\r\n")
            code = int(lines[0].split(" ")[1])
            length = 0
            for line in lines[1:]:
                if line.lower().startswith("content-length:"):
                    length = int(line.split(":", 1)[1])
            payload = await reader.readexactly(length)
            latencies[index] = time.perf_counter() - t0
            if code == 202:
                accepted.append(json.loads(payload)["id"])
            else:
                errors.append(f"job {index}: HTTP {code} "
                              f"{payload[:200].decode('utf-8', 'replace')}")
    finally:
        writer.close()


async def _run_loadtest(n_jobs: int, workers: int, connections: int,
                        n_tasks: int, algorithm: str, seed: int,
                        sample: int, store_dir: str,
                        progress: Optional[Callable[[str], None]]
                        ) -> Dict[str, Any]:
    from repro.service.app import ServiceApp

    def say(message: str) -> None:
        if progress:
            progress(message)

    say(f"building corpus: {n_jobs} requests "
        f"({'/'.join(FAMILY_CYCLE)} x n={n_tasks}, {algorithm})")
    bodies = _build_corpus(n_jobs, n_tasks, algorithm, seed)

    app = ServiceApp(store_dir, cache=None, backend=None,
                     workers=workers, parallel=0)
    await app.start(host="127.0.0.1", port=0)
    app.dispatcher.hold()  # the gated burst: accept everything first
    try:
        pool = min(connections, n_jobs)
        slices: List[List[Tuple[int, bytes]]] = [[] for _ in range(pool)]
        for index, body in enumerate(bodies):
            slices[index % pool].append((index, body))
        latencies: Dict[int, float] = {}
        accepted: List[str] = []
        errors: List[str] = []

        say(f"bursting {n_jobs} submissions over {pool} connections")
        burst_t0 = time.perf_counter()
        await asyncio.gather(*(
            _submit_over_connection("127.0.0.1", app.port, chunk,
                                    latencies, accepted, errors)
            for chunk in slices if chunk))
        submit_total = time.perf_counter() - burst_t0

        stats_at_peak = app.dispatcher.stats()
        say(f"accepted {len(accepted)}/{n_jobs} "
            f"in {submit_total:.2f}s "
            f"(peak active: {stats_at_peak['peak_active']})")

        say("releasing the worker gate; draining")
        release_ts = time.time()
        drain_t0 = time.perf_counter()
        app.dispatcher.release()
        while True:
            live = app.dispatcher.stats()
            if live["active"] == 0:
                break
            await asyncio.sleep(0.05)
        drain_total = time.perf_counter() - drain_t0

        counts = app.store.counts()
        completion: List[float] = []
        for job_id in app.store.jobs():
            status = app.store.status(job_id)
            if status is not None and status.finished_at is not None:
                completion.append(max(0.0, status.finished_at - release_ts))
        final_stats = app.dispatcher.stats()
    finally:
        await app.shutdown()

    say(f"offline reference: {min(sample, n_jobs)} of the same requests "
        f"through iter_solve_batch")
    offline = _offline_reference(bodies[:min(sample, n_jobs)], workers)

    submit_ms = [v * 1000.0 for v in latencies.values()]
    drain_rate = (n_jobs / drain_total) if drain_total > 0 else 0.0
    report: Dict[str, Any] = {
        "n_jobs": n_jobs,
        "workers": workers,
        "connections": pool,
        "n_tasks": n_tasks,
        "algorithm": algorithm,
        "seed": seed,
        "family_cycle": list(FAMILY_CYCLE),
        "accepted": len(accepted),
        "dropped": n_jobs - len(accepted),
        "submit_errors": errors[:10],
        "peak_active": final_stats["peak_active"],
        "jobs": counts,
        "failed_jobs": counts.get("failed", 0),
        "crashed_jobs": counts.get("crashed", 0),
        "submit": {
            "total_s": round(submit_total, 6),
            "rate_per_s": round(len(accepted) / submit_total, 3)
            if submit_total > 0 else None,
            "p50_ms": round(_percentile(submit_ms, 0.50), 3),
            "p90_ms": round(_percentile(submit_ms, 0.90), 3),
            "p99_ms": round(_percentile(submit_ms, 0.99), 3),
            "max_ms": round(max(submit_ms), 3) if submit_ms else None,
        },
        "drain": {
            "total_s": round(drain_total, 6),
            "rate_per_s": round(drain_rate, 3),
            "p50_s": round(_percentile(completion, 0.50), 4),
            "p90_s": round(_percentile(completion, 0.90), 4),
            "p99_s": round(_percentile(completion, 0.99), 4),
        },
        "offline": offline,
        "efficiency": round(drain_rate / offline["rate_per_s"], 4)
        if offline["rate_per_s"] else None,
    }
    return report


def _offline_reference(bodies: List[bytes], workers: int) -> Dict[str, Any]:
    """The same requests, solved directly — the machine-speed yardstick.

    Uses the thread backend at the service's worker count, matching the
    dispatcher's concurrency model (each service job runs serially on
    one of ``workers`` threads), so the efficiency ratio isolates the
    service overhead: HTTP, validation, the job store, and event fanout.
    """
    from repro.api.batch import iter_solve_batch
    from repro.api.envelopes import ScheduleRequest

    requests = [ScheduleRequest.from_json(body.decode("utf-8"))
                for body in bodies]
    t0 = time.perf_counter()
    results = list(iter_solve_batch(requests, parallel=workers,
                                    backend="thread"))
    total = time.perf_counter() - t0
    n_failed = sum(1 for r in results if r.failure is not None)
    return {
        "sample": len(requests),
        "total_s": round(total, 6),
        "rate_per_s": round(len(requests) / total, 3) if total > 0 else None,
        "failed": n_failed,
    }


def run_service_loadtest(n_jobs: int = DEFAULT_JOBS,
                         workers: int = DEFAULT_WORKERS,
                         connections: int = DEFAULT_CONNECTIONS,
                         n_tasks: int = DEFAULT_N_TASKS,
                         algorithm: str = "daghetpart",
                         seed: int = 0,
                         sample: int = DEFAULT_SAMPLE,
                         store_dir: Optional[str] = None,
                         progress: Optional[Callable[[str], None]] = None,
                         ) -> Dict[str, Any]:
    """Run the full load test; returns the report dict."""
    import tempfile

    if store_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-loadtest-") as tmp:
            return asyncio.run(_run_loadtest(
                n_jobs, workers, connections, n_tasks, algorithm, seed,
                sample, tmp, progress))
    return asyncio.run(_run_loadtest(
        n_jobs, workers, connections, n_tasks, algorithm, seed, sample,
        store_dir, progress))


def compare_service_to_baseline(report: Dict[str, Any],
                                baseline: Dict[str, Any],
                                tolerance: float = DEFAULT_TOLERANCE
                                ) -> List[str]:
    """Regression check against a committed report; empty list = pass.

    Hard invariants first (machine-independent): every submission
    accepted, every job completes (``done``), and peak concurrency at
    least ``min(1000, n_jobs)`` — the issue's acceptance floor. Then the
    ratio gate: the service's efficiency (drain rate vs the same-process
    offline rate) must stay above ``tolerance`` x the committed
    baseline's efficiency.
    """
    problems: List[str] = []
    if report.get("dropped", 0) != 0:
        problems.append(
            f"{report['dropped']} submission(s) dropped "
            f"(errors: {report.get('submit_errors')})")
    if report.get("failed_jobs", 0) or report.get("crashed_jobs", 0):
        problems.append(
            f"{report.get('failed_jobs', 0)} failed / "
            f"{report.get('crashed_jobs', 0)} crashed job(s); "
            f"the load-test corpus must complete cleanly")
    floor = min(1000, report.get("n_jobs", 0))
    if report.get("peak_active", 0) < floor:
        problems.append(
            f"peak concurrency {report.get('peak_active')} fell below the "
            f"{floor}-job floor")
    done = report.get("jobs", {}).get("done", 0)
    if done != report.get("n_jobs"):
        problems.append(
            f"only {done}/{report.get('n_jobs')} jobs reached 'done'")
    efficiency = report.get("efficiency") or 0.0
    baseline_eff = baseline.get("efficiency") or 0.0
    if efficiency <= 0:
        problems.append("no measurable drain throughput")
    elif efficiency < baseline_eff * tolerance:
        problems.append(
            f"service efficiency {efficiency:.3f} fell below "
            f"{baseline_eff * tolerance:.3f} "
            f"({tolerance:g} x the committed {baseline_eff:.3f})")
    return problems


def write_service_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_service_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
