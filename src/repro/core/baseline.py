"""DagHetMem — the memory-aware baseline (Section 4.1).

Computes the memory-optimal traversal of the *entire* workflow (memDag
role), sorts processors by decreasing memory, and packs the traversal
greedily: tasks join the current block while the block's running peak fits
the current processor; the first task that does not fit starts a new block
on the next processor. The heuristic performs no makespan optimization —
it is the validity baseline the paper compares DagHetPart against.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.mapping import BlockAssignment, Mapping
from repro.memdag.model import BlockPackingState
from repro.memdag.requirement import RequirementCache
from repro.memdag.traversal import memdag_traversal
from repro.platform.cluster import Cluster
from repro.utils.errors import NoFeasibleMappingError
from repro.workflow.graph import Workflow

Node = Hashable


def dag_het_mem(wf: Workflow, cluster: Cluster,
                traversal_methods: Sequence[str] = ("best_first", "layered", "sp"),
                cache: Optional[RequirementCache] = None) -> Mapping:
    """Run the DagHetMem baseline; returns a validated-constructible Mapping.

    Raises :class:`NoFeasibleMappingError` when the traversal cannot be
    packed into the available processor memories — the paper's "the
    workflow needs a larger platform" outcome.
    """
    if wf.n_tasks == 0:
        return Mapping(wf, cluster, [], algorithm="DagHetMem")

    traversal = memdag_traversal(wf, methods=traversal_methods)
    procs = cluster.by_memory_desc()

    proc_idx = 0
    state = BlockPackingState(wf, procs[0].memory)
    packed: List[Tuple[int, Set[Node], float]] = []  # (proc index, tasks, peak)

    order = list(traversal.order)
    i = 0
    while i < len(order):
        u = order[i]
        if state.fits(u):
            state.add(u)
            i += 1
            continue
        # close the current block (if non-empty) and move to the next
        # processor; the traversal resumes from u (Section 4.1)
        if state.tasks:
            peak = state.peak
            if proc_idx + 1 >= len(procs):
                tasks = state.close_block(0.0)
                packed.append((proc_idx, tasks, peak))
                raise NoFeasibleMappingError(
                    f"DagHetMem: {len(order) - i} task(s) left but no processors remain",
                    unplaced_tasks=len(order) - i)
            tasks = state.close_block(procs[proc_idx + 1].memory)
            packed.append((proc_idx, tasks, peak))
            proc_idx += 1
        else:
            # u does not fit an *empty* block; processors are sorted by
            # decreasing memory, so no later processor can host it either
            raise NoFeasibleMappingError(
                f"DagHetMem: task {u!r} needs {state.usage_if_added(u):g} memory, "
                f"largest remaining processor has {procs[proc_idx].memory:g}",
                unplaced_tasks=len(order) - i)

    if state.tasks:
        packed.append((proc_idx, set(state.tasks), state.peak))

    cache = cache or RequirementCache(wf, methods=traversal_methods)
    assignments = []
    for pidx, tasks, peak in packed:
        result = cache.requirement(tasks)
        # the packing peak is valid for the traversal-slice order; the cache
        # may find an even better intra-block order — use the better one
        requirement = min(peak, result.peak)
        trav = result.order if result.peak <= peak else tuple(
            u for u in order if u in tasks)
        assignments.append(BlockAssignment(
            tasks=frozenset(tasks),
            processor=procs[pidx],
            requirement=requirement,
            traversal=trav,
        ))
    return Mapping(wf, cluster, assignments, algorithm="DagHetMem")
