"""Task-level execution simulation and schedule export.

The paper's makespan model charges a whole block before any of its output
is communicated: "some tasks may finish before the block finishes, and
their successors could start earlier, but we do not consider this
possibility, hence providing in fact an overestimation of the makespan."

:func:`simulate_task_level` executes a mapping at *task* granularity —
each processor runs its block's tasks in the block's recorded traversal
order, and a task starts as soon as its processor is free and all parent
outputs have arrived (parent finish time plus link transfer time for
cross-processor edges). The resulting makespan quantifies how loose the
block-level bound is on real mappings; :mod:`tests.test_core_simulate`
checks it never exceeds the bound's structure assumptions, and an ablation
bench reports the gap across families.

:func:`gantt_text` renders either schedule as an ASCII timeline, and
:func:`schedule_to_dict` exports machine-readable start/finish times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.core.mapping import Mapping
from repro.utils.errors import InvalidPartitionError

Node = Hashable


@dataclass(frozen=True)
class TaskEvent:
    """One task execution in the simulated schedule."""

    task: Node
    processor: str
    start: float
    finish: float


def simulate_task_level(mapping: Mapping) -> Tuple[float, List[TaskEvent]]:
    """Execute ``mapping`` at task granularity; returns (makespan, events).

    Semantics:

    * each processor executes its block's tasks **in the traversal order**
      recorded in the mapping (the order realizing the block's memory
      requirement — reordering could violate the memory constraint);
    * a task starts when its processor finished the previous task of the
      block AND every parent's output has arrived; outputs of a parent on
      the same processor are available at the parent's finish; outputs
      from another processor arrive ``c / link_bandwidth`` after the
      parent finishes;
    * task ``u`` runs for ``w_u / s`` on its processor.
    """
    wf = mapping.workflow
    cluster = mapping.cluster

    proc_of: Dict[Node, str] = {}
    speed: Dict[str, float] = {}
    queues: List[Tuple[str, Tuple[Node, ...]]] = []
    for a in mapping.assignments:
        for u in a.tasks:
            proc_of[u] = a.processor.name
        speed[a.processor.name] = a.processor.speed
        queues.append((a.processor.name, tuple(a.traversal)))

    if set(proc_of) != set(wf.tasks()):
        raise InvalidPartitionError("mapping does not cover the workflow")

    finish: Dict[Node, float] = {}
    proc_free: Dict[str, float] = {name: 0.0 for name, _ in queues}
    pointers = [0] * len(queues)
    events: List[TaskEvent] = []
    remaining = wf.n_tasks

    while remaining > 0:
        progressed = False
        for qi, (proc_name, order) in enumerate(queues):
            while pointers[qi] < len(order):
                u = order[pointers[qi]]
                if any(p not in finish for p in wf.parents(u)):
                    break  # this block is blocked on another processor
                ready = proc_free[proc_name]
                for p, c in wf.in_edges(u):
                    if proc_of[p] == proc_name:
                        arrival = finish[p]
                    else:
                        link = cluster.link_bandwidth(
                            cluster[proc_of[p]], cluster[proc_name])
                        arrival = finish[p] + c / link
                    ready = max(ready, arrival)
                end = ready + wf.work(u) / speed[proc_name]
                finish[u] = end
                proc_free[proc_name] = end
                events.append(TaskEvent(u, proc_name, ready, end))
                pointers[qi] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            raise InvalidPartitionError(
                "simulation deadlock: traversal orders are inconsistent "
                "with the task dependencies")

    makespan = max((e.finish for e in events), default=0.0)
    events.sort(key=lambda e: (e.start, e.processor))
    return makespan, events


def overestimation_factor(mapping: Mapping) -> float:
    """Block-level makespan divided by the task-level simulated makespan.

    Values >= 1 quantify the slack of the paper's bound on this mapping.
    """
    simulated, _ = simulate_task_level(mapping)
    if simulated <= 0:
        return 1.0
    return mapping.makespan() / simulated


def schedule_to_dict(mapping: Mapping) -> Dict:
    """Machine-readable schedule: per-task processor, start, finish."""
    makespan, events = simulate_task_level(mapping)
    return {
        "algorithm": mapping.algorithm,
        "cluster": mapping.cluster.name,
        "block_level_makespan": mapping.makespan(),
        "task_level_makespan": makespan,
        "tasks": [
            {"task": str(e.task), "processor": e.processor,
             "start": e.start, "finish": e.finish}
            for e in events
        ],
    }


def gantt_text(mapping: Mapping, width: int = 72,
               max_rows: int = 40) -> str:
    """ASCII Gantt chart of the task-level schedule.

    One row per (used) processor; each task paints its ``[start, finish)``
    interval with a rotating glyph. Rows beyond ``max_rows`` are elided.
    """
    makespan, events = simulate_task_level(mapping)
    if makespan <= 0 or not events:
        return "(empty schedule)"
    by_proc: Dict[str, List[TaskEvent]] = {}
    for e in events:
        by_proc.setdefault(e.processor, []).append(e)

    glyphs = "#*+o@%=&"
    lines = [f"task-level makespan: {makespan:.2f} "
             f"(block-level bound: {mapping.makespan():.2f})"]
    name_width = max(len(n) for n in by_proc)
    for row, (proc_name, proc_events) in enumerate(sorted(by_proc.items())):
        if row >= max_rows:
            lines.append(f"... {len(by_proc) - max_rows} more processors elided")
            break
        cells = [" "] * width
        for i, e in enumerate(proc_events):
            lo = int(e.start / makespan * (width - 1))
            hi = max(lo + 1, int(e.finish / makespan * (width - 1)) + 1)
            for x in range(lo, min(hi, width)):
                cells[x] = glyphs[i % len(glyphs)]
        lines.append(f"{proc_name.rjust(name_width)} |{''.join(cells)}|")
    return "\n".join(lines)
