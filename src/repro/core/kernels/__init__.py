"""Kernel selection: one dispatch point for the numeric hot loops.

Selection order:

1. a programmatic override (:func:`set_kernel` / :func:`use_kernel`);
2. the ``REPRO_KERNEL`` environment variable — ``reference``, ``array``,
   or ``auto`` (default);
3. ``auto`` resolves to the array kernel when numpy imports, with a
   small-instance cutoff below which it delegates to the reference loops
   (``REPRO_ARRAY_CUTOFF``, default 256); without numpy it quietly
   resolves to ``reference``.

``REPRO_KERNEL=array`` is an explicit opt-in: it forces the array path
at *every* size (no cutoff) and raises if numpy is unavailable — this is
what the differential tests and the CI kernel-matrix leg run under.
Whatever is selected, results are bit-for-bit identical; the choice is a
pure performance knob.

This module imports neither implementation at load time: the reference
kernel pulls in :mod:`repro.core.makespan` (which itself dispatches
here) and the array kernel pulls in numpy, so both load lazily on first
:func:`get_kernel` call.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Optional

from repro.core.kernels.base import Kernel

KERNEL_NAMES = ("reference", "array", "auto")

_instances: Dict[str, Kernel] = {}
_override: Optional[str] = None


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
        return True
    except ImportError:  # pragma: no cover
        return False


def kernel_name() -> str:
    """The currently selected kernel name (before ``auto`` resolution)."""
    if _override is not None:
        return _override
    name = os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
    if name not in KERNEL_NAMES:
        raise ValueError(f"unknown REPRO_KERNEL={name!r}; "
                         f"valid: {', '.join(KERNEL_NAMES)}")
    return name


def get_kernel() -> Kernel:
    """The active :class:`Kernel` instance (cached per selection)."""
    name = kernel_name()
    kernel = _instances.get(name)
    if kernel is not None:
        return kernel
    if name == "reference":
        from repro.core.kernels.reference import ReferenceKernel
        kernel = ReferenceKernel()
    elif name == "array":
        if not _numpy_available():  # pragma: no cover
            raise ImportError(
                "REPRO_KERNEL=array requires numpy; install it or use "
                "REPRO_KERNEL=reference")
        from repro.core.kernels.array import ArrayKernel
        kernel = ArrayKernel(forced=True)
    else:  # auto
        if _numpy_available():
            from repro.core.kernels.array import ArrayKernel
            kernel = ArrayKernel(forced=False)
        else:  # pragma: no cover
            from repro.core.kernels.reference import ReferenceKernel
            kernel = ReferenceKernel()
    _instances[name] = kernel
    return kernel


def set_kernel(name: Optional[str]) -> Optional[str]:
    """Override the selection (``None`` restores env-based resolution).

    Returns the previous override so callers can restore it.
    """
    global _override
    if name is not None and name not in KERNEL_NAMES:
        raise ValueError(f"unknown kernel {name!r}; "
                         f"valid: {', '.join(KERNEL_NAMES)}")
    previous = _override
    _override = name
    return previous


@contextmanager
def use_kernel(name: str):
    """Context manager: run a block under a specific kernel."""
    previous = set_kernel(name)
    try:
        yield get_kernel()
    finally:
        set_kernel(previous)
