"""The kernel interface: the numeric hot loops behind one seam.

Profiling the pipeline on large instances (see ``repro profile`` and
``benchmarks/test_core_kernels.py``) shows three loops dominating:

1. **full bottom-weight passes** — Eq. (1) swept over the whole quotient
   (Step 3 pricing without an evaluator, every evaluator rebuild);
2. **swap-candidate enumeration** — the O(n²) feasibility filter of the
   Step 4 steepest-descent search;
3. **memory-requirement sums** — per-task ``sum(in) + sum(out) + m_u``
   vectors (partitioner node weights) and the memory-slack ranking of
   Step 3's fallback pool.

A :class:`Kernel` implements all three. ``reference`` is the dict-based
code the repo grew up with; ``array`` evaluates the same arithmetic over
compiled CSR views (:mod:`repro.core.compiled`,
:mod:`repro.workflow.compiled`). The contract is *bit-for-bit equality*:
for any input, every kernel must return exactly equal floats and
identically ordered sequences — callers are free to switch kernels
mid-run without perturbing a single decision. The differential suite
(``tests/test_kernel_seam.py``, ``tests/test_evaluator_differential.py``)
holds kernels to that contract on randomized inputs.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

Node = Hashable
BlockId = int


class Kernel:
    """Abstract numeric kernel; see module docstring for the contract."""

    name: str = "?"

    def bottom_weights(self, q, cluster, default_speed: float = 1.0
                       ) -> Dict[BlockId, float]:
        """Eq. (1) for every quotient vertex; raises on a cyclic quotient.

        Called through :func:`repro.core.makespan.bottom_weights`, which
        owns the ``FULL_PASSES`` instrumentation counter.
        """
        raise NotImplementedError

    def feasible_swap_pairs(self, ids: Sequence[BlockId],
                            requirement: Dict[BlockId, float],
                            blocks) -> List[Tuple[BlockId, BlockId]]:
        """Step 4 candidate pairs ``(a, b)``, in nested ``i < j`` order.

        A pair is feasible when the two blocks sit on different processor
        objects and each fits the other's memory. Order matters: the
        steepest-descent search breaks makespan ties by first-seen pair.
        """
        raise NotImplementedError

    def memory_slack_order(self, bids: Sequence[BlockId],
                           slacks: Sequence[float], cap: int
                           ) -> List[BlockId]:
        """Top-``cap`` block ids by ``(slack desc, bid asc)`` (Step 3 pool)."""
        raise NotImplementedError

    def task_requirements(self, wf) -> Dict[Node, float]:
        """``task_requirement`` for every task of ``wf``, insertion order."""
        raise NotImplementedError
