"""The array kernel: the same arithmetic, vectorized over CSR views.

Requires numpy. Every result is bit-for-bit equal to
:class:`~repro.core.kernels.reference.ReferenceKernel` — the operations
were chosen for that property, not merely for speed:

* elementwise ``/`` and ``+`` on float64 arrays are IEEE-identical to the
  scalar ops of the reference loops;
* per-node child maxima use ``np.maximum.reduceat`` (max is associative —
  exact under any grouping);
* segment *sums* (task requirements) use ``np.bincount(weights=...)``,
  which accumulates in scan order — the same left-to-right association as
  ``sum()`` over the adjacency dicts. ``np.sum``/``add.reduceat`` would
  NOT qualify: their pairwise summation rounds differently.

Compilation economics: building a CSR snapshot costs one O(V + E) python
pass — about the price of a single reference sweep. It pays off when the
structure is swept repeatedly (evaluator rebuilds, Step 4's per-probe
``set_proc`` + full-makespan pricing, big singleton quotients). In
``auto`` mode the kernel therefore falls back to the reference loops
below :data:`DEFAULT_CUTOFF` blocks, where per-call numpy overhead beats
the gain; selecting ``REPRO_KERNEL=array`` explicitly forces the array
path at every size (what the differential tests and the CI kernel-matrix
leg do).
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

from repro.core.kernels.base import BlockId, Kernel, Node
from repro.core.kernels.reference import ReferenceKernel

import numpy as np

#: below this many blocks/tasks, `auto` mode stays on the reference loops
DEFAULT_CUTOFF = 256


def _cutoff() -> int:
    raw = os.environ.get("REPRO_ARRAY_CUTOFF", "")
    try:
        return int(raw) if raw else DEFAULT_CUTOFF
    except ValueError:
        return DEFAULT_CUTOFF


class ArrayKernel(Kernel):
    """numpy kernels over compiled views; ``forced`` disables the cutoff."""

    name = "array"

    def __init__(self, forced: bool = False):
        self._forced = forced
        self._ref = ReferenceKernel()

    def _use_array(self, n: int) -> bool:
        return self._forced or n >= _cutoff()

    # ------------------------------------------------------------------
    def bottom_weights(self, q, cluster, default_speed: float = 1.0
                       ) -> Dict[BlockId, float]:
        if not self._use_array(len(q.blocks)):
            return self._ref.bottom_weights(q, cluster, default_speed)
        from repro.core.compiled import CompiledQuotient

        return CompiledQuotient.of(q).bottom_weights(
            q, cluster, default_speed)

    def feasible_swap_pairs(self, ids: Sequence[BlockId],
                            requirement: Dict[BlockId, float],
                            blocks) -> List[Tuple[BlockId, BlockId]]:
        n = len(ids)
        if n < 2 or not self._use_array(n):
            return self._ref.feasible_swap_pairs(ids, requirement, blocks)
        req = np.fromiter((requirement[b] for b in ids),
                          dtype=np.float64, count=n)
        mem = np.empty(n, dtype=np.float64)
        codes = np.empty(n, dtype=np.intp)
        seen: Dict[int, int] = {}
        for i, b in enumerate(ids):
            p = blocks[b].proc
            mem[i] = p.memory
            codes[i] = seen.setdefault(id(p), len(seen))
        ok = ((codes[:, None] != codes[None, :])
              & (req[:, None] <= mem[None, :])
              & (req[None, :] <= mem[:, None]))
        ok &= ~np.tri(n, dtype=bool)  # keep strictly upper triangle (i < j)
        # argwhere is row-major: (i, j) pairs in the nested-loop order
        return [(ids[i], ids[j]) for i, j in np.argwhere(ok)]

    def memory_slack_order(self, bids: Sequence[BlockId],
                           slacks: Sequence[float], cap: int
                           ) -> List[BlockId]:
        n = len(bids)
        if not self._use_array(n):
            return self._ref.memory_slack_order(bids, slacks, cap)
        bid_arr = np.asarray(bids, dtype=np.int64)
        slack_arr = np.asarray(slacks, dtype=np.float64)
        # slack descending, ties by bid ascending — negating a float only
        # flips the sign bit, so the ordering is exact
        order = np.lexsort((bid_arr, -slack_arr))[:cap]
        return bid_arr[order].tolist()

    def task_requirements(self, wf) -> Dict[Node, float]:
        if not self._use_array(len(wf)):
            return self._ref.task_requirements(wf)
        cw = wf.compiled()
        return dict(zip(cw.nodes, cw.requirements().tolist()))
