"""The reference kernel: the original dict-of-dict hot loops, verbatim.

This is the semantics oracle. The loops here were lifted unchanged from
``core/makespan.py`` / ``core/swaps.py`` / ``core/merging.py`` when the
kernel seam was introduced; the array kernel is correct exactly when it
reproduces these results bit for bit.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.core.kernels.base import BlockId, Kernel, Node
from repro.utils.errors import CyclicWorkflowError


class ReferenceKernel(Kernel):
    """Pure-python dict-based kernels (no third-party dependencies)."""

    name = "reference"

    def bottom_weights(self, q, cluster, default_speed: float = 1.0
                       ) -> Dict[BlockId, float]:
        from repro.core.makespan import link_rule

        order = q.topological_order()
        if order is None:
            raise CyclicWorkflowError(
                message="makespan undefined: quotient graph is cyclic")
        link_of = link_rule(cluster)
        l: Dict[BlockId, float] = {}
        for bid in reversed(order):
            blk = q.blocks[bid]
            own = blk.work / (blk.proc.speed if blk.proc is not None
                              else default_speed)
            best_child = 0.0
            for child, c in q.succ[bid].items():
                cand = c / link_of(blk.proc, q.blocks[child].proc) + l[child]
                if cand > best_child:
                    best_child = cand
            l[bid] = own + best_child
        return l

    def feasible_swap_pairs(self, ids: Sequence[BlockId],
                            requirement: Dict[BlockId, float],
                            blocks) -> List[Tuple[BlockId, BlockId]]:
        pairs: List[Tuple[BlockId, BlockId]] = []
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                pa, pb = blocks[a].proc, blocks[b].proc
                if pa is pb:
                    continue
                if requirement[a] > pb.memory or requirement[b] > pa.memory:
                    continue
                pairs.append((a, b))
        return pairs

    def memory_slack_order(self, bids: Sequence[BlockId],
                           slacks: Sequence[float], cap: int
                           ) -> List[BlockId]:
        entries = sorted(zip(slacks, (-b for b in bids)), reverse=True)
        return [-neg_bid for _, neg_bid in entries[:cap]]

    def task_requirements(self, wf) -> Dict[Node, float]:
        return {u: wf.task_requirement(u) for u in wf.tasks()}
