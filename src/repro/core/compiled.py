"""Compiled CSR view of a :class:`QuotientGraph` for the array kernels.

The quotient mutates in two very different rhythms: *structure* (merges,
unmerges, rebuilds) changes rarely outside Step 3, while the *mapping*
(``set_proc``, direct ``blk.proc`` writes) changes on every probe of the
local searches. :class:`CompiledQuotient` therefore freezes only the
structural half — block interning, work vector, CSR adjacency, the
level decomposition of the DAG, and the level-grouped edge gather
tables the sweep needs — keyed on
:attr:`QuotientGraph.structure_version`. Mapping state (the speed
vector, per-edge link bandwidths) is cached separately, keyed on
:attr:`QuotientGraph.version`, which every :meth:`~QuotientGraph.set_proc`
bumps; all core call sites route processor changes through ``set_proc``,
and code that writes ``blk.proc`` directly must call
:meth:`QuotientGraph.touch` afterwards (the evaluator's
``invalidate()`` does) or the cached speeds go stale.

The sweep processes one level at a time, sinks first:

    l[v] = work[v] / speed[v] + max(0, max_children(c / beta + l[child]))

Per-node child maxima come from ``np.maximum.reduceat`` over edges
pre-grouped by level at compile time — ``max`` is associative, and the
elementwise divide/add match the scalar arithmetic of the reference
kernel IEEE-exactly, which is what makes the two kernels bit-for-bit
interchangeable (asserted by the differential suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.quotient import BlockId, QuotientGraph
from repro.platform.cluster import Cluster
from repro.utils.errors import CyclicWorkflowError
from repro.workflow.compiled import _peel_levels, _require_numpy

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


class _LevelSlab:
    """Edge gather tables for one level of the sweep (compile-time)."""

    __slots__ = ("nodes", "nz_pos", "edge_take", "child_slots", "costs",
                 "starts")

    def __init__(self, nodes, nz_pos, edge_take, child_slots, costs, starts):
        self.nodes = nodes            # block slots at this level
        self.nz_pos = nz_pos          # positions within `nodes` having children
        self.edge_take = edge_take    # out-edge positions, grouped per nz node
        self.child_slots = child_slots  # out_indices[edge_take]
        self.costs = costs            # out_costs[edge_take]
        self.starts = starts          # reduceat segment starts into edge_take


class CompiledQuotient:
    """Frozen structural snapshot of a quotient graph (see module docstring).

    ``cyclic`` is True when the quotient currently contains a cycle; the
    snapshot is still cached (Step 3 probes cyclic states transiently) and
    :meth:`bottom_weights` raises exactly like the reference kernel.
    """

    __slots__ = ("structure_version", "ids", "index", "work", "n",
                 "out_indptr", "out_indices", "out_costs", "edge_src",
                 "cyclic", "levels", "_map_key", "_speeds", "_edge_beta")

    @classmethod
    def of(cls, q: QuotientGraph) -> "CompiledQuotient":
        """The cached snapshot for ``q``'s current structure (compile once)."""
        cq = q._compiled
        if cq is None or cq.structure_version != q.structure_version:
            cq = cls.compile(q)
            q._compiled = cq
        return cq

    @classmethod
    def compile(cls, q: QuotientGraph) -> "CompiledQuotient":
        _require_numpy()
        self = cls()
        self.structure_version = q.structure_version
        self._map_key = None
        self._speeds = None
        self._edge_beta = None
        ids: List[BlockId] = list(q.blocks)
        n = len(ids)
        self.ids = ids
        self.n = n
        index = {bid: i for i, bid in enumerate(ids)}
        self.index = index
        self.work = np.fromiter((q.blocks[b].work for b in ids),
                                dtype=np.float64, count=n)

        m = sum(len(q.succ[b]) for b in ids)
        out_indptr = np.zeros(n + 1, dtype=np.intp)
        out_indices = np.empty(m, dtype=np.intp)
        out_costs = np.empty(m, dtype=np.float64)
        pos = 0
        for i, b in enumerate(ids):
            for child, c in q.succ[b].items():
                out_indices[pos] = index[child]
                out_costs[pos] = c
                pos += 1
            out_indptr[i + 1] = pos
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self.out_costs = out_costs
        self.edge_src = np.repeat(np.arange(n, dtype=np.intp),
                                  np.diff(out_indptr))

        # in-CSR (indices only; the peel needs parents, not costs)
        rev = np.argsort(out_indices, kind="stable")
        in_indices = self.edge_src[rev]
        in_indptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(np.bincount(out_indices, minlength=n), out=in_indptr[1:])

        topo, level, n_levels = _peel_levels(
            n, out_indptr, out_indices, in_indptr, in_indices)
        if topo is None:
            self.cyclic = True
            self.levels = []
            return self
        self.cyclic = False
        self.levels = self._build_slabs(n, level, n_levels)
        return self

    def _build_slabs(self, n, level, n_levels) -> List[_LevelSlab]:
        """Group nodes and their out-edges by level, sinks (level 0) first."""
        order = np.argsort(level, kind="stable")
        bounds = np.searchsorted(level[order], np.arange(n_levels + 1))
        outdeg = np.diff(self.out_indptr)
        slabs: List[_LevelSlab] = []
        for lv in range(n_levels):
            nodes = order[bounds[lv]:bounds[lv + 1]]
            counts = outdeg[nodes]
            nz_pos = np.nonzero(counts)[0]
            if nz_pos.size:
                nz_nodes = nodes[nz_pos]
                nz_counts = counts[nz_pos]
                total = int(nz_counts.sum())
                offsets = np.concatenate(
                    ([0], np.cumsum(nz_counts)[:-1])).astype(np.intp)
                edge_take = (np.repeat(self.out_indptr[nz_nodes] - offsets,
                                       nz_counts)
                             + np.arange(total, dtype=np.intp))
                slabs.append(_LevelSlab(
                    nodes=nodes, nz_pos=nz_pos, edge_take=edge_take,
                    child_slots=self.out_indices[edge_take],
                    costs=self.out_costs[edge_take],
                    starts=offsets))
            else:
                slabs.append(_LevelSlab(nodes, nz_pos, None, None, None, None))
        return slabs

    # ------------------------------------------------------------------
    def bottom_weights(self, q: QuotientGraph, cluster: Cluster,
                       default_speed: float = 1.0) -> Dict[BlockId, float]:
        """Eq. (1) for every block, bit-identical to the reference kernel."""
        if self.cyclic:
            raise CyclicWorkflowError(
                message="makespan undefined: quotient graph is cyclic")
        n = self.n
        if n == 0:
            return {}
        # the mapping changes on every probe of the local searches but
        # only through set_proc (or touch()), so version-keyed caching
        # turns the O(n) python attribute walk into a no-op between
        # mapping changes
        map_key = (q.version, id(cluster), default_speed)
        if self._map_key != map_key:
            blocks = q.blocks
            dirty = q._proc_dirty
            same_ctx = (self._map_key is not None
                        and self._map_key[1] == map_key[1]
                        and self._map_key[2] == map_key[2])
            if (same_ctx and self._speeds is not None and dirty is not None
                    and self._edge_beta is None):
                # only known blocks changed proc under the uniform
                # interconnect: patch their speed entries in place
                index = self.index
                speeds_vec = self._speeds
                for bid in dirty:
                    i = index.get(bid)
                    if i is not None:
                        p = blocks[bid].proc
                        speeds_vec[i] = (p.speed if p is not None
                                         else default_speed)
                dirty.clear()
            else:
                self._speeds = np.fromiter(
                    (blocks[b].proc.speed if blocks[b].proc is not None
                     else default_speed for b in self.ids),
                    dtype=np.float64, count=n)
                self._edge_beta = self._edge_bandwidths(q, cluster)
                # full snapshot: the dirty set is consumed wholesale
                q._proc_dirty = set()
            self._map_key = map_key
        speeds = self._speeds
        edge_beta = self._edge_beta

        l = np.empty(n, dtype=np.float64)
        work = self.work
        for slab in self.levels:
            nodes = slab.nodes
            own = work[nodes] / speeds[nodes]
            if slab.nz_pos is not None and slab.nz_pos.size:
                if edge_beta is None:  # uniform interconnect: scalar beta
                    term = slab.costs / cluster.bandwidth
                else:
                    term = slab.costs / edge_beta[slab.edge_take]
                cand = term + l[slab.child_slots]
                seg = np.maximum.reduceat(cand, slab.starts)
                best = np.zeros(nodes.shape[0])
                best[slab.nz_pos] = np.maximum(seg, 0.0)
                l[nodes] = own + best
            else:
                l[nodes] = own
        return dict(zip(self.ids, l.tolist()))

    def _edge_bandwidths(self, q: QuotientGraph, cluster: Cluster):
        """Per-edge link bandwidth, or None for the uniform scalar shortcut.

        Mirrors :func:`repro.core.makespan.link_rule`: an undecided
        endpoint uses the model's conservative default, same-processor
        links are ``inf`` under the per-pair models (``c / inf == 0.0``).
        """
        from repro.platform.bandwidth import UniformBandwidth

        model = cluster.bandwidth_model
        if isinstance(model, UniformBandwidth):
            return None
        blocks = q.blocks
        procs: List[Optional[object]] = []
        seen: Dict[int, int] = {}
        codes = np.empty(self.n, dtype=np.intp)
        for i, b in enumerate(self.ids):
            p = blocks[b].proc
            key = -1 if p is None else id(p)
            code = seen.get(key)
            if code is None:
                code = len(procs)
                seen[key] = code
                procs.append(p)
            codes[i] = code
        k = len(procs)
        B = np.empty((k, k), dtype=np.float64)
        for i, p in enumerate(procs):
            for j, r in enumerate(procs):
                B[i, j] = cluster.link_bandwidth(p, r)
        return B[codes[self.edge_src], codes[self.out_indices]]
