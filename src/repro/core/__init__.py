"""Core: the paper's contribution — quotient-graph mapping heuristics.

* :mod:`repro.core.quotient` — the quotient DAG ``Gamma`` with incremental
  merge/unmerge (Section 3.3, Fig. 1);
* :mod:`repro.core.makespan` — bottom weights, makespan, critical path
  (Eqs. (1)-(2));
* :mod:`repro.core.evaluator` — incremental makespan engine with
  O(affected-ancestors) delta evaluation for the merge/swap searches;
* :mod:`repro.core.mapping` — validated block-to-processor mappings;
* :mod:`repro.core.baseline` — the DagHetMem baseline (Section 4.1);
* :mod:`repro.core.assignment` — Step 2 (``BiggestAssign``/``FitBlock``);
* :mod:`repro.core.merging` — Step 3 (``MergeUnassignedToAssigned``);
* :mod:`repro.core.swaps` — Step 4 (``Swap`` + idle-processor moves);
* :mod:`repro.core.heuristic` — the DagHetPart orchestrator with the
  ``k'`` sweep (Section 4.2).
"""

from repro.core.quotient import QuotientGraph, QBlock
from repro.core.makespan import bottom_weights, makespan, critical_path
from repro.core.evaluator import MakespanEvaluator
from repro.core.mapping import Mapping, BlockAssignment, simulate_mapping
from repro.core.baseline import dag_het_mem
from repro.core.assignment import biggest_assign, fit_block, AssignmentState
from repro.core.merging import merge_unassigned_to_assigned, find_ms_opt_merge
from repro.core.swaps import improve_by_swaps, move_critical_to_idle
from repro.core.heuristic import (
    DagHetPartConfig,
    SweepOutcome,
    SweepPoint,
    dag_het_part,
    dag_het_part_sweep,
    schedule,
)

__all__ = [
    "QuotientGraph",
    "QBlock",
    "bottom_weights",
    "makespan",
    "critical_path",
    "MakespanEvaluator",
    "Mapping",
    "BlockAssignment",
    "simulate_mapping",
    "dag_het_mem",
    "biggest_assign",
    "fit_block",
    "AssignmentState",
    "merge_unassigned_to_assigned",
    "find_ms_opt_merge",
    "improve_by_swaps",
    "move_critical_to_idle",
    "dag_het_part",
    "dag_het_part_sweep",
    "DagHetPartConfig",
    "SweepOutcome",
    "SweepPoint",
    "schedule",
]
