"""Step 4 of DagHetPart: local search (Algorithm 5).

Two mechanisms, both monotone in makespan:

* **swaps** — exchange the processors of two quotient vertices when both
  fit memory-wise; the best improving swap is applied, repeatedly, until
  none exists (steepest descent);
* **idle moves** — when processors remain idle (small workflows, few
  blocks), move critical-path vertices to faster idle processors that can
  hold them, recomputing the critical path after each move.

Both accept an optional :class:`~repro.core.evaluator.MakespanEvaluator`;
with one, each candidate mutation is priced by delta evaluation
(O(affected ancestors)) instead of a full bottom-weight pass over the
quotient. Without one, the original full-recompute path is used — the two
are bit-for-bit equivalent (see ``benchmarks/test_evaluator_delta.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.evaluator import MakespanEvaluator
from repro.core.kernels import get_kernel
from repro.core.makespan import critical_path, makespan
from repro.core.quotient import BlockId, QuotientGraph
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor

Node = Hashable


def improve_by_swaps(q: QuotientGraph, cluster: Cluster,
                     cache: RequirementCache, max_rounds: int = 1000,
                     evaluator: Optional[MakespanEvaluator] = None) -> int:
    """Steepest-descent processor swaps; returns the number applied.

    A swap of vertices ``(nu, nu')`` is feasible when each block fits the
    other's processor memory. Each round evaluates all feasible pairs and
    applies the single best strictly-improving one (Algorithm 5 keeps the
    best pair and stops when no improving swap exists).
    """
    applied = 0
    requirement: Dict[BlockId, float] = {}
    ev = evaluator
    current = ev.makespan() if ev is not None else makespan(q, cluster)
    for _ in range(max_rounds):
        ids = [bid for bid, blk in q.blocks.items() if blk.proc is not None]
        for bid in ids:
            # filled lazily each round: merges elsewhere may have replaced
            # block ids since the previous round (or a previous call)
            if bid not in requirement:
                requirement[bid] = cache.peak(q.blocks[bid].tasks)
        best_mu = current
        best_pair: Optional[Tuple[BlockId, BlockId]] = None
        # candidate enumeration (proc-identity + memory feasibility) is a
        # kernel: the pair order is part of the contract, since ties in
        # makespan go to the first-seen pair
        pairs = get_kernel().feasible_swap_pairs(ids, requirement, q.blocks)
        for a, b in pairs:
            if ev is not None:
                mu = ev.eval_swap(a, b)
            else:
                pa, pb = q.blocks[a].proc, q.blocks[b].proc
                q.set_proc(a, pb)
                q.set_proc(b, pa)
                mu = makespan(q, cluster)
                q.set_proc(a, pa)
                q.set_proc(b, pb)
            if mu < best_mu - 1e-12:
                best_mu = mu
                best_pair = (a, b)
        if best_pair is None:
            break
        a, b = best_pair
        if ev is not None:
            ev.apply_swap(a, b)
        else:
            pa, pb = q.blocks[a].proc, q.blocks[b].proc
            q.set_proc(a, pb)
            q.set_proc(b, pa)
        current = best_mu
        applied += 1
    return applied


def move_critical_to_idle(q: QuotientGraph, cluster: Cluster,
                          cache: RequirementCache,
                          evaluator: Optional[MakespanEvaluator] = None) -> int:
    """Move critical-path vertices to faster idle processors; returns #moves.

    Activated only when some processors are idle after swapping. Each
    critical-path vertex is moved at most once ("as long as there are
    tasks in the critical path that have not been moved"); moves must
    strictly improve the makespan. The idle pool is recomputed from
    :meth:`QuotientGraph.used_processors` before each pass, so a processor
    vacated by a move rejoins it exactly when no block uses it any more.
    """
    ev = evaluator
    moved: Set[BlockId] = set()
    moves = 0
    current: Optional[float] = None
    while True:
        used = q.used_processors()
        idle: List[Processor] = [p for p in cluster.by_speed_desc()
                                 if p.name not in used]
        if not idle:
            return moves
        if current is None:
            current = ev.makespan() if ev is not None else makespan(q, cluster)
        path = ev.critical_path() if ev is not None else critical_path(q, cluster)
        progressed = False
        for nu in path:
            if nu in moved or nu not in q.blocks:
                continue
            blk = q.blocks[nu]
            if blk.proc is None:
                continue
            req = cache.peak(blk.tasks)
            for candidate in idle:
                if candidate.speed <= blk.proc.speed or req > candidate.memory:
                    continue
                old = blk.proc
                if ev is not None:
                    mu = ev.eval_move(nu, candidate)
                else:
                    q.set_proc(nu, candidate)
                    mu = makespan(q, cluster)
                    q.set_proc(nu, old)
                if mu < current - 1e-12:
                    if ev is not None:
                        ev.apply_move(nu, candidate)
                    else:
                        q.set_proc(nu, candidate)
                    current = mu
                    moved.add(nu)
                    moves += 1
                    progressed = True
                    break
            if progressed:
                break  # critical path changed; recompute
        if not progressed:
            return moves
