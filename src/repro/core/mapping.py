"""Validated block-to-processor mappings — the heuristics' output type.

A :class:`Mapping` bundles the partition, the processor of each block, the
block memory requirements (with the traversal realizing them) and the
resulting makespan. :meth:`Mapping.validate` re-checks every DAGP-PM
constraint from scratch, so tests and downstream users never have to trust
a heuristic's internal bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.core.makespan import makespan as quotient_makespan
from repro.core.quotient import QuotientGraph
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.utils.errors import InvalidPartitionError
from repro.workflow.graph import Workflow

Node = Hashable


@dataclass(frozen=True)
class BlockAssignment:
    """One block of the final mapping."""

    tasks: FrozenSet[Node]
    processor: Processor
    requirement: float
    traversal: Tuple[Node, ...]


class Mapping:
    """A complete solution of the DAGP-PM problem for one workflow/cluster."""

    def __init__(self, workflow: Workflow, cluster: Cluster,
                 assignments: Sequence[BlockAssignment], algorithm: str = ""):
        self.workflow = workflow
        self.cluster = cluster
        self.assignments = list(assignments)
        self.algorithm = algorithm
        self._makespan: Optional[float] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_quotient(cls, q: QuotientGraph, cluster: Cluster,
                      cache: RequirementCache, algorithm: str = "") -> "Mapping":
        """Freeze a fully-assigned quotient graph into a Mapping."""
        assignments = []
        for bid, blk in q.blocks.items():
            if blk.proc is None:
                raise InvalidPartitionError(f"quotient vertex {bid} has no processor")
            result = cache.requirement(blk.tasks)
            assignments.append(BlockAssignment(
                tasks=frozenset(blk.tasks),
                processor=blk.proc,
                requirement=result.peak,
                traversal=result.order,
            ))
        return cls(q.wf, cluster, assignments, algorithm)

    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return len(self.assignments)

    def processors_used(self) -> List[Processor]:
        return [a.processor for a in self.assignments]

    def block_of(self, task: Node) -> BlockAssignment:
        for a in self.assignments:
            if task in a.tasks:
                return a
        raise KeyError(task)

    def to_quotient(self) -> QuotientGraph:
        """Rebuild the quotient graph (with processors) of this mapping."""
        return QuotientGraph.from_partition(
            self.workflow,
            [a.tasks for a in self.assignments],
            [a.processor for a in self.assignments],
        )

    def makespan(self) -> float:
        """The bottom-weight makespan of this mapping (cached)."""
        if self._makespan is None:
            self._makespan = quotient_makespan(self.to_quotient(), self.cluster)
        return self._makespan

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-check every DAGP-PM constraint; raises on violation.

        1. blocks are a disjoint cover of the task set;
        2. distinct blocks use distinct processors (injectivity);
        3. every block's requirement fits its processor's memory, and the
           recorded requirement is realized by the recorded traversal;
        4. the quotient graph is acyclic.
        """
        from repro.memdag.model import peak_of_traversal

        seen: set = set()
        for a in self.assignments:
            if a.tasks & seen:
                raise InvalidPartitionError("blocks overlap")
            seen |= a.tasks
        missing = set(self.workflow.tasks()) - seen
        if missing:
            raise InvalidPartitionError(f"{len(missing)} task(s) unmapped")

        names = [a.processor.name for a in self.assignments]
        if len(set(names)) != len(names):
            raise InvalidPartitionError("two blocks mapped to the same processor")

        for a in self.assignments:
            peak = peak_of_traversal(self.workflow, list(a.traversal), set(a.tasks))
            if peak > a.requirement + 1e-9:
                raise InvalidPartitionError(
                    f"recorded requirement {a.requirement} below actual peak {peak}")
            if a.requirement > a.processor.memory + 1e-9:
                raise InvalidPartitionError(
                    f"block requirement {a.requirement:g} exceeds memory "
                    f"{a.processor.memory:g} of {a.processor.name}")

        q = self.to_quotient()
        if not q.is_acyclic():
            raise InvalidPartitionError("quotient graph is cyclic")

    def summary(self) -> Dict[str, float]:
        return {
            "makespan": self.makespan(),
            "n_blocks": float(self.n_blocks),
            "max_requirement": max((a.requirement for a in self.assignments), default=0.0),
        }

    def __repr__(self) -> str:
        return (f"Mapping(algorithm={self.algorithm!r}, blocks={self.n_blocks}, "
                f"makespan={self.makespan():.4g})")


def simulate_mapping(mapping: Mapping) -> float:
    """Forward event simulation of the mapping's execution.

    Computes block finish times with the same model as the bottom-weight
    recursion but *forward* (``finish = exec + max over parents of
    (finish_parent + transfer)``); equality with :meth:`Mapping.makespan`
    is a correctness cross-check used by the tests.
    """
    q = mapping.to_quotient()
    order = q.topological_order()
    if order is None:
        raise InvalidPartitionError("cannot simulate a cyclic quotient")
    cluster = mapping.cluster
    finish: Dict[int, float] = {}
    for bid in order:
        blk = q.blocks[bid]
        ready = 0.0
        for parent, c in q.pred[bid].items():
            link = cluster.link_bandwidth(q.blocks[parent].proc, blk.proc)
            ready = max(ready, finish[parent] + c / link)
        finish[bid] = ready + blk.work / blk.proc.speed
    return max(finish.values()) if finish else 0.0
