"""Makespan lower bounds and optimality-gap reporting.

The DAGP-PM problem is NP-complete, so neither heuristic comes with a
guarantee; these bounds put every measured makespan in context. All three
are valid for *any* mapping that satisfies the model of Section 3:

* **work bound** — the total work divided by the sum of the ``k`` fastest
  processor speeds: even a perfectly balanced, communication-free
  schedule cannot beat it;
* **critical-path bound** — the workflow's work-only critical path run
  entirely on the fastest processor (communication is free only if the
  whole path shares one processor, so edge costs are excluded);
* **bottleneck-task bound** — the heaviest single task on the fastest
  processor that can *hold* it (memory constraints can forbid the fastest
  machines).

``makespan_lower_bound`` is their maximum; ``optimality_gap`` divides a
mapping's makespan by it.
"""

from __future__ import annotations

from typing import Dict

from repro.core.mapping import Mapping
from repro.platform.cluster import Cluster
from repro.workflow.analysis import critical_path
from repro.workflow.graph import Workflow


def work_bound(wf: Workflow, cluster: Cluster) -> float:
    """Total work over the aggregate speed of all processors."""
    total_speed = sum(p.speed for p in cluster)
    if total_speed <= 0:
        return float("inf")
    return wf.total_work() / total_speed


def critical_path_bound(wf: Workflow, cluster: Cluster) -> float:
    """Work along the longest work-only path, at the maximum speed.

    Edge costs are deliberately excluded: a mapping placing the whole path
    on one processor pays no communication, so including them would make
    the bound invalid.
    """
    path, _ = critical_path(wf, beta=float("inf"))
    if not path:
        return 0.0
    path_work = sum(wf.work(u) for u in path)
    max_speed = max(p.speed for p in cluster)
    return path_work / max_speed


def bottleneck_task_bound(wf: Workflow, cluster: Cluster) -> float:
    """The heaviest task on the fastest processor whose memory can hold it.

    A task ``u`` can only run on processors with ``M_j >= r_u``; on
    memory-stratified clusters this excludes the fast small-memory nodes
    and sharpens the bound considerably.
    """
    bound = 0.0
    speeds_by_memory = sorted(((p.memory, p.speed) for p in cluster))
    for u in wf.tasks():
        r = wf.task_requirement(u)
        best_speed = 0.0
        for memory, speed in speeds_by_memory:
            if memory + 1e-9 >= r:
                best_speed = max(best_speed, speed)
        if best_speed == 0.0:
            return float("inf")  # task fits nowhere: every makespan is inf
        bound = max(bound, wf.work(u) / best_speed)
    return bound


def makespan_lower_bound(wf: Workflow, cluster: Cluster) -> float:
    """Best (largest) of the three lower bounds."""
    return max(work_bound(wf, cluster),
               critical_path_bound(wf, cluster),
               bottleneck_task_bound(wf, cluster))


def bound_report(wf: Workflow, cluster: Cluster) -> Dict[str, float]:
    """All bounds by name, plus the combined one."""
    return {
        "work": work_bound(wf, cluster),
        "critical_path": critical_path_bound(wf, cluster),
        "bottleneck_task": bottleneck_task_bound(wf, cluster),
        "combined": makespan_lower_bound(wf, cluster),
    }


def optimality_gap(mapping: Mapping) -> float:
    """``mapping.makespan() / lower_bound`` — 1.0 would be provably optimal."""
    lb = makespan_lower_bound(mapping.workflow, mapping.cluster)
    if lb <= 0:
        return 1.0
    return mapping.makespan() / lb
