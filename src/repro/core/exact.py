"""Exhaustive reference solver for tiny DAGP-PM instances.

The long-standing "ILP reference" roadmap leftover, closed in spirit:
on instances small enough to enumerate (``n <= max_tasks``, default 8),
``exact`` finds the provably optimal block partition + processor
assignment under the paper's makespan model, giving the heuristics an
optimality-gap yardstick (see the ``optimality_gap`` experiment).

Search space and why it stays tractable:

* **Partitions** — every set partition of the task set into at most
  ``min(k, n)`` blocks is enumerated (Bell(8) = 4140), then filtered by
  quotient acyclicity and per-block memory feasibility.
* **Assignments** — processors of the same *kind* (speed, memory) are
  interchangeable under the paper's uniform-bandwidth model, so the
  assignment search runs over kinds with multiplicity, not over
  individual processors (6 kinds instead of 36 processors on the
  default cluster). A branch-and-bound over fastest-first kind choices
  prunes with the model's monotonicity: makespan never decreases when a
  block slows down, so a partial assignment whose optimistic completion
  (every remaining block on its fastest feasible kind, multiplicity
  ignored) is already no better than the incumbent can be cut.

The solver is exact only under :class:`~repro.platform.bandwidth.
UniformBandwidth` (kind-interchangeability breaks on per-link models)
and refuses anything else — like it refuses oversized instances — with
a loud ``ValueError`` rather than a silently wrong "optimum". It is
registered with the ``tiny-only`` capability, which the portfolio's
default membership filter excludes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.mapping import BlockAssignment, Mapping
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.utils.errors import NoFeasibleMappingError
from repro.workflow.graph import Workflow

Node = Hashable

#: default ceiling on instance size; Bell(8) = 4140 partitions
DEFAULT_MAX_TASKS = 8

#: feasibility slack, matching Mapping.validate's epsilon
_EPS = 1e-9


@dataclass(frozen=True)
class ExactConfig:
    """Knobs of the exact solver.

    ``max_tasks`` bounds the instances it accepts — raising it grows the
    search as the Bell numbers do (Bell(10) = 115975, Bell(12) ≈ 4.2M),
    so the default stays at the issue's "tiny" scale.
    """

    max_tasks: int = DEFAULT_MAX_TASKS

    def __post_init__(self):
        if self.max_tasks < 1:
            raise ValueError(f"max_tasks must be >= 1, got {self.max_tasks}")


@dataclass(frozen=True)
class _Kind:
    """One processor kind: interchangeable units under uniform bandwidth."""

    speed: float
    memory: float
    units: Tuple  # the actual Processor objects, deterministic order


def _partitions(tasks: Sequence[Node],
                max_blocks: int) -> Iterator[List[List[Node]]]:
    """Every set partition of ``tasks`` into at most ``max_blocks`` blocks.

    Classic restricted-growth recursion: task ``i`` joins an existing
    block or opens a new one, so each partition is generated exactly once.
    """
    blocks: List[List[Node]] = []

    def rec(i: int) -> Iterator[List[List[Node]]]:
        if i == len(tasks):
            yield [list(block) for block in blocks]
            return
        task = tasks[i]
        for block in blocks:
            block.append(task)
            yield from rec(i + 1)
            block.pop()
        if len(blocks) < max_blocks:
            blocks.append([task])
            yield from rec(i + 1)
            blocks.pop()

    yield from rec(0)


def _quotient_edges(workflow: Workflow,
                    block_of: Dict[Node, int],
                    n_blocks: int) -> Optional[List[Dict[int, float]]]:
    """Aggregated inter-block edge costs, or ``None`` on a cyclic quotient."""
    children: List[Dict[int, float]] = [{} for _ in range(n_blocks)]
    indeg = [0] * n_blocks
    for u, v, cost in workflow.edges():
        bu, bv = block_of[u], block_of[v]
        if bu == bv:
            continue
        if bv not in children[bu]:
            indeg[bv] += 1
        children[bu][bv] = children[bu].get(bv, 0.0) + cost
    # Kahn's algorithm on <= max_tasks vertices
    stack = [b for b in range(n_blocks) if indeg[b] == 0]
    seen = 0
    order = []
    while stack:
        b = stack.pop()
        order.append(b)
        seen += 1
        for child in children[b]:
            indeg[child] -= 1
            if indeg[child] == 0:
                stack.append(child)
    if seen != n_blocks:
        return None  # cyclic quotient: merging created a dependency loop
    return children


def _makespan(works: Sequence[float], speeds: Sequence[float],
              children: Sequence[Dict[int, float]], beta: float) -> float:
    """Bottom-weight makespan of one assigned quotient (Section 3.3).

    Mirrors :func:`repro.core.makespan.bottom_weights` under uniform
    bandwidth: ``l_b = w_b/s_b + max_child (c/beta + l_child)``. The
    returned optimum is re-checked against the shared engine when the
    final :class:`Mapping` is built, so the two can never silently drift.
    """
    n = len(works)
    l: List[float] = [0.0] * n
    done = [False] * n
    for root in range(n):
        if done[root]:
            continue
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            b, expanded = stack.pop()
            if done[b]:
                continue
            if expanded:
                best_child = 0.0
                for child, cost in children[b].items():
                    best_child = max(best_child, cost / beta + l[child])
                l[b] = works[b] / speeds[b] + best_child
                done[b] = True
            else:
                stack.append((b, True))
                stack.extend((child, False) for child in children[b])
    return max(l) if l else 0.0


class _AssignmentSearch:
    """Branch-and-bound over kind assignments for one fixed partition."""

    def __init__(self, works: List[float],
                 children: List[Dict[int, float]],
                 feasible: List[List[int]],  # per block, fastest-first
                 kinds: List[_Kind], beta: float):
        self.works = works
        self.children = children
        self.feasible = feasible
        self.kinds = kinds
        self.beta = beta
        self.best: Optional[float] = None
        self.best_choice: Optional[List[int]] = None
        self.leaves = 0

    def lower_bound(self, choice: List[int], upto: int) -> float:
        """Optimistic makespan: undecided blocks get their fastest
        feasible kind with multiplicity ignored (valid by monotonicity)."""
        speeds = [self.kinds[choice[b]].speed if b < upto
                  else self.kinds[self.feasible[b][0]].speed
                  for b in range(len(self.works))]
        return _makespan(self.works, speeds, self.children, self.beta)

    def run(self, budget: Optional[float]) -> None:
        """Explore; ``budget`` (the best makespan across partitions so
        far) seeds the incumbent so hopeless partitions exit early."""
        self.best = budget
        remaining = [len(kind.units) for kind in self.kinds]
        choice = [-1] * len(self.works)

        def rec(b: int) -> None:
            if self.best is not None \
                    and self.lower_bound(choice, b) >= self.best - _EPS:
                return
            if b == len(self.works):
                value = self.lower_bound(choice, b)
                self.leaves += 1
                if self.best is None or value < self.best - _EPS:
                    self.best = value
                    self.best_choice = list(choice)
                return
            for kind_index in self.feasible[b]:
                if remaining[kind_index] == 0:
                    continue
                remaining[kind_index] -= 1
                choice[b] = kind_index
                rec(b + 1)
                choice[b] = -1
                remaining[kind_index] += 1

        rec(0)


def exact_schedule(workflow: Workflow, cluster: Cluster,
                   config: Optional[ExactConfig] = None
                   ) -> Tuple[Mapping, Dict[str, int]]:
    """The optimal mapping of a tiny instance, plus search statistics.

    Raises ``ValueError`` on oversized instances or non-uniform
    bandwidth models (programming errors — the caller picked the wrong
    tool) and :class:`NoFeasibleMappingError` when no partition fits the
    platform's memories (a problem outcome, captured as ``FailureInfo``
    like any other algorithm's).
    """
    from repro.platform.bandwidth import UniformBandwidth

    config = config or ExactConfig()
    n = workflow.n_tasks
    if n == 0:
        return Mapping(workflow, cluster, [], algorithm="Exact"), \
            {"exact_partitions": 0, "exact_feasible": 0,
             "exact_evaluations": 0}
    if n > config.max_tasks:
        raise ValueError(
            f"exact solver accepts at most {config.max_tasks} tasks "
            f"(got {n}); it enumerates every set partition, so larger "
            f"instances belong to the heuristics")
    if not isinstance(cluster.bandwidth_model, UniformBandwidth):
        raise ValueError(
            f"exact solver requires the uniform-bandwidth model "
            f"(got {type(cluster.bandwidth_model).__name__}): processor "
            f"kinds are only interchangeable when every link is equal")

    # group processors into kinds; units sorted by name for determinism
    by_kind: Dict[Tuple[float, float], List] = {}
    for proc in cluster.processors:
        by_kind.setdefault((proc.speed, proc.memory), []).append(proc)
    kinds = [
        _Kind(speed=speed, memory=memory,
              units=tuple(sorted(units, key=lambda p: p.name)))
        for (speed, memory), units in sorted(by_kind.items(), reverse=True)
    ]
    kinds_fastest_first = sorted(
        range(len(kinds)), key=lambda i: (-kinds[i].speed, -kinds[i].memory))

    tasks = workflow.topological_order()
    requirements = RequirementCache(workflow)
    beta = cluster.bandwidth

    stats = {"exact_partitions": 0, "exact_feasible": 0,
             "exact_evaluations": 0}
    best_value: Optional[float] = None
    best_partition: Optional[List[List[Node]]] = None
    best_choice: Optional[List[int]] = None

    for partition in _partitions(tasks, min(cluster.k, n)):
        stats["exact_partitions"] += 1
        block_of = {task: b for b, block in enumerate(partition)
                    for task in block}
        children = _quotient_edges(workflow, block_of, len(partition))
        if children is None:
            continue
        feasible: List[List[int]] = []
        works: List[float] = []
        ok = True
        for block in partition:
            peak = requirements.peak(block)
            viable = [i for i in kinds_fastest_first
                      if peak <= kinds[i].memory + _EPS]
            if not viable:
                ok = False
                break
            feasible.append(viable)
            works.append(sum(workflow.work(task) for task in block))
        if not ok:
            continue
        stats["exact_feasible"] += 1
        search = _AssignmentSearch(works, children, feasible, kinds, beta)
        search.run(best_value)
        stats["exact_evaluations"] += search.leaves
        if search.best_choice is not None:
            best_value = search.best
            best_partition = [list(block) for block in partition]
            best_choice = search.best_choice

    if best_partition is None or best_choice is None:
        raise NoFeasibleMappingError(
            f"exact: no acyclic, memory-feasible partition of "
            f"{workflow.name!r} ({n} task(s)) exists on "
            f"{cluster.name!r}", unplaced_tasks=n)

    # materialize: hand each block a concrete unit of its chosen kind
    next_unit = [0] * len(kinds)
    assignments = []
    for block, kind_index in zip(best_partition, best_choice):
        proc = kinds[kind_index].units[next_unit[kind_index]]
        next_unit[kind_index] += 1
        result = requirements.requirement(block)
        assignments.append(BlockAssignment(
            tasks=frozenset(block), processor=proc,
            requirement=result.peak, traversal=result.order))
    return Mapping(workflow, cluster, assignments, algorithm="Exact"), stats
