"""Step 2 of DagHetPart: ``BiggestAssign`` and ``FitBlock`` (Algorithms 1-2).

Blocks from Step 1 enter a max-priority queue keyed by memory requirement;
processors queue up by decreasing memory. The biggest block is fitted onto
the biggest free processor; blocks that do not fit are bisected by the
partitioner and their pieces re-queued. When processors run out, remaining
blocks are partitioned down to the smallest processor's memory (without
being mapped) so that Step 3 has mergeable pieces to work with.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

from repro.memdag.requirement import RequirementCache
from repro.partition.api import bisect_block
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.utils.errors import PartitionSplitError
from repro.utils.pqueue import AddressableMaxPQ
from repro.workflow.graph import Workflow

Node = Hashable


@dataclass
class AssignmentState:
    """Outcome of Step 2: blocks, partial assignment, and split diagnostics."""

    blocks: Dict[int, Set[Node]] = field(default_factory=dict)
    assigned: Dict[int, Processor] = field(default_factory=dict)
    unassigned: List[int] = field(default_factory=list)
    #: blocks that could not be split small enough (singletons too large)
    oversized: List[int] = field(default_factory=list)
    n_splits: int = 0
    _ids: "itertools.count" = field(default_factory=itertools.count, repr=False)

    def next_id(self) -> int:
        return next(self._ids)

    def all_tasks_covered(self, wf: Workflow) -> bool:
        covered: Set[Node] = set()
        for tasks in self.blocks.values():
            covered |= tasks
        return covered == set(wf.tasks())


def fit_block(wf: Workflow, block_id: int, state: AssignmentState,
              queue: AddressableMaxPQ, proc: Processor, do_map: bool,
              cache: RequirementCache, weight: str = "requirement") -> Optional[int]:
    """Algorithm 2. Returns the placed block id, or None.

    If the block fits ``proc`` and ``do_map`` is set, it is assigned there.
    If the block fits but ``do_map`` is false, nothing happens (the block
    is already small enough for the smallest processor). Otherwise the
    block is bisected and the sub-blocks re-enter the queue; singleton
    blocks that cannot be split are recorded as ``oversized``.
    """
    tasks = state.blocks[block_id]
    requirement = cache.peak(tasks)
    if requirement <= proc.memory:
        if do_map:
            state.assigned[block_id] = proc
            return block_id
        state.unassigned.append(block_id)
        return None
    try:
        pieces = bisect_block(wf, tasks, weight=weight)
    except PartitionSplitError:
        state.oversized.append(block_id)
        return None
    state.n_splits += 1
    del state.blocks[block_id]
    for piece in pieces:
        new_id = state.next_id()
        state.blocks[new_id] = piece
        queue.push(new_id, cache.peak(piece))
    return None


def biggest_assign(wf: Workflow, cluster: Cluster, partition: List[Set[Node]],
                   cache: Optional[RequirementCache] = None,
                   weight: str = "requirement") -> AssignmentState:
    """Algorithm 1. Produces a valid *partial* assignment.

    Every assigned block fits its processor; leftover blocks (more blocks
    than processors, or unsplittable oversized blocks) are returned
    unassigned for Step 3 to merge.
    """
    cache = cache or RequirementCache(wf)
    state = AssignmentState()
    queue = AddressableMaxPQ()
    for tasks in partition:
        bid = state.next_id()
        state.blocks[bid] = set(tasks)
        queue.push(bid, cache.peak(tasks))

    free_procs: List[Processor] = cluster.by_memory_desc()
    head = 0
    while queue and head < len(free_procs):
        block_id, _ = queue.extract_max()
        if block_id not in state.blocks:
            continue
        placed = fit_block(wf, block_id, state, queue, free_procs[head],
                           do_map=True, cache=cache, weight=weight)
        if placed is not None:
            head += 1  # processor now busy

    if queue:
        p_min = cluster.smallest_memory_processor()
        while queue:
            block_id, _ = queue.extract_max()
            if block_id not in state.blocks:
                continue
            fit_block(wf, block_id, state, queue, p_min,
                      do_map=False, cache=cache, weight=weight)

    # oversized blocks stay in state.blocks but are neither assigned nor in
    # `unassigned`; surface them as unassigned so Step 3 sees every block
    for bid in state.oversized:
        if bid in state.blocks and bid not in state.unassigned:
            state.unassigned.append(bid)
    return state
