"""Simulated-annealing refinement over a fully-assigned quotient graph.

Step 4 of DagHetPart stops at steepest-descent swaps and idle moves; this
module continues the local search with a Metropolis acceptance rule so
the mapping can escape the local optimum the greedy pass lands in. The
neighborhood is the same move/swap structure the paper's local search
uses — reassign one block to an idle processor, or exchange the
processors of two blocks — so every visited state keeps the DAGP-PM
invariants: blocks on distinct processors, every block within its
processor's memory.

Every candidate is priced through the incremental
:class:`~repro.core.evaluator.MakespanEvaluator`, never a full
bottom-weight recompute: the mutation is applied, one lazy delta sync
prices it at O(ancestors of the touched blocks), and a rejection merely
logs the inverse ops (they fold into the next trial's sync) — so each
Metropolis trial costs exactly one delta pass, which is what makes
thousands of trials cheaper than a handful of full passes (the
refinement bench asserts the full-pass counter stays at zero).

Determinism contract: :class:`AnnealConfig` carries an explicit ``seed``
and the refiner draws every random number from one
``numpy.random.Generator`` built by :func:`repro.utils.rng.make_rng`, so
the same (quotient, cluster, config) triple reproduces the same final
mapping bit-for-bit. The best state ever visited — which starts at the
incoming seed mapping — is restored before returning, so refinement never
ends worse than it began.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.evaluator import MakespanEvaluator
from repro.core.quotient import BlockId, QuotientGraph
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.utils.rng import make_rng

#: cooling schedules AnnealConfig.schedule accepts
SCHEDULES = ("geometric", "linear")


@dataclass(frozen=True)
class AnnealConfig:
    """Tuning knobs of the simulated-annealing refiner (all deterministic).

    Attributes
    ----------
    seed:
        RNG seed; the whole refinement is a pure function of it.
    iterations:
        Metropolis trials per restart.
    restarts:
        Independent cooling runs; each restart re-heats from the best
        state found so far (its RNG stream continues, so restarts stay
        deterministic).
    t0:
        Initial temperature; ``None`` derives it as ``t0_fraction`` times
        the seed mapping's makespan.
    t0_fraction:
        Fraction of the seed makespan used when ``t0`` is ``None``.
    t_final_fraction:
        Final temperature as a fraction of ``t0`` (the schedule anneals
        from ``t0`` down to ``t0 * t_final_fraction``).
    schedule:
        ``"geometric"`` (exponential decay) or ``"linear"``.
    move_fraction:
        Probability a trial proposes a move-to-idle-processor; the rest
        propose pairwise swaps.
    time_budget:
        Optional wall-clock cap in seconds checked between trials; the
        one knob that trades determinism for latency (leave ``None`` for
        reproducible runs).
    k_prime_strategy:
        Forwarded to the ``dag_het_part_sweep`` call that produces the
        seed mapping (used by the registered ``anneal`` scheduler, not by
        :func:`anneal_refine` itself).
    """

    seed: int = 0
    iterations: int = 1000
    restarts: int = 1
    t0: Optional[float] = None
    t0_fraction: float = 0.05
    t_final_fraction: float = 1e-3
    schedule: str = "geometric"
    move_fraction: float = 0.5
    time_budget: Optional[float] = None
    k_prime_strategy: str = "auto"

    def __post_init__(self):
        if self.iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {self.iterations}")
        if self.restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {self.restarts}")
        if self.t0 is not None and self.t0 <= 0:
            raise ValueError(f"t0 must be positive, got {self.t0}")
        if self.t0_fraction <= 0:
            raise ValueError(f"t0_fraction must be positive, got {self.t0_fraction}")
        if not 0 < self.t_final_fraction <= 1:
            raise ValueError(f"t_final_fraction must be in (0, 1], "
                             f"got {self.t_final_fraction}")
        if self.schedule not in SCHEDULES:
            raise ValueError(f"unknown schedule {self.schedule!r}; "
                             f"valid: {', '.join(SCHEDULES)}")
        if not 0 <= self.move_fraction <= 1:
            raise ValueError(f"move_fraction must be in [0, 1], "
                             f"got {self.move_fraction}")
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError(f"time_budget must be positive, got {self.time_budget}")


@dataclass(frozen=True)
class AnnealStats:
    """What one :func:`anneal_refine` run did.

    ``initial_makespan`` is the seed mapping's, ``final_makespan`` the
    restored best — never larger. ``trials`` counts Metropolis proposals
    actually priced (infeasible draws are skipped but still consume the
    RNG stream), ``accepted`` the ones applied, ``improved`` how often the
    best state advanced.
    """

    initial_makespan: float
    final_makespan: float
    trials: int = 0
    accepted: int = 0
    improved: int = 0
    restarts: int = 1
    moves_applied: int = 0
    swaps_applied: int = 0


def _temperature(config: AnnealConfig, t0: float, i: int) -> float:
    """Temperature of trial ``i`` in ``0..iterations-1`` (t0 → t0*final)."""
    span = max(config.iterations - 1, 1)
    frac = i / span
    if config.schedule == "geometric":
        return t0 * (config.t_final_fraction ** frac)
    return t0 * (1.0 - frac * (1.0 - config.t_final_fraction))


def anneal_refine(q: QuotientGraph, cluster: Cluster, cache: RequirementCache,
                  config: Optional[AnnealConfig] = None,
                  evaluator: Optional[MakespanEvaluator] = None) -> AnnealStats:
    """Refine a fully-assigned quotient in place; returns the run's stats.

    ``q`` must have every block on a distinct processor (the state a
    DagHetPart sweep ends in). Candidates are priced through
    ``evaluator`` (created here when ``None``) — no full bottom-weight
    pass happens after the evaluator's initialization. On return ``q``
    holds the best assignment ever visited, which is never worse than the
    one it arrived with.
    """
    config = config or AnnealConfig()
    ev = evaluator if evaluator is not None else MakespanEvaluator(q, cluster)
    rng = make_rng(config.seed)

    ids: List[BlockId] = sorted(q.blocks)
    current = ev.makespan()
    best_mu = current
    best: Dict[BlockId, Optional[Processor]] = {
        bid: q.blocks[bid].proc for bid in ids}
    stats = dict(trials=0, accepted=0, improved=0, moves=0, swaps=0)
    initial = current

    if len(ids) < 1 or config.iterations == 0:
        return AnnealStats(initial_makespan=initial, final_makespan=best_mu,
                           restarts=0)

    requirement: Dict[BlockId, float] = {
        bid: cache.peak(q.blocks[bid].tasks) for bid in ids}
    t0 = config.t0 if config.t0 is not None else config.t0_fraction * initial
    deadline = (time.monotonic() + config.time_budget
                if config.time_budget is not None else None)

    restarts_run = 0
    for _ in range(config.restarts):
        if deadline is not None and time.monotonic() >= deadline:
            break
        restarts_run += 1
        # re-heat from the best state found so far
        for bid in ids:
            if q.blocks[bid].proc is not best[bid]:
                q.set_proc(bid, best[bid])
        current = ev.makespan()
        for i in range(config.iterations):
            if deadline is not None and time.monotonic() >= deadline:
                break
            propose_move = rng.random() < config.move_fraction
            if propose_move:
                bid = ids[int(rng.integers(len(ids)))]
                used = q.used_processors()
                idle = [p for p in cluster.by_speed_desc()
                        if p.name not in used
                        and requirement[bid] <= p.memory]
                if not idle:
                    continue
                target = idle[int(rng.integers(len(idle)))]
                old_proc = q.blocks[bid].proc
                q.set_proc(bid, target)
            else:
                if len(ids) < 2:
                    continue
                a = ids[int(rng.integers(len(ids)))]
                b = ids[int(rng.integers(len(ids)))]
                if a == b:
                    continue
                pa, pb = q.blocks[a].proc, q.blocks[b].proc
                if pa is pb:
                    continue
                if requirement[a] > pb.memory or requirement[b] > pa.memory:
                    continue
                q.set_proc(a, pb)
                q.set_proc(b, pa)

            # one delta sync prices the mutated state; on rejection the
            # inverse ops are only logged — they fold into the next
            # trial's sync — so every trial costs a single delta pass
            mu = ev.makespan()
            stats["trials"] += 1
            delta = mu - current
            if delta > 0:
                t = _temperature(config, t0, i)
                if t <= 0 or rng.random() >= math.exp(-delta / t):
                    if propose_move:
                        q.set_proc(bid, old_proc)
                    else:
                        q.set_proc(a, pa)
                        q.set_proc(b, pb)
                    continue
            if propose_move:
                stats["moves"] += 1
            else:
                stats["swaps"] += 1
            stats["accepted"] += 1
            current = mu
            if current < best_mu:
                best_mu = current
                best = {bid: q.blocks[bid].proc for bid in ids}
                stats["improved"] += 1

    # restore the best state ever visited (>= the incoming seed mapping)
    for bid in ids:
        if q.blocks[bid].proc is not best[bid]:
            q.set_proc(bid, best[bid])
    final = ev.makespan()
    return AnnealStats(
        initial_makespan=initial,
        final_makespan=final,
        trials=stats["trials"],
        accepted=stats["accepted"],
        improved=stats["improved"],
        restarts=restarts_run,
        moves_applied=stats["moves"],
        swaps_applied=stats["swaps"],
    )
