"""Step 3 of DagHetPart: merge unassigned blocks into assigned ones
(Algorithms 3-4).

Every quotient vertex left without a processor by Step 2 is merged into an
assigned neighbour — preferably one *off* the critical path, since merging
onto the critical path lengthens it. A merge that closes a cycle of length
2 is repaired by absorbing the third vertex (Fig. 2); longer cycles
disqualify the candidate. The merge chosen is the one minimizing the
estimated makespan among all feasible candidates (memory of the target
processor must hold the merged block).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Optional, Set, Tuple

from repro.core.evaluator import MakespanEvaluator
from repro.core.kernels import get_kernel
from repro.core.makespan import critical_path, makespan
from repro.core.quotient import BlockId, QuotientGraph
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster

Node = Hashable

#: maximum number of times a vertex is re-queued (the paper's counter: at
#: most two re-inserts, ``nu.c <= 1`` checked before incrementing)
MAX_RETRIES = 2


def find_ms_opt_merge(q: QuotientGraph, nu: BlockId, candidates: Set[BlockId],
                      cluster: Cluster, cache: RequirementCache,
                      pool: Optional[List[BlockId]] = None,
                      evaluator: Optional[MakespanEvaluator] = None,
                      ) -> Tuple[float, Optional[BlockId], Optional[BlockId]]:
    """Algorithm 3: best feasible merge of ``nu`` into one of ``candidates``.

    Returns ``(best_makespan, best_partner, optional_third_vertex)``;
    partner is ``None`` when no feasible merge exists. The graph is left
    exactly as it was (every tentative merge is undone). ``pool`` overrides
    the set of partners examined (default: ``nu``'s quotient neighbours,
    as in the paper).
    """
    best_mu = float("inf")
    best_partner: Optional[BlockId] = None
    best_third: Optional[BlockId] = None

    for partner in (pool if pool is not None else q.neighbors(nu)):
        if partner not in candidates or partner == nu:
            continue
        proc = q.blocks[partner].proc
        if proc is None:
            continue

        merged_id, token1 = q.merge(nu, partner)
        token2 = None
        third: Optional[BlockId] = None
        cycle = q.find_cycle()
        if cycle is not None:
            if len(cycle) == 2:
                other = cycle[0] if cycle[0] != merged_id else cycle[1]
                merged2_id, token2 = q.merge(merged_id, other)
                if q.find_cycle() is not None:
                    q.unmerge(token2)
                    q.unmerge(token1)
                    continue
                third = other
                merged_id = merged2_id
            else:
                q.unmerge(token1)
                continue

        requirement = cache.peak(q.blocks[merged_id].tasks)
        if requirement <= proc.memory:
            # estimated makespan with the merged vertex on partner's proc
            q.set_proc(merged_id, proc)
            if evaluator is not None:
                mu = evaluator.makespan()
            else:
                mu = makespan(q, cluster)
            q.set_proc(merged_id, None)
            if mu <= best_mu:
                best_mu = mu
                best_partner = partner
                best_third = third

        if token2 is not None:
            q.unmerge(token2)
        q.unmerge(token1)

    return best_mu, best_partner, best_third


def _execute_merge(q: QuotientGraph, nu: BlockId, partner: BlockId,
                   third: Optional[BlockId]) -> BlockId:
    """Perform the chosen merge (and the optional third-vertex absorption)."""
    proc = q.blocks[partner].proc
    merged_id, _ = q.merge(nu, partner)
    if third is not None:
        merged_id, _ = q.merge(merged_id, third)
    q.set_proc(merged_id, proc)
    return merged_id


def merge_unassigned_to_assigned(q: QuotientGraph, cluster: Cluster,
                                 cache: RequirementCache,
                                 prefer_off_critical_path: bool = True,
                                 evaluator: Optional[MakespanEvaluator] = None) -> bool:
    """Algorithm 4. Returns True iff every vertex ends up assigned.

    Mutates ``q`` in place. Deviation from the paper's pseudocode: instead
    of the per-vertex re-insertion counter (``nu.c``, at most two retries)
    we iterate in *passes* and fail only when a full pass over the
    unassigned vertices makes no progress. The counter exists to prevent
    livelock ("two vertices being constantly reinserted after each other");
    the pass criterion gives the same termination guarantee but lets a
    merge frontier propagate through arbitrarily deep clusters of
    unassigned fragments (Step 2 can produce dozens on memory-tight
    instances, where two retries are provably insufficient).
    """
    unassigned = deque(sorted(q.unassigned_ids()))
    if not unassigned:
        return True

    def _path() -> Set[BlockId]:
        if evaluator is not None:
            return set(evaluator.critical_path())
        return set(critical_path(q, cluster))

    path = _path()
    while unassigned:
        progress = False
        next_round: deque = deque()
        while unassigned:
            nu = unassigned.popleft()
            if nu not in q.blocks:
                progress = True  # absorbed as a third vertex of a merge
                continue

            assigned = q.assigned_ids()
            partner = None
            third = None
            if prefer_off_critical_path:
                _, partner, third = find_ms_opt_merge(
                    q, nu, assigned - path, cluster, cache,
                    evaluator=evaluator)
            if partner is None:
                _, partner, third = find_ms_opt_merge(
                    q, nu, assigned, cluster, cache, evaluator=evaluator)

            if partner is not None:
                _execute_merge(q, nu, partner, third)
                path = _path()
                progress = True
            else:
                q.blocks[nu].retry_count += 1
                next_round.append(nu)
        if next_round and not progress:
            # Last resorts beyond the paper's pseudocode (see DESIGN.md):
            # (1) place the fragment on a free processor that can hold it;
            # (2) merge with a *non-adjacent* assigned block — valid under
            #     all DAGP-PM constraints, it just saves no communication.
            # Without these, memory-tight instances with dense cross edges
            # (e.g. Montage) fail even though valid mappings exist.
            nu = next_round.popleft()
            if _assign_to_free_processor(q, nu, cluster, cache):
                progress = True
            else:
                assigned = q.assigned_ids()
                slack_pool = _by_memory_slack(q, assigned, cache)
                _, partner, third = find_ms_opt_merge(
                    q, nu, assigned, cluster, cache, pool=slack_pool,
                    evaluator=evaluator)
                if partner is None:
                    return False  # no solution could be found
                _execute_merge(q, nu, partner, third)
                path = _path()
                progress = True
        unassigned = deque(x for x in next_round if x in q.blocks)
    return True


#: cap on non-adjacent merge candidates examined per fragment (cost bound)
FALLBACK_POOL_SIZE = 24


def _by_memory_slack(q: QuotientGraph, assigned: Set[BlockId],
                     cache: RequirementCache) -> List[BlockId]:
    """Assigned blocks ordered by free memory on their processor, capped.

    The ranking itself ((slack desc, bid asc), top ``FALLBACK_POOL_SIZE``)
    runs on the active kernel; both kernels return the identical list.
    """
    bids = list(assigned)
    slacks = [q.blocks[bid].proc.memory - cache.peak(q.blocks[bid].tasks)
              for bid in bids]
    return get_kernel().memory_slack_order(bids, slacks, FALLBACK_POOL_SIZE)


def _assign_to_free_processor(q: QuotientGraph, nu: BlockId, cluster: Cluster,
                              cache: RequirementCache) -> bool:
    """Give ``nu`` its own processor if a free one can hold it."""
    used = q.used_processors()
    req = cache.peak(q.blocks[nu].tasks)
    for proc in cluster.by_memory_desc():
        if proc.name in used:
            continue
        if req <= proc.memory:
            q.set_proc(nu, proc)
            return True
        break  # sorted by memory: nothing later fits either
    return False
