"""``cpack``: the greedy critical-path packer (cheap O(n log n) contender).

The ROADMAP's "greedy critical-path packer" leftover: a scheduler that
spends O(n log n) on its packing decisions, as a portfolio member that
gives the expensive heuristics a floor to beat on large instances.

The idea is HEFT's priority order with DagHetPart's validity rules:

1. rank every task by its upward rank (critical-path length to a sink
   under mean speed and default bandwidth) and order tasks by
   decreasing rank, kept topological via heap-Kahn;
2. cut that order into **contiguous** segments — contiguity in a
   topological order guarantees the induced quotient graph is acyclic,
   so the Section 3.3 makespan model applies directly;
3. pack segments onto distinct processors, fastest first (the
   highest-rank segment carries the critical path, so it gets the
   fastest machine), closing a segment when its conservative memory
   footprint would overflow the processor or its work share is met.

Memory feasibility runs on the live-set recurrence: the data resident
after a segment ran is order-independent, and executing the next task on
top of it costs its activation (external inputs + task memory + outputs),
so the packer maintains the *exact* peak of every segment under its own
packing order in O(1) amortized per task. Processor memories are
*reserved* best-fit as segments close — cutting and speed assignment are
separate phases, so a fast machine is never burned on a segment a slow
one could hold — and three packing attempts trade schedule quality for
feasibility (critical-path order, peak-minimizing traversal, peak-min
without load-balancing closes). The packer never needs a repair pass,
and — unlike ``heftlist`` — never emits a mapping that violates the
memory constraint, which is what qualifies it for the portfolio's
default membership. On instances where no contiguous cut of any
traversal fits the cluster (co-scheduling structurally required), it
raises :class:`NoFeasibleMappingError`; the portfolio simply drops the
contender for that instance.

Everything here is kernel-independent plain python: the packer makes
identical decisions under ``REPRO_KERNEL=reference`` and ``array``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional

from repro.core.mapping import BlockAssignment, Mapping
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.utils.errors import NoFeasibleMappingError
from repro.workflow.graph import Workflow

Node = Hashable


def upward_ranks(wf: Workflow, avg_speed: float, beta: float) -> Dict[Node, float]:
    """HEFT upward ranks with mean execution cost and default bandwidth."""
    ranks: Dict[Node, float] = {}
    for u in reversed(wf.topological_order()):
        best_child = 0.0
        for v, c in wf.out_edges(u):
            cand = c / beta + ranks[v]
            if cand > best_child:
                best_child = cand
        ranks[u] = wf.work(u) / avg_speed + best_child
    return ranks


def rank_order(wf: Workflow, ranks: Dict[Node, float]) -> List[Node]:
    """Decreasing-rank list order, kept topological by Kahn with a max-heap.

    With positive work weights HEFT's plain sort by decreasing rank is
    already topological; running it through Kahn makes the order valid for
    zero-work tasks too, with ties broken by insertion order so the
    result is deterministic.
    """
    sequence = {u: i for i, u in enumerate(wf.tasks())}
    indeg = {u: wf.in_degree(u) for u in wf.tasks()}
    heap = [(-ranks[u], sequence[u], u) for u in wf.tasks() if indeg[u] == 0]
    heapq.heapify(heap)
    order: List[Node] = []
    while heap:
        _, _, u = heapq.heappop(heap)
        order.append(u)
        for v in wf.children(u):
            indeg[v] -= 1
            if indeg[v] == 0:
                heapq.heappush(heap, (-ranks[v], sequence[v], v))
    return order


def critical_path_pack(wf: Workflow, cluster: Cluster,
                       cache: Optional[RequirementCache] = None) -> Mapping:
    """Pack the decreasing-rank order onto processors (module docstring).

    Raises :class:`NoFeasibleMappingError` when some task cannot fit any
    remaining processor under the conservative requirement bound.
    """
    if wf.n_tasks == 0:
        return Mapping(wf, cluster, [], algorithm="CPack")

    procs = sorted(cluster.processors, key=lambda p: (-p.speed, p.name))
    avg_speed = sum(p.speed for p in procs) / len(procs)
    beta = cluster.bandwidth_model.default
    req = {u: wf.task_requirement(u) for u in wf.tasks()}

    n_blocks = min(len(procs), wf.n_tasks)
    total_work = wf.total_work()
    target = total_work / n_blocks if total_work > 0 else 0.0
    cache = cache or RequirementCache(wf)

    def _reserve(pool: List[float], peak: float, where: Node) -> None:
        """Best-fit removal from the capacity pool (memory desc)."""
        for i in range(len(pool) - 1, -1, -1):  # smallest adequate memory
            if pool[i] >= peak:
                pool.pop(i)
                return
        raise NoFeasibleMappingError(
            f"cpack: segment ending at task {where!r} (peak {peak:g}) fits "
            f"no remaining processor of {cluster.name!r}",
            unplaced_tasks=wf.n_tasks)

    def _cut(order, share=True):
        """Cut ``order`` into contiguous segments with reserved capacity.

        Only memory capacities matter here: the pool tracks which
        processor memories are still unspoken for (best-fit reservation
        keeps the large ones for the segments that need them); speeds are
        assigned afterwards by :func:`_assign`.

        The running memory estimate is the live-set bound: ``live_end``
        is the exact data resident once every packed task has run
        (outputs to consumers outside the segment), and executing the
        next task ``u`` on top of that costs exactly
        ``live_end + req[u] - (inputs u consumes from inside)``. The
        running maximum of that quantity is therefore the *exact* peak
        of the segment under its own packing order — which tracks the
        true minimum closely on fan-heavy graphs, where the naive
        sum-of-requirements bound grows linearly while the real peak
        stays flat. The :class:`RequirementCache` heuristics search for
        a better order when the packing order's peak overflows
        (geometrically gated, so total compaction work stays linear),
        and each closed segment keeps whichever traversal is tighter.
        """
        pool = sorted((p.memory for p in procs), reverse=True)
        segments: List[List[Node]] = []
        peaks: List[float] = []
        traversals: List[tuple] = []
        # largest single-task requirement in order[i:]: a work-share close
        # must not reserve the last processor able to hold a later task
        suffix_max = [0.0] * (len(order) + 1)
        for i in range(len(order) - 1, -1, -1):
            suffix_max[i] = max(req[order[i]], suffix_max[i + 1])

        def best_order(seg, seg_order, bound):
            """The tighter of the packing order and the cache's traversal."""
            exact = cache.requirement(seg)
            if exact.peak < bound:
                return exact.peak, tuple(exact.order)
            return bound, tuple(seg_order) + tuple(seg[len(seg_order):])

        def close(seg, peak, order_t, where):
            _reserve(pool, peak, where)
            segments.append(seg)
            peaks.append(peak)
            traversals.append(order_t)

        seg: List[Node] = []      # tasks in packing order
        seg_order: List[Node] = []  # prefix realizing `bound` (see compaction)
        in_seg = set()
        live_end = 0.0     # exact: data resident after the whole segment ran
        bound = 0.0        # peak of the segment under seg_order + remainder
        last_compact = 0   # len(seg) at the last cache-assisted collapse
        acc_work = 0.0
        share_blocked = False
        for i, u in enumerate(order):
            internal_in = sum(c for v, c in wf.in_edges(u) if v in in_seg)
            proj = max(bound, live_end + req[u] - internal_in)
            if seg:
                cap = pool[0] if pool else float("-inf")
                if proj > cap and len(seg) >= max(2, 2 * last_compact):
                    # ask the traversal heuristics for a better order of
                    # the segment so far; the live set after the segment
                    # is order-independent, so later growth on top of the
                    # reordered prefix keeps the bound exact
                    exact = cache.requirement(seg)
                    if exact.peak < bound:
                        bound = exact.peak
                        seg_order = list(exact.order)
                    last_compact = len(seg)
                    proj = max(bound, live_end + req[u] - internal_in)
                share_met = (share and not share_blocked
                             and acc_work >= target * (len(segments) + 1)
                             and len(segments) < n_blocks - 1)
                if share_met:
                    # a voluntary close is only safe if the pool minus
                    # this segment's reservation keeps at least two
                    # processors able to hold the largest later task — a
                    # buffer for the forced closes still to come
                    peak, order_t = best_order(seg, seg_order, bound)
                    spare = sorted(pool)
                    for j, m in enumerate(spare):
                        if m >= peak:
                            del spare[j]
                            break
                    else:
                        spare = None
                    if spare is not None and sum(
                            1 for m in spare if m >= suffix_max[i]) >= 2:
                        close(seg, peak, order_t, u)
                        seg, seg_order, in_seg = [], [], set()
                        live_end = bound = 0.0
                        last_compact = 0
                        internal_in, proj = 0.0, req[u]
                    else:
                        share_blocked = True
                elif proj > cap:
                    peak, order_t = best_order(seg, seg_order, bound)
                    close(seg, peak, order_t, u)
                    seg, seg_order, in_seg = [], [], set()
                    live_end = bound = 0.0
                    last_compact = 0
                    share_blocked = False
                    internal_in, proj = 0.0, req[u]
            if not seg and (not pool or req[u] > pool[0]):
                raise NoFeasibleMappingError(
                    f"cpack: task {u!r} (requirement {req[u]:g}) fits no "
                    f"remaining processor of {cluster.name!r}",
                    unplaced_tasks=wf.n_tasks - sum(map(len, segments)))
            seg.append(u)
            in_seg.add(u)
            bound = proj
            live_end += wf.out_cost(u) - internal_in
            acc_work += wf.work(u)
        peak, order_t = best_order(seg, seg_order, bound)
        close(seg, peak, order_t, seg[-1])
        return segments, peaks, traversals

    def _coverable(peaks_desc: List[float], mems: List[float]) -> bool:
        """Greedy threshold matching: can ``mems`` cover these peaks?"""
        remaining = sorted(mems)
        for peak in peaks_desc:
            for i in range(len(remaining)):
                if remaining[i] >= peak:
                    del remaining[i]
                    break
            else:
                return False
        return True

    def _assign(segments, peaks):
        """Fastest processor per segment that keeps the rest coverable.

        Segments arrive in priority order (the highest-rank segment
        carries the critical path), so earlier segments get first pick of
        the fast machines — constrained so the remaining processors can
        still cover the remaining peaks (_cut's reservation guarantees at
        least one such choice exists).
        """
        chosen: List = []
        remaining = list(procs)  # speed desc
        for i, peak in enumerate(peaks):
            tail = sorted(peaks[i + 1:], reverse=True)
            pick = None
            for j, p in enumerate(remaining):
                if p.memory < peak:
                    continue
                if _coverable(tail, [r.memory for k, r in enumerate(remaining)
                                     if k != j]):
                    pick = j
                    break
            if pick is None:  # unreachable after _cut's reservation
                raise NoFeasibleMappingError(
                    f"cpack: no processor assignment covers segment peaks "
                    f"on {cluster.name!r}", unplaced_tasks=wf.n_tasks)
            chosen.append(remaining.pop(pick))
        return chosen

    # Three attempts, each trading more schedule quality for feasibility:
    # 1. the critical-path (decreasing-rank) order with load-balancing
    #    work-share closes — HEFT affinity, best makespans;
    # 2. the peak-minimizing traversal (also topological, so cuts stay
    #    acyclic) — rank order lists fan siblings before their join, so a
    #    segment can never free memory by consuming a sibling's outputs,
    #    fatal on memory-tight fan-heavy graphs; the peak-min traversal
    #    interleaves producers with consumers to keep the live set small;
    # 3. the peak-min traversal with work-share closes disabled — the cut
    #    packs each processor to its memory limit, sacrificing
    #    parallelism; succeeds whenever a contiguous cut of the traversal
    #    fits the cluster at all.
    attempts = (
        lambda: _cut(rank_order(wf, upward_ranks(wf, avg_speed, beta))),
        lambda: _cut(cache.requirement(list(wf.tasks())).order),
        lambda: _cut(cache.requirement(list(wf.tasks())).order, share=False),
    )
    for k, attempt in enumerate(attempts):
        try:
            segments, peaks, traversals = attempt()
            break
        except NoFeasibleMappingError:
            if k == len(attempts) - 1:
                raise
    chosen = _assign(segments, peaks)

    assignments = []
    for tasks, peak, order_t, p in zip(segments, peaks, traversals, chosen):
        assignments.append(BlockAssignment(
            tasks=frozenset(tasks), processor=p,
            requirement=peak, traversal=order_t))
    return Mapping(wf, cluster, assignments, algorithm="CPack")
