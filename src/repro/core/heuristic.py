"""DagHetPart — the four-step heuristic (Section 4.2).

The public scheduling surface lives in :mod:`repro.api` (registry +
request/result envelopes); ``schedule()`` below is the thin back-compat
shim over it, and :func:`dag_het_part_sweep` exposes the winning ``k'``
and per-``k'`` trace the API reports.

Step 1 partitions the workflow into ``k'`` blocks for several values of
``k'`` ("we tentatively partition the DAG into k' blocks, with
1 <= k' <= k, and compute the makespan returned by the heuristic for all
values of k'. The best result is kept."). For each ``k'`` the pipeline is:

    partition -> BiggestAssign (Step 2) -> MergeUnassignedToAssigned
    (Step 3, may fail) -> Swap + idle moves (Step 4) -> makespan.

The full sweep is quadratic-ish in ``k``; :class:`DagHetPartConfig` offers
a ``"doubling"`` strategy ({1, 2, 4, ..., k}) that the experiment harness
uses for large clusters, with the full sweep available via ``"all"``
(see the k'-sweep ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from repro.core.assignment import biggest_assign
from repro.core.evaluator import MakespanEvaluator
from repro.core.mapping import Mapping
from repro.core.makespan import makespan
from repro.core.merging import merge_unassigned_to_assigned
from repro.core.quotient import QuotientGraph
from repro.core.swaps import improve_by_swaps, move_critical_to_idle
from repro.memdag.requirement import RequirementCache
from repro.partition.api import acyclic_partition
from repro.platform.cluster import Cluster
from repro.utils.errors import (
    InvalidPartitionError,
    NoFeasibleMappingError,
    ReproError,
)
from repro.workflow.graph import Workflow

Node = Hashable


@dataclass(frozen=True)
class DagHetPartConfig:
    """Tuning knobs of DagHetPart; defaults follow the paper.

    Attributes
    ----------
    k_prime_strategy:
        ``"all"`` sweeps every ``k'`` in ``1..k`` (the paper's setting),
        ``"doubling"`` sweeps ``{1, 2, 4, ..., k}``; ``"auto"`` (default)
        uses ``"all"`` for ``k <= 12`` and ``"doubling"`` otherwise.
    k_prime_values:
        Explicit ``k'`` values; overrides the strategy when set.
    weight:
        Balancing weight of the partitioner (see
        :func:`repro.partition.api.acyclic_partition`).
    enable_swaps / enable_idle_moves:
        Toggle the two halves of Step 4 (ablation benches).
    use_evaluator:
        Price candidate merges/swaps/moves with the incremental
        :class:`~repro.core.evaluator.MakespanEvaluator` (delta
        evaluation) instead of full bottom-weight passes. Bit-for-bit
        equivalent; off only for the equivalence/ablation benches.
    prefer_off_critical_path:
        Toggle Step 3's merge preference (ablation bench).
    traversal_methods:
        Engines for block memory requirements (ablation bench).
    """

    k_prime_strategy: str = "auto"
    k_prime_values: Optional[Tuple[int, ...]] = None
    weight: str = "requirement"
    eps: float = 0.10
    enable_swaps: bool = True
    enable_idle_moves: bool = True
    use_evaluator: bool = True
    prefer_off_critical_path: bool = True
    traversal_methods: Tuple[str, ...] = ("best_first", "layered", "sp")


def _k_prime_candidates(k: int, config: DagHetPartConfig) -> List[int]:
    if config.k_prime_values is not None:
        values = sorted({kp for kp in config.k_prime_values if 1 <= kp <= k})
        if not values:
            raise ValueError("k_prime_values contains no value in 1..k")
        return values
    strategy = config.k_prime_strategy
    if strategy == "auto":
        strategy = "all" if k <= 12 else "doubling"
    if strategy == "all":
        return list(range(1, k + 1))
    if strategy == "doubling":
        values = []
        kp = 1
        while kp < k:
            values.append(kp)
            kp *= 2
        values.append(k)
        return values
    raise ValueError(f"unknown k' strategy {strategy!r}")


@dataclass(frozen=True)
class SweepPoint:
    """One ``k'`` evaluated during Step 1's sweep.

    ``makespan`` is the pipeline's result for that ``k'`` (``None`` unless
    ``status == "ok"``); ``status`` is ``"ok"``, ``"infeasible"`` (no valid
    assignment / cyclic quotient for this ``k'``) or ``"error"`` (the
    pipeline raised a :class:`ReproError`).
    """

    k_prime: int
    makespan: Optional[float]
    status: str


@dataclass(frozen=True)
class SweepOutcome:
    """Full outcome of a DagHetPart run: the winning ``k'`` and the trace.

    ``k_prime`` is ``None`` only for empty workflows (no sweep runs).
    """

    mapping: Mapping
    k_prime: Optional[int]
    sweep: Tuple[SweepPoint, ...]


def _run_pipeline(wf: Workflow, cluster: Cluster, k_prime: int,
                  config: DagHetPartConfig, cache: RequirementCache,
                  ) -> Optional[Tuple[float, QuotientGraph]]:
    """One full Step-1..4 pipeline for a fixed ``k'``; None if infeasible."""
    partition = acyclic_partition(wf, k_prime, weight=config.weight, eps=config.eps)

    state = biggest_assign(wf, cluster, partition, cache=cache, weight=config.weight)
    blocks = [state.blocks[bid] for bid in state.blocks]
    procs = [state.assigned.get(bid) for bid in state.blocks]
    q = QuotientGraph.from_partition(wf, blocks, procs)

    if not q.is_acyclic():
        # repartitioning inside FitBlock can, in rare fan-in shapes,
        # produce blocks whose quotient is cyclic; such a k' is skipped
        return None

    evaluator = MakespanEvaluator(q, cluster) if config.use_evaluator else None

    ok = merge_unassigned_to_assigned(
        q, cluster, cache, prefer_off_critical_path=config.prefer_off_critical_path,
        evaluator=evaluator)
    if not ok:
        return None

    # every block must actually fit its processor (assigned blocks fit by
    # construction; re-check after merges for safety)
    for blk in q.blocks.values():
        if blk.proc is None or cache.peak(blk.tasks) > blk.proc.memory + 1e-9:
            return None

    if config.enable_swaps:
        improve_by_swaps(q, cluster, cache, evaluator=evaluator)
    if config.enable_idle_moves:
        move_critical_to_idle(q, cluster, cache, evaluator=evaluator)
    if evaluator is not None:
        return evaluator.makespan(), q
    return makespan(q, cluster), q


def dag_het_part_sweep(wf: Workflow, cluster: Cluster,
                       config: Optional[DagHetPartConfig] = None,
                       cache: Optional[RequirementCache] = None) -> SweepOutcome:
    """Run DagHetPart and keep the full ``k'`` sweep trace.

    Returns a :class:`SweepOutcome` with the best mapping, the winning
    ``k'`` and one :class:`SweepPoint` per candidate, so ablation benches
    and the API's result envelopes can report the sweep without re-running.

    Raises :class:`NoFeasibleMappingError` when no ``k'`` admits a valid
    assignment; the exception carries the trace as its ``sweep`` attribute.
    """
    config = config or DagHetPartConfig()
    if wf.n_tasks == 0:
        return SweepOutcome(Mapping(wf, cluster, [], algorithm="DagHetPart"),
                            k_prime=None, sweep=())
    cache = cache or RequirementCache(wf, methods=config.traversal_methods)

    best: Optional[Tuple[float, QuotientGraph]] = None
    best_k_prime: Optional[int] = None
    trace: List[SweepPoint] = []
    for k_prime in _k_prime_candidates(cluster.k, config):
        try:
            result = _run_pipeline(wf, cluster, k_prime, config, cache)
        except (InvalidPartitionError, ReproError):
            trace.append(SweepPoint(k_prime, None, "error"))
            continue
        if result is None:
            trace.append(SweepPoint(k_prime, None, "infeasible"))
            continue
        trace.append(SweepPoint(k_prime, result[0], "ok"))
        if best is None or result[0] < best[0]:
            best = result
            best_k_prime = k_prime

    if best is None:
        exc = NoFeasibleMappingError(
            f"DagHetPart: no feasible mapping of {wf.name!r} "
            f"({wf.n_tasks} tasks) onto {cluster.name!r} ({cluster.k} procs)",
            unplaced_tasks=wf.n_tasks)
        exc.sweep = tuple(trace)
        raise exc

    mapping = Mapping.from_quotient(best[1], cluster, cache, algorithm="DagHetPart")
    return SweepOutcome(mapping, k_prime=best_k_prime, sweep=tuple(trace))


def dag_het_part(wf: Workflow, cluster: Cluster,
                 config: Optional[DagHetPartConfig] = None,
                 cache: Optional[RequirementCache] = None) -> Mapping:
    """Run DagHetPart; returns the best valid Mapping over the ``k'`` sweep.

    Raises :class:`NoFeasibleMappingError` when no ``k'`` admits a valid
    assignment (the platform lacks resources for the workflow). Use
    :func:`dag_het_part_sweep` (or ``repro.api.solve``) when the winning
    ``k'`` / sweep trace is needed as well.
    """
    return dag_het_part_sweep(wf, cluster, config=config, cache=cache).mapping


def schedule(wf: Workflow, cluster: Cluster, algorithm: str = "daghetpart",
             config: Optional[DagHetPartConfig] = None) -> Mapping:
    """Back-compat front-end: run one registered algorithm by name.

    Resolves ``algorithm`` through the :mod:`repro.api` registry (so names
    like ``"DagHetPart"`` / ``"dag-het-mem"`` and any plugin-registered
    algorithm work) and returns the bare :class:`Mapping`. New code should
    prefer ``repro.api.solve``, which also reports runtime, the ``k'``
    sweep, and structured failures.
    """
    from repro.api.registry import get_algorithm

    return get_algorithm(algorithm).scheduler.run(wf, cluster, config).mapping
