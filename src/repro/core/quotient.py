"""The quotient graph ``Gamma = (V, E)`` induced by a partition (Sec. 3.3).

Each quotient vertex is a block of workflow tasks; its weight is the sum of
task works, and the weight of a quotient edge is the sum of all workflow
edge costs between the two blocks. Step 3 of DagHetPart performs many
*tentative* merges, so :meth:`QuotientGraph.merge` returns an undo token
and :meth:`QuotientGraph.unmerge` restores the previous state exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.platform.processor import Processor
from repro.utils.errors import InvalidPartitionError
from repro.workflow.graph import Workflow

Node = Hashable
BlockId = int


@dataclass
class QBlock:
    """One vertex of the quotient graph: a block of tasks and its mapping."""

    tasks: Set[Node]
    work: float
    proc: Optional[Processor] = None
    #: re-insertion counter of Step 3 (the paper's ``nu.c``)
    retry_count: int = 0


class _UndoToken:
    """Everything needed to reverse one merge operation."""

    __slots__ = ("new_id", "old_a", "old_b", "block_a", "block_b",
                 "succ_a", "pred_a", "succ_b", "pred_b")

    def __init__(self, new_id, old_a, old_b, block_a, block_b,
                 succ_a, pred_a, succ_b, pred_b):
        self.new_id = new_id
        self.old_a = old_a
        self.old_b = old_b
        self.block_a = block_a
        self.block_b = block_b
        self.succ_a = succ_a
        self.pred_a = pred_a
        self.succ_b = succ_b
        self.pred_b = pred_b


class QuotientGraph:
    """Mutable quotient DAG with merge/unmerge support.

    Invariants maintained: vertex weights are the sums of member task
    works; edge weights are sums of crossing workflow edge costs;
    ``blocks`` and adjacency always agree. Acyclicity is *checked*, not
    enforced — Step 3 relies on detecting the cycles a merge creates.
    """

    #: op-log capacity; a consumer that falls further behind than this is
    #: told to rebuild from scratch instead (overflow flag)
    OPLOG_CAP = 4096

    def __init__(self, wf: Workflow):
        self.wf = wf
        self.blocks: Dict[BlockId, QBlock] = {}
        self.succ: Dict[BlockId, Dict[BlockId, float]] = {}
        self.pred: Dict[BlockId, Dict[BlockId, float]] = {}
        self._ids = itertools.count()
        self._task_block: Dict[Node, BlockId] = {}
        #: bumped on every structural or mapping mutation (dirty marker
        #: for incremental consumers such as the makespan evaluator)
        self.version = 0
        #: bumped only on *structural* mutations (merge / unmerge /
        #: block additions / edge rebuilds) — processor reassignment
        #: leaves it untouched. Keys the compiled CSR view
        #: (:class:`repro.core.compiled.CompiledQuotient`), which depends
        #: on adjacency and block works but not on the mapping.
        self.structure_version = 0
        #: cache slot owned by :meth:`CompiledQuotient.of`
        self._compiled = None
        #: block ids whose proc changed since the compiled view last
        #: refreshed its speed vector; ``None`` = unknown, rebuild fully.
        #: Owned (consumed and cleared) by the compiled view.
        self._proc_dirty: Optional[Set[BlockId]] = set()
        self._oplog: Optional[List[Tuple]] = None
        self._oplog_overflow = False

    # ------------------------------------------------------------------
    # change tracking (consumed by repro.core.evaluator)
    # ------------------------------------------------------------------
    def enable_oplog(self) -> None:
        """Start recording mutations for one incremental consumer.

        The log is single-consumer: whoever calls :meth:`drain_oplog`
        owns it. Re-enabling clears any pending entries.
        """
        self._oplog = []
        self._oplog_overflow = False

    def drain_oplog(self) -> Tuple[List[Tuple], bool]:
        """Return ``(ops, overflowed)`` since the last drain and clear.

        ``overflowed`` is True when more than :data:`OPLOG_CAP` mutations
        accumulated — the consumer must do a full rebuild in that case.
        """
        if self._oplog is None:
            return [], True
        ops, overflow = self._oplog, self._oplog_overflow
        self._oplog = []
        self._oplog_overflow = False
        return ops, overflow

    #: _proc_dirty collapses to "rebuild fully" beyond this size
    PROC_DIRTY_CAP = 4096

    def _log(self, op: Tuple) -> None:
        self.version += 1
        if op[0] != "proc":  # everything else rewires blocks or adjacency
            self.structure_version += 1
            self._compiled = None
        else:
            dirty = self._proc_dirty
            if dirty is not None:
                bid = op[1]
                if bid is None or len(dirty) >= self.PROC_DIRTY_CAP:
                    self._proc_dirty = None
                else:
                    dirty.add(bid)
        log = self._oplog
        if log is None:
            return
        if len(log) >= self.OPLOG_CAP:
            self._oplog_overflow = True
            log.clear()
            return
        log.append(op)

    def set_proc(self, bid: BlockId, proc: Optional[Processor]) -> None:
        """Assign (or clear) the processor of ``bid``, with change tracking.

        Equivalent to ``q.blocks[bid].proc = proc`` except incremental
        consumers are notified; all core call sites use this method.
        """
        self.blocks[bid].proc = proc
        self._log(("proc", bid))

    def touch(self) -> None:
        """Record an out-of-band mapping change.

        Call this after writing ``blk.proc`` directly instead of through
        :meth:`set_proc` — it bumps the version so incremental consumers
        (the evaluator's caches, the compiled view's speed vectors) know
        to refresh.
        """
        self._log(("proc", None))

    # ------------------------------------------------------------------
    @classmethod
    def from_partition(cls, wf: Workflow, partition: Sequence[Iterable[Node]],
                       procs: Optional[Sequence[Optional[Processor]]] = None) -> "QuotientGraph":
        """Build the quotient of ``wf`` under ``partition``.

        ``procs``, if given, assigns processors positionally to the blocks.
        Raises :class:`InvalidPartitionError` if the partition is not a
        disjoint cover of the task set.
        """
        q = cls(wf)
        seen: Set[Node] = set()
        for i, tasks in enumerate(partition):
            task_set = set(tasks)
            if not task_set:
                raise InvalidPartitionError(f"block {i} is empty")
            if task_set & seen:
                raise InvalidPartitionError(f"block {i} overlaps another block")
            seen |= task_set
            proc = procs[i] if procs is not None else None
            q._add_block(task_set, proc)
        missing = set(wf.tasks()) - seen
        if missing:
            raise InvalidPartitionError(
                f"{len(missing)} task(s) not covered by the partition")
        q._rebuild_edges()
        return q

    def _add_block(self, tasks: Set[Node], proc: Optional[Processor] = None) -> BlockId:
        bid = next(self._ids)
        # sum in a stable order: set iteration follows string hashes,
        # which vary per process, and float addition is order-sensitive
        # in the last bit — block works must be cross-process exact for
        # the simulator's determinism contract
        work = sum(self.wf.work(u) for u in sorted(tasks, key=repr))
        self.blocks[bid] = QBlock(tasks=tasks, work=work, proc=proc)
        self.succ[bid] = {}
        self.pred[bid] = {}
        for u in tasks:
            self._task_block[u] = bid
        self._log(("add", bid))
        return bid

    # ------------------------------------------------------------------
    # incremental growth (the dynamic simulator's warm-start entry points)
    # ------------------------------------------------------------------
    def add_block(self, tasks: Iterable[Node],
                  proc: Optional[Processor] = None) -> BlockId:
        """Add one block *incrementally*, without an edge rebuild.

        The tasks must already exist in the workflow and must not be
        covered by another block. The new vertex starts with no quotient
        edges — connect it with :meth:`add_quotient_edge` (tasks arriving
        as an independent job need none). Incremental consumers see an
        ``("add", bid)`` op and fold the new vertex in without a full
        bottom-weight pass.
        """
        task_set = set(tasks)
        if not task_set:
            raise InvalidPartitionError("cannot add an empty block")
        for u in task_set:
            if u not in self.wf:
                raise InvalidPartitionError(
                    f"task {u!r} is not in the workflow")
            if u in self._task_block:
                raise InvalidPartitionError(
                    f"task {u!r} already belongs to block {self._task_block[u]}")
        return self._add_block(task_set, proc)

    def add_quotient_edge(self, a: BlockId, b: BlockId, cost: float) -> None:
        """Add (or strengthen) the quotient edge ``a -> b`` incrementally.

        Logged as ``("edge", a, b)`` — only the tail's bottom weight (and
        its ancestors') can change, so the evaluator reprices a handful of
        vertices instead of rebuilding. Acyclicity is *checked elsewhere*,
        exactly like :meth:`merge`.
        """
        if a not in self.blocks or b not in self.blocks:
            raise KeyError(f"unknown block in edge {a} -> {b}")
        if a == b:
            raise ValueError("a quotient self-loop is meaningless")
        self.succ[a][b] = self.succ[a].get(b, 0.0) + cost
        self.pred[b][a] = self.pred[b].get(a, 0.0) + cost
        self._log(("edge", a, b))

    def set_work(self, bid: BlockId, work: float) -> None:
        """Replace the work of ``bid`` (runtime-inflation events).

        Logged as ``("work", bid)``; incremental consumers reprice the
        block and its ancestors only. The compiled CSR view refreshes too
        (work is part of its structure snapshot).
        """
        self.blocks[bid].work = float(work)
        self._log(("work", bid))

    def _rebuild_edges(self) -> None:
        self._log(("rebuild",))
        for bid in self.blocks:
            self.succ[bid] = {}
            self.pred[bid] = {}
        for u, v, c in self.wf.edges():
            bu = self._task_block.get(u)
            bv = self._task_block.get(v)
            if bu is None or bv is None or bu == bv:
                continue
            self.succ[bu][bv] = self.succ[bu].get(bv, 0.0) + c
            self.pred[bv][bu] = self.pred[bv].get(bu, 0.0) + c

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.blocks)

    def node_ids(self) -> List[BlockId]:
        return list(self.blocks)

    def parents(self, bid: BlockId) -> List[BlockId]:
        return list(self.pred[bid])

    def children(self, bid: BlockId) -> List[BlockId]:
        return list(self.succ[bid])

    def neighbors(self, bid: BlockId) -> List[BlockId]:
        """Parents followed by children (the merge candidates of Alg. 3)."""
        return list(self.pred[bid]) + list(self.succ[bid])

    def block_of(self, u: Node) -> BlockId:
        return self._task_block[u]

    def assigned_ids(self) -> Set[BlockId]:
        return {bid for bid, blk in self.blocks.items() if blk.proc is not None}

    def unassigned_ids(self) -> Set[BlockId]:
        return {bid for bid, blk in self.blocks.items() if blk.proc is None}

    def used_processors(self) -> Set[str]:
        return {blk.proc.name for blk in self.blocks.values() if blk.proc is not None}

    # ------------------------------------------------------------------
    def merge(self, a: BlockId, b: BlockId) -> Tuple[BlockId, _UndoToken]:
        """Merge blocks ``a`` and ``b`` into a new vertex; returns undo token.

        The merged block inherits no processor (callers decide). Edge
        weights to common neighbours are summed; the internal ``a``/``b``
        edges disappear (their file never crosses processors any more).
        """
        if a == b:
            raise ValueError("cannot merge a block with itself")
        block_a, block_b = self.blocks[a], self.blocks[b]
        token = _UndoToken(
            new_id=-1, old_a=a, old_b=b, block_a=block_a, block_b=block_b,
            succ_a=dict(self.succ[a]), pred_a=dict(self.pred[a]),
            succ_b=dict(self.succ[b]), pred_b=dict(self.pred[b]),
        )

        merged_tasks = block_a.tasks | block_b.tasks
        new_id = next(self._ids)
        token.new_id = new_id
        self.blocks[new_id] = QBlock(tasks=merged_tasks,
                                     work=block_a.work + block_b.work)
        new_succ: Dict[BlockId, float] = {}
        new_pred: Dict[BlockId, float] = {}
        for old in (a, b):
            other = b if old == a else a
            for x, c in self.succ[old].items():
                if x != other:
                    new_succ[x] = new_succ.get(x, 0.0) + c
            for x, c in self.pred[old].items():
                if x != other:
                    new_pred[x] = new_pred.get(x, 0.0) + c

        # detach a and b from their neighbours
        for old in (a, b):
            for x in self.succ[old]:
                if x not in (a, b):
                    del self.pred[x][old]
            for x in self.pred[old]:
                if x not in (a, b):
                    del self.succ[x][old]
            del self.succ[old], self.pred[old], self.blocks[old]

        self.succ[new_id] = new_succ
        self.pred[new_id] = new_pred
        for x, c in new_succ.items():
            self.pred[x][new_id] = c
        for x, c in new_pred.items():
            self.succ[x][new_id] = c
        for u in merged_tasks:
            self._task_block[u] = new_id
        self._log(("merge", new_id, a, b))
        return new_id, token

    def unmerge(self, token: _UndoToken) -> None:
        """Exactly reverse the merge that produced ``token``."""
        new_id = token.new_id
        for x in self.succ[new_id]:
            del self.pred[x][new_id]
        for x in self.pred[new_id]:
            del self.succ[x][new_id]
        del self.succ[new_id], self.pred[new_id], self.blocks[new_id]

        a, b = token.old_a, token.old_b
        self.blocks[a] = token.block_a
        self.blocks[b] = token.block_b
        self.succ[a] = dict(token.succ_a)
        self.pred[a] = dict(token.pred_a)
        self.succ[b] = dict(token.succ_b)
        self.pred[b] = dict(token.pred_b)
        for old, adj, reverse in ((a, self.succ[a], self.pred),
                                  (b, self.succ[b], self.pred)):
            for x, c in adj.items():
                if x not in (a, b):
                    reverse[x][old] = c
        for old, adj, forward in ((a, self.pred[a], self.succ),
                                  (b, self.pred[b], self.succ)):
            for x, c in adj.items():
                if x not in (a, b):
                    forward[x][old] = c
        for u in token.block_a.tasks:
            self._task_block[u] = a
        for u in token.block_b.tasks:
            self._task_block[u] = b
        self._log(("unmerge", new_id, a, b))

    # ------------------------------------------------------------------
    def topological_order(self) -> Optional[List[BlockId]]:
        """Kahn order, or ``None`` if the quotient is cyclic."""
        indeg = {bid: len(self.pred[bid]) for bid in self.blocks}
        ready = [bid for bid in self.blocks if indeg[bid] == 0]
        order: List[BlockId] = []
        head = 0
        while head < len(ready):
            u = ready[head]
            head += 1
            order.append(u)
            for v in self.succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
        if len(order) != len(self.blocks):
            return None
        return order

    def is_acyclic(self) -> bool:
        return self.topological_order() is not None

    def find_cycle(self) -> Optional[List[BlockId]]:
        """Vertices of one directed cycle, or None. Iterative DFS."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {u: WHITE for u in self.blocks}
        parent: Dict[BlockId, Optional[BlockId]] = {}
        for root in self.blocks:
            if color[root] != WHITE:
                continue
            stack = [(root, iter(self.succ[root]))]
            color[root] = GRAY
            parent[root] = None
            while stack:
                u, it = stack[-1]
                advanced = False
                for v in it:
                    if color[v] == WHITE:
                        color[v] = GRAY
                        parent[v] = u
                        stack.append((v, iter(self.succ[v])))
                        advanced = True
                        break
                    if color[v] == GRAY:
                        cycle = [v]
                        x = u
                        while x is not None and x != v:
                            cycle.append(x)
                            x = parent[x]
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[u] = BLACK
                    stack.pop()
        return None

    def partition_blocks(self) -> List[Set[Node]]:
        """The current blocks as task sets (quotient-vertex order)."""
        return [set(blk.tasks) for blk in self.blocks.values()]
