"""Kernel benchmark harness behind ``repro profile`` (see ROADMAP item 3).

Measures the three hot kernels on both implementations — the dict
``reference`` kernel and the vectorized ``array`` kernel — over synthetic
instances large enough for asymptotics to show
(:mod:`repro.generators.synthetic_arrays`), checks the outputs are
bit-for-bit identical while it is at it, and emits a JSON report
(``BENCH_core.json`` at the repo root is the committed baseline).

The report is a *perf trajectory gate*: ``repro profile --check
BENCH_core.json`` recomputes the speedups and fails when a case regresses
below ``tolerance x`` its committed speedup — or, for the gated
headline cases (full bottom-weight passes on the 100k-task fan and wide
shapes), below the absolute :data:`SPEEDUP_FLOOR`. CI runs that check on
every push; machine-to-machine noise cancels because the gate compares
*ratios* measured in the same process, never wall-clock seconds across
machines.

Timings are min-of-``repeats`` wall clock. The array kernel's first
bottom-weight call on a quotient includes the one-off
:class:`~repro.core.compiled.CompiledQuotient` build; taking the minimum
reports the steady state the heuristics actually see (one compile
amortized over a whole merge/swap search), and the compile cost is
reported separately as ``array_first_s``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.quotient import QuotientGraph
from repro.generators.synthetic_arrays import synthetic_compiled
from repro.platform.presets import default_cluster

#: report schema version
PROFILE_VERSION = 1

#: default instance size for the headline cases (the acceptance scale)
DEFAULT_N = 100_000

#: default min-of-k repetitions
DEFAULT_REPEATS = 3

#: absolute speedup floor for gated cases (the PR's acceptance bar)
SPEEDUP_FLOOR = 5.0

#: a case regresses when its speedup drops below baseline * tolerance
DEFAULT_TOLERANCE = 0.5


def _kernels():
    from repro.core.kernels.array import ArrayKernel
    from repro.core.kernels.reference import ReferenceKernel
    return ReferenceKernel(), ArrayKernel(forced=True)


def _time_best(fn: Callable[[], object], repeats: int,
               ) -> Tuple[float, float, object]:
    """(best seconds, first-call seconds, last result) of ``fn``."""
    best = float("inf")
    first = None
    out = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        if first is None:
            first = dt
        if dt < best:
            best = dt
    return best, first, out


def _trivial_quotient(shape: str, n: int, seed: int) -> QuotientGraph:
    """One task per block: the full-pass sweep at workflow granularity."""
    wf = synthetic_compiled(shape, n, seed=seed).to_workflow()
    return QuotientGraph.from_partition(wf, [{u} for u in wf.tasks()])


def _bottom_case(shape: str):
    def build(n: int, seed: int):
        q = _trivial_quotient(shape, n, seed)
        cluster = default_cluster()
        ref, arr = _kernels()
        # the searches mutate the mapping between passes (a swap probe is
        # two set_proc calls, a full pass, two undos) — charge each kernel
        # one move-probe's worth of mapping churn per pass so the array
        # kernel pays its speed-vector maintenance honestly
        bid = min(q.blocks)
        probe = cluster.by_speed_desc()[0]

        def run_ref():
            q.set_proc(bid, probe)
            out = ref.bottom_weights(q, cluster, 1.0)
            q.set_proc(bid, None)
            return out

        def run_arr():
            q.set_proc(bid, probe)
            out = arr.bottom_weights(q, cluster, 1.0)
            q.set_proc(bid, None)
            return out

        return run_ref, run_arr, lambda a, b: a == b
    return build


def _requirements_case(shape: str):
    def build(n: int, seed: int):
        wf = synthetic_compiled(shape, n, seed=seed).to_workflow()
        ref, arr = _kernels()
        return (lambda: ref.task_requirements(wf),
                lambda: arr.task_requirements(wf),
                lambda a, b: a == b)
    return build


def _swap_pairs_case(n_blocks: int):
    def build(n: int, seed: int):
        del n  # sized by n_blocks: the pairing kernel is quadratic
        q = _trivial_quotient("layered", n_blocks, seed)
        procs = default_cluster().processors
        ids = sorted(q.blocks)
        for i, bid in enumerate(ids):
            q.set_proc(bid, procs[i % len(procs)])
        # memory-tight requirements (the Step-4 regime): most pairs are
        # infeasible, so the kernels filter rather than enumerate
        requirement = {bid: 100.0 + float((i * 37) % 101)
                       for i, bid in enumerate(ids)}
        ref, arr = _kernels()
        return (lambda: ref.feasible_swap_pairs(ids, requirement, q.blocks),
                lambda: arr.feasible_swap_pairs(ids, requirement, q.blocks),
                lambda a, b: a == b)
    return build


def _slack_order_case(size: int):
    def build(n: int, seed: int):
        del n
        bids = list(range(size))
        slacks = [float(((i * 73) % 997) - 498) for i in range(size)]
        cap = 24
        ref, arr = _kernels()
        return (lambda: ref.memory_slack_order(bids, slacks, cap),
                lambda: arr.memory_slack_order(bids, slacks, cap),
                lambda a, b: a == b)
    return build


#: case name -> (builder factory, scaled by --n, gated by SPEEDUP_FLOOR)
PROFILE_CASES: Dict[str, Tuple[Callable, bool, bool]] = {
    "bottom_fan": (_bottom_case("fan"), True, True),
    "bottom_wide": (_bottom_case("wide"), True, True),
    "bottom_layered": (_bottom_case("layered"), True, False),
    "requirements_layered": (_requirements_case("layered"), True, False),
    "swap_pairs": (_swap_pairs_case(1500), False, False),
    "slack_order": (_slack_order_case(200_000), False, False),
}


def run_profile(n: int = DEFAULT_N, repeats: int = DEFAULT_REPEATS,
                seed: int = 0, cases: Optional[List[str]] = None,
                progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the kernel benchmark suite and return the report dict."""
    import numpy as np

    selected = list(PROFILE_CASES) if cases is None else list(cases)
    unknown = [c for c in selected if c not in PROFILE_CASES]
    if unknown:
        raise ValueError(
            f"unknown profile case(s) {unknown}; valid: {list(PROFILE_CASES)}")

    report: Dict = {
        "version": PROFILE_VERSION,
        "n": n,
        "repeats": repeats,
        "seed": seed,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cases": {},
    }
    for name in selected:
        build, scaled, gated = PROFILE_CASES[name]
        if progress:
            progress(f"{name}: building instance ...")
        run_ref, run_arr, equal = build(n if scaled else 0, seed)
        ref_s, _, ref_out = _time_best(run_ref, repeats)
        arr_s, arr_first, arr_out = _time_best(run_arr, repeats)
        case = {
            "reference_s": ref_s,
            "array_s": arr_s,
            "array_first_s": arr_first,
            "speedup": ref_s / arr_s if arr_s > 0 else float("inf"),
            "gated": gated,
            "equal": bool(equal(ref_out, arr_out)),
        }
        report["cases"][name] = case
        if progress:
            progress(f"{name}: reference {ref_s:.4f}s  array {arr_s:.4f}s  "
                     f"speedup {case['speedup']:.1f}x  "
                     f"equal={case['equal']}")
    return report


def compare_to_baseline(report: Dict, baseline: Dict,
                        tolerance: float = DEFAULT_TOLERANCE,
                        floor: float = SPEEDUP_FLOOR) -> List[str]:
    """Regressions of ``report`` against ``baseline`` (empty = pass).

    Every baseline case must be present, bit-for-bit equal across
    kernels, and keep ``speedup >= baseline_speedup * tolerance``; gated
    cases must additionally clear the absolute ``floor``.
    """
    problems: List[str] = []
    for name, base in baseline.get("cases", {}).items():
        case = report.get("cases", {}).get(name)
        if case is None:
            problems.append(f"{name}: missing from this run")
            continue
        if not case.get("equal", False):
            problems.append(f"{name}: kernels disagree (bit-for-bit check)")
        need = base["speedup"] * tolerance
        if base.get("gated"):
            need = max(need, floor)
        if case["speedup"] < need:
            problems.append(
                f"{name}: speedup {case['speedup']:.2f}x below required "
                f"{need:.2f}x (baseline {base['speedup']:.2f}x)")
    return problems


def write_report(report: Dict, path: str) -> None:
    """Write a profile *report* to *path* as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    """Load a profile report previously written by :func:`write_report`."""
    with open(path) as fh:
        return json.load(fh)
