"""Makespan computation via bottom weights (Section 3.3, Eqs. (1)-(2)).

The bottom weight of a quotient vertex ``nu`` is

    l_nu = w_nu / s_nu                                  if nu has no children
    l_nu = w_nu / s_nu + max_{nu' in C_nu} (c_{nu,nu'} / beta + l_nu')

where ``s_nu`` is the speed of the assigned processor, or 1 for vertices
not (yet) assigned — yielding the paper's *estimated* makespan during
Step 3. The makespan of the quotient DAG is ``max_nu l_nu``.

Both :func:`bottom_weights` and :func:`critical_path` price quotient
edges through one shared rule (:func:`link_rule`), so the path
reconstruction can never disagree with the weights it follows.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.quotient import BlockId, QuotientGraph
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor

#: instrumentation: number of full bottom-weight passes executed since
#: import (or the last manual reset). The delta evaluator
#: (:mod:`repro.core.evaluator`) avoids these on its hot path; the swap
#: ablation bench asserts the reduction.
FULL_PASSES = 0


def reset_full_pass_counter() -> int:
    """Reset :data:`FULL_PASSES` to 0; returns the previous value."""
    global FULL_PASSES
    previous = FULL_PASSES
    FULL_PASSES = 0
    return previous


def link_rule(cluster: Cluster) -> Callable[[Optional[Processor], Optional[Processor]], float]:
    """The one edge-bandwidth rule shared by weights and path reconstruction.

    With a uniform interconnect the scalar ``beta`` shortcut is used for
    every link; otherwise the per-pair model is queried (links with an
    undecided endpoint fall back to the model's default, the same
    estimation rule the paper applies to unassigned speeds).
    """
    from repro.platform.bandwidth import UniformBandwidth

    if isinstance(cluster.bandwidth_model, UniformBandwidth):
        beta = cluster.bandwidth

        def uniform_link(p: Optional[Processor], q: Optional[Processor]) -> float:
            return beta

        return uniform_link
    return cluster.link_bandwidth


def bottom_weights(q: QuotientGraph, cluster: Cluster,
                   default_speed: float = 1.0) -> Dict[BlockId, float]:
    """Bottom weight of every quotient vertex; raises on a cyclic quotient.

    With a heterogeneous interconnect model, the edge term ``c / beta``
    uses the bandwidth of the link between the two blocks' processors;
    links with an undecided endpoint use the model's default (the same
    estimation rule the paper applies to unassigned speeds).

    This is the kernel seam's main dispatch point: the sweep itself runs
    on the active kernel (:func:`repro.core.kernels.get_kernel` —
    reference dict loops or vectorized CSR arrays, selected via
    ``REPRO_KERNEL``), and both kernels return bit-for-bit identical
    weights.
    """
    global FULL_PASSES
    from repro.core.kernels import get_kernel

    l = get_kernel().bottom_weights(q, cluster, default_speed)
    FULL_PASSES += 1
    return l


def makespan(q: QuotientGraph, cluster: Cluster, default_speed: float = 1.0) -> float:
    """``mu(Gamma) = max_nu l_nu`` (Eq. (2)); 0 for an empty quotient."""
    if not q.blocks:
        return 0.0
    return max(bottom_weights(q, cluster, default_speed).values())


def follow_critical_path(q: QuotientGraph, cluster: Cluster,
                         l: Dict[BlockId, float],
                         start: BlockId) -> List[BlockId]:
    """Walk from ``start`` to a sink, always taking the argmax child.

    At each vertex the child maximizing ``c / beta + l_child`` — the exact
    term of Eq. (1) — is followed directly, so the walk never truncates on
    floating-point noise and always ends at a sink. Deterministic: ties go
    to the first child in adjacency order.
    """
    link_of = link_rule(cluster)
    path = [start]
    current = start
    while q.succ[current]:
        proc = q.blocks[current].proc
        nxt: Optional[BlockId] = None
        best = float("-inf")
        for child, c in q.succ[current].items():
            cand = c / link_of(proc, q.blocks[child].proc) + l[child]
            if cand > best:
                best = cand
                nxt = child
        path.append(nxt)
        current = nxt
    return path


def critical_path(q: QuotientGraph, cluster: Cluster,
                  default_speed: float = 1.0) -> List[BlockId]:
    """The path realizing the makespan, from its start vertex to a sink.

    Starts at the vertex with the maximum bottom weight and repeatedly
    follows the child attaining the max in Eq. (1), using the same edge
    costs :func:`bottom_weights` used. Deterministic: ties go to the first
    child in adjacency order.
    """
    if not q.blocks:
        return []
    l = bottom_weights(q, cluster, default_speed)
    start = max(l, key=lambda bid: (l[bid], -bid))
    return follow_critical_path(q, cluster, l, start)
