"""Makespan computation via bottom weights (Section 3.3, Eqs. (1)-(2)).

The bottom weight of a quotient vertex ``nu`` is

    l_nu = w_nu / s_nu                                  if nu has no children
    l_nu = w_nu / s_nu + max_{nu' in C_nu} (c_{nu,nu'} / beta + l_nu')

where ``s_nu`` is the speed of the assigned processor, or 1 for vertices
not (yet) assigned — yielding the paper's *estimated* makespan during
Step 3. The makespan of the quotient DAG is ``max_nu l_nu``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.quotient import BlockId, QuotientGraph
from repro.platform.cluster import Cluster
from repro.utils.errors import CyclicWorkflowError


def _speed(q: QuotientGraph, bid: BlockId, default_speed: float) -> float:
    blk = q.blocks[bid]
    return blk.proc.speed if blk.proc is not None else default_speed


def bottom_weights(q: QuotientGraph, cluster: Cluster,
                   default_speed: float = 1.0) -> Dict[BlockId, float]:
    """Bottom weight of every quotient vertex; raises on a cyclic quotient.

    With a heterogeneous interconnect model, the edge term ``c / beta``
    uses the bandwidth of the link between the two blocks' processors;
    links with an undecided endpoint use the model's default (the same
    estimation rule the paper applies to unassigned speeds).
    """
    order = q.topological_order()
    if order is None:
        raise CyclicWorkflowError(message="makespan undefined: quotient graph is cyclic")
    from repro.platform.bandwidth import UniformBandwidth

    uniform = isinstance(cluster.bandwidth_model, UniformBandwidth)
    beta = cluster.bandwidth
    l: Dict[BlockId, float] = {}
    for bid in reversed(order):
        blk = q.blocks[bid]
        own = blk.work / _speed(q, bid, default_speed)
        best_child = 0.0
        for child, c in q.succ[bid].items():
            if uniform:
                link = beta
            else:
                link = cluster.link_bandwidth(blk.proc, q.blocks[child].proc)
            cand = c / link + l[child]
            if cand > best_child:
                best_child = cand
        l[bid] = own + best_child
    return l


def makespan(q: QuotientGraph, cluster: Cluster, default_speed: float = 1.0) -> float:
    """``mu(Gamma) = max_nu l_nu`` (Eq. (2)); 0 for an empty quotient."""
    if not q.blocks:
        return 0.0
    return max(bottom_weights(q, cluster, default_speed).values())


def critical_path(q: QuotientGraph, cluster: Cluster,
                  default_speed: float = 1.0) -> List[BlockId]:
    """The path realizing the makespan, from its start vertex to a sink.

    Starts at the vertex with the maximum bottom weight and repeatedly
    follows the child attaining the max in Eq. (1). Deterministic: ties go
    to the first child in adjacency order.
    """
    if not q.blocks:
        return []
    l = bottom_weights(q, cluster, default_speed)
    start = max(l, key=lambda bid: (l[bid], -bid))
    path = [start]
    current = start
    while q.succ[current]:
        own = q.blocks[current].work / _speed(q, current, default_speed)
        target = l[current] - own
        nxt: Optional[BlockId] = None
        for child, c in q.succ[current].items():
            link = cluster.link_bandwidth(q.blocks[current].proc,
                                          q.blocks[child].proc)
            if abs(c / link + l[child] - target) <= 1e-9 * max(1.0, abs(target)):
                nxt = child
                break
        if nxt is None:
            break  # numerical fallback: no child matches exactly
        path.append(nxt)
        current = nxt
    return path
