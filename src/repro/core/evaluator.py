"""Incremental makespan engine for the merge/swap searches.

Steps 3 and 4 of DagHetPart evaluate thousands of *candidate* mutations —
tentative merges, processor reassignments, pairwise swaps — and the seed
implementation paid a full :func:`repro.core.makespan.bottom_weights`
pass (topological sort + weight sweep over the whole quotient) for every
single one. :class:`MakespanEvaluator` replaces that with delta
evaluation built on one observation: the bottom weight of a vertex
depends only on its *descendants*, so any mutation can only change the
weights of the mutated vertices and their ancestors.

Complexity contract
-------------------
Let ``A`` be the mutated vertices plus all their ancestors in the current
quotient. One :meth:`makespan` call after a batch of mutations costs

    O(|A| + edges incident to A)

— closure walk, a local Kahn order restricted to ``A``, and one weight
recomputation per member — instead of ``O(|V| + |E|)`` for the full
pass. The maximum is maintained incrementally; it degrades to one
``O(|V|)`` scan of cached floats only when the previous argmax itself was
touched. Results are bit-for-bit identical to the full recompute: every
vertex weight is produced by the same arithmetic over the same adjacency
iteration order as :func:`repro.core.makespan.bottom_weights`.

Full recomputes run on the active kernel
(:mod:`repro.core.kernels` — the vectorized array sweep when selected),
and the delta syncs then patch the same weight table the kernel
produced; because the kernels are bit-for-bit interchangeable, mixing
kernel-computed full passes with scalar delta updates never introduces a
divergence.

Change tracking
---------------
The evaluator subscribes to the quotient's op log
(:meth:`QuotientGraph.enable_oplog`): ``merge`` / ``unmerge`` /
``set_proc`` — and the incremental growth ops the dynamic simulator
uses for warm-start repair (``add_block`` / ``add_quotient_edge`` /
``set_work``) — record themselves, and the evaluator folds the pending
ops into its caches lazily on the next query. Mutations therefore commit or
roll back for free — undoing a tentative change just appends the inverse
op, and the sync touches the (identical) affected set once. If the log
overflows, or the quotient was rebuilt wholesale, the evaluator falls
back to one full pass (counted in :attr:`full_recomputes`).

The log is single-consumer: create at most one evaluator per
:class:`QuotientGraph` at a time, and route processor changes through
:meth:`QuotientGraph.set_proc` (direct ``blk.proc`` assignment is
invisible to the log; call :meth:`invalidate` if you must do that).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.makespan import bottom_weights, follow_critical_path, link_rule
from repro.core.quotient import BlockId, QuotientGraph
from repro.platform.bandwidth import UniformBandwidth
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.utils.errors import CyclicWorkflowError


class MakespanEvaluator:
    """Cached bottom weights over a quotient with O(ancestors) updates.

    Instrumentation counters (reset manually if needed):

    * ``full_recomputes`` — full bottom-weight passes (init, overflow,
      wholesale rebuilds, explicit invalidation);
    * ``delta_syncs``     — incremental batches folded in;
    * ``vertices_recomputed`` — total vertices re-evaluated by deltas.
    """

    def __init__(self, q: QuotientGraph, cluster: Cluster,
                 default_speed: float = 1.0):
        self.q = q
        self.cluster = cluster
        self.default_speed = default_speed
        self._uniform = isinstance(cluster.bandwidth_model, UniformBandwidth)
        self._link_of = link_rule(cluster)
        self._l: Dict[BlockId, float] = {}
        self._max = 0.0
        self._argmax: Optional[BlockId] = None
        self._version = -1
        self._dirty = True
        self.full_recomputes = 0
        self.delta_syncs = 0
        self.vertices_recomputed = 0
        q.enable_oplog()
        self._rebuild()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """``max_nu l_nu`` of the quotient's current state (Eq. (2))."""
        self._sync()
        return self._max if self._l else 0.0

    def bottom_weights(self) -> Dict[BlockId, float]:
        """A copy of the current per-vertex bottom weights."""
        self._sync()
        return dict(self._l)

    def critical_path(self) -> List[BlockId]:
        """The makespan-realizing path, identical to the module function."""
        self._sync()
        if not self._l:
            return []
        return follow_critical_path(self.q, self.cluster, self._l, self._argmax)

    def invalidate(self) -> None:
        """Force a full recompute on the next query.

        Needed only after mutations the op log cannot see (direct
        ``blk.proc`` assignment, manual adjacency edits). Also bumps the
        quotient version via :meth:`QuotientGraph.touch` so the compiled
        view's mapping caches (speed/bandwidth vectors) refresh too.
        """
        self._dirty = True
        self.q.touch()

    # ------------------------------------------------------------------
    # convenience: tentative / committed single mutations
    # ------------------------------------------------------------------
    def eval_move(self, bid: BlockId, proc: Optional[Processor]) -> float:
        """Makespan with ``bid`` reassigned to ``proc``; graph left unchanged."""
        q = self.q
        old = q.blocks[bid].proc
        q.set_proc(bid, proc)
        try:
            return self.makespan()
        finally:
            q.set_proc(bid, old)

    def eval_swap(self, a: BlockId, b: BlockId) -> float:
        """Makespan with the processors of ``a``/``b`` exchanged; then undone."""
        q = self.q
        pa, pb = q.blocks[a].proc, q.blocks[b].proc
        q.set_proc(a, pb)
        q.set_proc(b, pa)
        try:
            return self.makespan()
        finally:
            q.set_proc(a, pa)
            q.set_proc(b, pb)

    def apply_move(self, bid: BlockId, proc: Optional[Processor]) -> float:
        """Commit a reassignment; returns the new makespan."""
        self.q.set_proc(bid, proc)
        return self.makespan()

    def apply_swap(self, a: BlockId, b: BlockId) -> float:
        """Commit a pairwise swap; returns the new makespan."""
        q = self.q
        pa, pb = q.blocks[a].proc, q.blocks[b].proc
        q.set_proc(a, pb)
        q.set_proc(b, pa)
        return self.makespan()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        self.q.drain_oplog()
        self._l = bottom_weights(self.q, self.cluster, self.default_speed)
        self._rescan_max()
        self._version = self.q.version
        self._dirty = False
        self.full_recomputes += 1

    def _rescan_max(self) -> None:
        l = self._l
        if not l:
            self._max, self._argmax = 0.0, None
            return
        self._argmax = max(l, key=lambda bid: (l[bid], -bid))
        self._max = l[self._argmax]

    def _sync(self) -> None:
        q = self.q
        if not self._dirty and q.version == self._version:
            return
        ops, overflow = q.drain_oplog()
        if self._dirty or overflow:
            self._rebuild()
            return

        mentioned = set()
        for op in ops:
            kind = op[0]
            if kind == "proc" and op[1] is not None:
                mentioned.add(op[1])
            elif kind in ("merge", "unmerge"):
                mentioned.update(op[1:])
            elif kind in ("add", "work"):
                # a new vertex, or one whose work changed: its own weight
                # (and its ancestors') must be recomputed; descendants
                # keep their cached weights
                mentioned.add(op[1])
            elif kind == "edge":
                # a new edge a -> b reprices the tail only — bottom
                # weights depend on descendants, and b's are unchanged
                mentioned.add(op[1])
            else:
                # "rebuild" (structure changed wholesale) or
                # ("proc", None) — touch() after direct blk.proc writes,
                # where the affected set is unknown
                self._rebuild()
                return
        if len(ops) > max(64, 8 * len(q.blocks)):
            # a batch this large can't beat one full pass
            self._rebuild()
            return

        l = self._l
        seeds = set()
        for bid in mentioned:
            if bid in q.blocks:
                seeds.add(bid)
            else:
                l.pop(bid, None)

        # upward closure: only mutated vertices and their ancestors can
        # have changed (bottom weights depend on descendants alone; this
        # also covers the in-edges a reassignment reprices under a
        # heterogeneous interconnect — their tails are direct parents)
        affected = set()
        stack = list(seeds)
        while stack:
            v = stack.pop()
            if v in affected:
                continue
            affected.add(v)
            stack.extend(q.pred[v])

        # children-first order over the affected region (local Kahn)
        indeg: Dict[BlockId, int] = {}
        for v in affected:
            d = 0
            for c in q.succ[v]:
                if c in affected:
                    d += 1
            indeg[v] = d
        ready = [v for v, d in indeg.items() if d == 0]
        link_of = self._link_of
        default_speed = self.default_speed
        blocks, succ, pred = q.blocks, q.succ, q.pred
        head = 0
        while head < len(ready):
            v = ready[head]
            head += 1
            blk = blocks[v]
            own = blk.work / (blk.proc.speed if blk.proc is not None
                              else default_speed)
            best_child = 0.0
            for child, c in succ[v].items():
                cand = c / link_of(blk.proc, blocks[child].proc) + l[child]
                if cand > best_child:
                    best_child = cand
            l[v] = own + best_child
            for p in pred[v]:
                if p in indeg:
                    indeg[p] -= 1
                    if indeg[p] == 0:
                        ready.append(p)
        if len(ready) != len(affected):
            # a cycle runs through the affected region; weights are
            # undefined until the caller unmerges it
            self._dirty = True
            raise CyclicWorkflowError(
                message="makespan undefined: quotient graph is cyclic")

        self.delta_syncs += 1
        self.vertices_recomputed += len(ready)
        argmax = self._argmax
        if argmax is None or argmax not in l or argmax in affected:
            self._rescan_max()
        else:
            best, best_id = self._max, argmax
            for v in affected:
                lv = l[v]
                if lv > best or (lv == best and v < best_id):
                    best, best_id = lv, v
            self._max, self._argmax = best, best_id
        self._version = q.version
