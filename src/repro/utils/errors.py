"""Exception taxonomy for the reproduction library.

Every failure mode the paper describes maps to one of these exceptions so
that callers (and tests) can distinguish "bad input" from "the platform is
too small for this workflow", which the paper treats as a legitimate
outcome ("the user should rather consider using a larger platform").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class IngestError(ReproError):
    """Raised when an external workflow description cannot be imported.

    Carries the offending file and (when known) line so the message points
    at the exact spot — ``traces/bad.dot:17: unparsable statement`` — instead
    of silently producing an empty or half-loaded workflow.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 line: int | None = None):
        self.path = path
        self.line = line
        prefix = ""
        if path is not None:
            prefix = str(path)
            if line is not None:
                prefix += f":{line}"
            prefix += ": "
        elif line is not None:
            prefix = f"line {line}: "
        super().__init__(prefix + message)


class CyclicWorkflowError(ReproError):
    """Raised when an input graph that must be a DAG contains a cycle."""

    def __init__(self, cycle=None, message: str | None = None):
        self.cycle = list(cycle) if cycle is not None else None
        if message is None:
            if self.cycle:
                message = f"graph contains a cycle through {self.cycle[:8]}"
            else:
                message = "graph contains a cycle"
        super().__init__(message)


class InvalidPartitionError(ReproError):
    """Raised when a partitioning function violates a structural invariant.

    Examples: a block index without any task, a task without a block, or a
    partition whose quotient graph is cyclic where acyclicity is required.
    """


class NoFeasibleMappingError(ReproError):
    """Raised when no memory-respecting mapping exists for the given platform.

    Mirrors the paper's failure mode: DagHetMem "may not return any
    solution if there are some remaining tasks but no more processors
    available", and DagHetPart Step 3 "may not be able to find a valid
    assignment". The message records how much work remained unplaced so
    experiment drivers can count scheduling successes (Section 5.2.2).
    """

    def __init__(self, message: str, unplaced_tasks: int = 0):
        super().__init__(message)
        self.unplaced_tasks = unplaced_tasks


class ExecutionTimeoutError(ReproError):
    """Raised (or recorded) when a request exceeds its execution policy's
    per-request ``timeout_s``.

    Unlike the scheduling failures above this is an *execution* outcome,
    not a property of the instance: the same request may succeed on a
    faster machine or with a looser policy. The batch façade records it as
    a structured ``FailureInfo(kind="timeout")`` instead of hanging the
    sweep, and never caches it.
    """

    def __init__(self, message: str, timeout_s: float | None = None):
        super().__init__(message)
        self.timeout_s = timeout_s


class PartitionSplitError(ReproError):
    """Raised when a block cannot be split any further.

    The multilevel partitioner refuses to split a single task, or a block
    whose every bisection would violate acyclicity. Step 2 of DagHetPart
    converts this into an unassigned block (handled in Step 3) rather than
    failing the whole run.
    """
