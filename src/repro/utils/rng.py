"""Deterministic random-number plumbing.

Every stochastic component (generators, partitioner tie-breaking) takes an
explicit ``numpy.random.Generator``. These helpers normalise seeds and derive
independent child streams so that a single experiment seed reproduces the
whole sweep bit-for-bit, regardless of execution order.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from an int seed, generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` so child streams do not overlap even when the
    parent is consumed concurrently.
    """
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def stable_hash(text: str) -> int:
    """Deterministic 63-bit hash of a string (Python's ``hash`` is salted)."""
    h = 1469598103934665603
    for ch in text.encode("utf-8"):
        h ^= ch
        h = (h * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return h
