"""Shared utilities: priority queues, RNG plumbing, errors, timing."""

from repro.utils.errors import (
    ReproError,
    CyclicWorkflowError,
    InvalidPartitionError,
    NoFeasibleMappingError,
    PartitionSplitError,
)
from repro.utils.pqueue import AddressableMaxPQ
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import Stopwatch

__all__ = [
    "ReproError",
    "CyclicWorkflowError",
    "InvalidPartitionError",
    "NoFeasibleMappingError",
    "PartitionSplitError",
    "AddressableMaxPQ",
    "make_rng",
    "spawn_rngs",
    "Stopwatch",
]
