"""Addressable priority queues.

Step 2 of DagHetPart (``BiggestAssign``) maintains a max-priority queue of
blocks keyed by their memory requirement, with re-insertion of sub-blocks
after repartitioning. The standard library ``heapq`` is a min-heap without
decrease-key; this wrapper provides a max-heap with O(log n) updates and
lazy deletion, which is all the algorithms need.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Hashable, Iterable, Iterator, Optional, Tuple


class AddressableMaxPQ:
    """Max-priority queue with update/remove by key.

    Entries are ``(key, priority)``. Ties are broken by insertion order so
    that runs are deterministic regardless of hash seeds.
    """

    _REMOVED = object()

    def __init__(self, items: Optional[Iterable[Tuple[Hashable, float]]] = None):
        self._heap: list = []
        self._entries: dict = {}
        self._counter = itertools.count()
        if items is not None:
            for key, priority in items:
                self.push(key, priority)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __bool__(self) -> bool:
        return bool(self._entries)

    def push(self, key: Hashable, priority: float) -> None:
        """Insert ``key`` or update its priority if already present."""
        if key in self._entries:
            self.remove(key)
        entry = [-float(priority), next(self._counter), key]
        self._entries[key] = entry
        heapq.heappush(self._heap, entry)

    def remove(self, key: Hashable) -> None:
        """Remove ``key``; raises ``KeyError`` if absent."""
        entry = self._entries.pop(key)
        entry[2] = self._REMOVED

    def priority(self, key: Hashable) -> float:
        """Current priority of ``key``."""
        return -self._entries[key][0]

    def peek(self) -> Tuple[Hashable, float]:
        """Return ``(key, priority)`` of the max element without removing it."""
        self._purge()
        if not self._heap:
            raise IndexError("peek from an empty priority queue")
        neg, _, key = self._heap[0]
        return key, -neg

    def extract_max(self) -> Tuple[Hashable, float]:
        """Pop and return the ``(key, priority)`` with the largest priority."""
        self._purge()
        if not self._heap:
            raise IndexError("extract_max from an empty priority queue")
        neg, _, key = heapq.heappop(self._heap)
        del self._entries[key]
        return key, -neg

    def keys(self) -> Iterator[Hashable]:
        return iter(list(self._entries.keys()))

    def _purge(self) -> None:
        while self._heap and self._heap[0][2] is self._REMOVED:
            heapq.heappop(self._heap)
