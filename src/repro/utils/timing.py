"""Wall-clock timing used by the runtime experiments (Figs. 8-9, Table 4)."""

from __future__ import annotations

import time
from typing import Dict, Optional


class Stopwatch:
    """Accumulating stopwatch with named laps.

    The experiment runner wraps each heuristic invocation in a lap so the
    runtime figures can report per-phase times without the algorithms
    knowing about the harness.
    """

    def __init__(self) -> None:
        self._laps: Dict[str, float] = {}
        self._start: Optional[float] = None
        self._current: Optional[str] = None

    def start(self, name: str) -> None:
        if self._current is not None:
            raise RuntimeError(f"lap '{self._current}' is still running")
        self._current = name
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._current is None or self._start is None:
            raise RuntimeError("no lap running")
        elapsed = time.perf_counter() - self._start
        self._laps[self._current] = self._laps.get(self._current, 0.0) + elapsed
        self._current = None
        self._start = None
        return elapsed

    def __enter__(self) -> "Stopwatch":
        if self._current is None:
            self.start("total")
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def lap(self, name: str) -> "_LapContext":
        return _LapContext(self, name)

    @property
    def laps(self) -> Dict[str, float]:
        return dict(self._laps)

    def total(self) -> float:
        return sum(self._laps.values())


class _LapContext:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name

    def __enter__(self) -> Stopwatch:
        self._watch.start(self._name)
        return self._watch

    def __exit__(self, *exc) -> None:
        self._watch.stop()
