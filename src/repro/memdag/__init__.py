"""memDag substrate: peak-memory-minimizing traversals of (blocks of) DAGs.

Re-implementation of the role played by Kayaaslan et al.'s ``memDag``
algorithm [18] in the paper: given a workflow block, produce a topological
traversal whose peak memory consumption is as small as possible, and report
that peak as the block's memory requirement ``r_{V_i}``.

Engine composition (see DESIGN.md, substitutions):

* :mod:`repro.memdag.model` — the exact memory semantics of a traversal
  (internal edges live between producer and consumer, external inputs are
  streamed, external outputs are retained until the block completes);
* :mod:`repro.memdag.segments` — hill-valley profile decomposition and the
  optimal merge of independent segment sequences (Liu-style);
* :mod:`repro.memdag.sp_tree` — recognition + decomposition of two-terminal
  series-parallel DAGs;
* :mod:`repro.memdag.spize` — level-based SP-ization used as a fallback
  traversal for non-SP blocks;
* :mod:`repro.memdag.traversal` — the candidate traversal generators and the
  ``memdag_traversal`` front-end that returns the best of them;
* :mod:`repro.memdag.requirement` — ``r_{V_i}`` for arbitrary blocks of a
  workflow, with caching keyed by the block's task set.
"""

from repro.memdag.model import (
    TraversalState,
    BlockPackingState,
    evaluate_traversal,
    peak_of_traversal,
)
from repro.memdag.segments import (
    Segment,
    profile_of_traversal,
    decompose_profile,
    merge_segment_sequences,
)
from repro.memdag.sp_tree import SPTree, sp_decompose, is_series_parallel
from repro.memdag.spize import layered_traversal
from repro.memdag.traversal import (
    best_first_traversal,
    sp_traversal,
    memdag_traversal,
    brute_force_min_peak,
    TraversalResult,
)
from repro.memdag.requirement import block_requirement, RequirementCache

__all__ = [
    "TraversalState",
    "BlockPackingState",
    "evaluate_traversal",
    "peak_of_traversal",
    "Segment",
    "profile_of_traversal",
    "decompose_profile",
    "merge_segment_sequences",
    "SPTree",
    "sp_decompose",
    "is_series_parallel",
    "layered_traversal",
    "best_first_traversal",
    "sp_traversal",
    "memdag_traversal",
    "brute_force_min_peak",
    "TraversalResult",
    "block_requirement",
    "RequirementCache",
]
