"""Block memory requirement ``r_{V_i}`` with caching.

Step 2 and Step 3 of DagHetPart recompute block requirements constantly —
after every tentative merge and every repartition. Requirements depend only
on the block's task set (given a fixed workflow), so a cache keyed by the
frozen task set removes the dominant cost from the merge search.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable

from repro.memdag.traversal import TraversalResult, memdag_traversal
from repro.workflow.graph import Workflow

Node = Hashable


def block_requirement(wf: Workflow, block: Iterable[Node],
                      methods=("best_first", "layered", "sp")) -> TraversalResult:
    """Memory requirement of a block: best traversal found and its peak.

    For a singleton block the peak is exactly ``r_u``.
    """
    return memdag_traversal(wf, set(block), methods=methods)


class RequirementCache:
    """Memoizes :func:`block_requirement` for a fixed workflow.

    The heuristics thread one instance through all steps; tests can inspect
    ``hits``/``misses`` to assert that the merge search reuses results.
    """

    def __init__(self, wf: Workflow, methods=("best_first", "layered", "sp")):
        self.wf = wf
        self.methods = tuple(methods)
        self._store: Dict[FrozenSet[Node], TraversalResult] = {}
        self.hits = 0
        self.misses = 0

    def requirement(self, block: Iterable[Node]) -> TraversalResult:
        key = frozenset(block)
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = block_requirement(self.wf, key, self.methods)
        self._store[key] = result
        return result

    def peak(self, block: Iterable[Node]) -> float:
        return self.requirement(block).peak

    def __len__(self) -> int:
        return len(self._store)
