"""Memory semantics of executing a block of a workflow on one processor.

The model (DESIGN.md Section 6) generalizes the paper's single-task
requirement ``r_u = sum_in c + sum_out c + m_u`` to multi-task blocks:

* an **internal** edge ``(u, v)`` (both endpoints inside the block) occupies
  ``c_{u,v}`` bytes from the completion of ``u`` to the completion of ``v``;
* an **external input** ``(x, u)`` (``x`` outside the block) occupies
  ``c_{x,u}`` only while ``u`` executes;
* an **external output** ``(u, y)`` (``y`` outside) occupies ``c_{u,y}``
  from the completion of ``u`` until the whole block finishes;
* while ``u`` executes, its own ``m_u`` plus all its output files are
  resident (outputs are being written).

For a traversal ``sigma`` the peak is ``max_t [ live_before(t) +
ext_in(sigma_t) + m_{sigma_t} + out(sigma_t) ]``; a singleton block
reduces to ``r_u`` exactly.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set

from repro.workflow.graph import Workflow

Node = Hashable


class TraversalState:
    """Incremental evaluation of a traversal of one block.

    ``execute(u)`` returns the memory usage *during* u's execution and
    updates the resident-set size. The caller is responsible for feeding
    tasks in an order that is topological w.r.t. the block-internal edges
    (checked in debug mode via :meth:`ready`).
    """

    __slots__ = ("wf", "block", "live", "peak", "executed", "_pending_preds")

    def __init__(self, wf: Workflow, block: Optional[Set[Node]] = None):
        self.wf = wf
        self.block: Set[Node] = set(block) if block is not None else set(wf.tasks())
        self.live = 0.0
        self.peak = 0.0
        self.executed: Set[Node] = set()
        # number of not-yet-executed block-internal predecessors per task
        self._pending_preds: Dict[Node, int] = {
            u: sum(1 for p in wf.parents(u) if p in self.block) for u in self.block
        }

    def ready(self, u: Node) -> bool:
        """True when all block-internal parents of ``u`` have executed."""
        return self._pending_preds[u] == 0 and u not in self.executed

    def usage_if_executed(self, u: Node) -> float:
        """Memory usage during ``u``'s execution if it ran right now."""
        return self.live + self._ext_in(u) + self.wf.memory(u) + self.wf.out_cost(u)

    def delta_if_executed(self, u: Node) -> float:
        """Change of resident-set size after ``u`` completes (out - freed in)."""
        freed = sum(c for p, c in self.wf.in_edges(u) if p in self.block)
        return self.wf.out_cost(u) - freed

    def execute(self, u: Node) -> float:
        """Run ``u``; returns usage during execution, updates live/peak."""
        if u not in self.block:
            raise KeyError(f"task {u!r} is not in the block")
        if not self.ready(u):
            raise ValueError(f"task {u!r} executed before its in-block parents")
        usage = self.usage_if_executed(u)
        self.live += self.delta_if_executed(u)
        self.peak = max(self.peak, usage)
        self.executed.add(u)
        for v in self.wf.children(u):
            if v in self.block:
                self._pending_preds[v] -= 1
        return usage

    def ready_tasks(self) -> List[Node]:
        """All currently executable tasks (deterministic order)."""
        return [u for u in self.block if u not in self.executed and self._pending_preds[u] == 0]

    def complete(self) -> bool:
        return len(self.executed) == len(self.block)

    def _ext_in(self, u: Node) -> float:
        return sum(c for p, c in self.wf.in_edges(u) if p not in self.block)


def evaluate_traversal(wf: Workflow, order: Sequence[Node],
                       block: Optional[Set[Node]] = None) -> List[float]:
    """Per-step memory usage of ``order``; raises if the order is invalid."""
    block_set = set(block) if block is not None else set(wf.tasks())
    if set(order) != block_set:
        raise ValueError("traversal must cover the block exactly once")
    state = TraversalState(wf, block_set)
    return [state.execute(u) for u in order]


def peak_of_traversal(wf: Workflow, order: Sequence[Node],
                      block: Optional[Set[Node]] = None) -> float:
    """Peak memory of a traversal (max of :func:`evaluate_traversal`)."""
    usages = evaluate_traversal(wf, order, block)
    return max(usages) if usages else 0.0


class BlockPackingState:
    """Streaming packer used by the DagHetMem baseline (Section 4.1).

    Walks a fixed global traversal and grows the current block task by
    task, maintaining the block's running peak under the semantics above.
    Edges whose producer lives in an *earlier, already-closed* block are
    external inputs of the current block; edges to not-yet-traversed tasks
    are conservatively retained until the block closes (they are either
    internal-until-consumed or external-output-until-close — both resident).
    """

    def __init__(self, wf: Workflow, capacity: float):
        self.wf = wf
        self.capacity = float(capacity)
        self.live = 0.0
        self.peak = 0.0
        self.tasks: Set[Node] = set()
        self._closed: Set[Node] = set()  # tasks of earlier blocks

    def usage_if_added(self, u: Node) -> float:
        ext_in = sum(c for p, c in self.wf.in_edges(u) if p in self._closed)
        return self.live + ext_in + self.wf.memory(u) + self.wf.out_cost(u)

    def fits(self, u: Node) -> bool:
        return self.usage_if_added(u) <= self.capacity

    def add(self, u: Node) -> float:
        """Append ``u`` to the current block; returns usage during execution."""
        usage = self.usage_if_added(u)
        freed = sum(c for p, c in self.wf.in_edges(u) if p in self.tasks)
        self.live += self.wf.out_cost(u) - freed
        self.peak = max(self.peak, usage)
        self.tasks.add(u)
        return usage

    def close_block(self, capacity: float) -> Set[Node]:
        """Finish the current block and start a new empty one."""
        finished = self.tasks
        self._closed |= finished
        self.tasks = set()
        self.live = 0.0
        self.peak = 0.0
        self.capacity = float(capacity)
        return finished
