"""Hill-valley profile decomposition and optimal merging of segment sequences.

A key observation makes memory profiles compositional: under the block
semantics (:mod:`repro.memdag.model`) each task ``u`` has *static*
quantities

* ``a(u)   = ext_in(u) + m_u + out(u)`` — its memory *activation* (the rise
  while it executes), and
* ``delta(u) = out(u) - in_block(u)`` — the net change of the resident set
  after it completes,

independent of when it runs. Any traversal's usage at step ``i`` is
``L_{i-1} + a(sigma_i)`` with ``L_i = L_{i-1} + delta(sigma_i)``. Peak
minimization over interleavings of independent branches therefore reduces
to the classical problem of merging sequences of (hill, valley) segments —
the same abstraction Liu used for tree pebbling and Kayaaslan et al. [18]
use for series-parallel composition.

The merge implemented here is the standard two-class rule:

* segments with ``v <= 0`` (net releasers) are scheduled first, in
  increasing order of hill ``h``;
* segments with ``v > 0`` (net producers) follow, in decreasing ``h - v``.

Within one sequence the order is fixed, so sequences are first *normalized*
(adjacent segments whose keys are out of order are fused into one atomic
segment with ``h = max(h1, v1 + h2)``, ``v = v1 + v2``), after which keys
are monotone and a greedy k-way head merge realizes the rule exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple

Node = Hashable

_EPS = 1e-12


@dataclass(frozen=True)
class Segment:
    """An atomic run of tasks with hill ``h`` and valley ``v``.

    ``h`` is the maximum usage within the run relative to the resident-set
    size at the run's start; ``v`` is the net change of the resident set
    over the run. Always ``h >= v`` and ``h >= 0`` for non-empty runs.
    """

    tasks: Tuple[Node, ...]
    h: float
    v: float

    def key(self) -> Tuple[int, float]:
        """Sort key of the two-class merge rule (lower runs earlier)."""
        if self.v <= _EPS:
            return (0, self.h)
        return (1, -(self.h - self.v))

    def fuse(self, other: "Segment") -> "Segment":
        """Concatenate ``self`` directly followed by ``other``."""
        return Segment(
            tasks=self.tasks + other.tasks,
            h=max(self.h, self.v + other.h),
            v=self.v + other.v,
        )


def profile_of_traversal(order: Sequence[Node], a, delta) -> Tuple[List[float], List[float]]:
    """Relative (tops, residuals) of a traversal given static ``a``/``delta`` maps.

    ``a`` and ``delta`` are callables or dicts mapping task -> float.
    """
    geta = a.__getitem__ if isinstance(a, dict) else a
    getd = delta.__getitem__ if isinstance(delta, dict) else delta
    tops: List[float] = []
    residuals: List[float] = []
    live = 0.0
    for u in order:
        tops.append(live + geta(u))
        live += getd(u)
        residuals.append(live)
    return tops, residuals


def decompose_profile(order: Sequence[Node], a, delta) -> List[Segment]:
    """Cut a traversal at successive residual minima into hill-valley segments.

    Each produced segment except possibly the last ends at a strictly new
    minimum of the residual curve; the tail beyond the global minimum forms
    one final segment with non-negative valley.
    """
    tops, residuals = profile_of_traversal(order, a, delta)
    segments: List[Segment] = []
    seg_start = 0
    base = 0.0  # residual at the start of the current segment
    running_min = 0.0  # global minimum of residuals seen so far
    for i in range(len(order)):
        if residuals[i] < running_min - _EPS:
            running_min = residuals[i]
            h = max(tops[seg_start:i + 1]) - base
            v = residuals[i] - base
            segments.append(Segment(tuple(order[seg_start:i + 1]), h, v))
            seg_start = i + 1
            base = residuals[i]
    if seg_start < len(order):
        h = max(tops[seg_start:]) - base
        v = residuals[-1] - base
        segments.append(Segment(tuple(order[seg_start:]), h, v))
    return segments


def normalize_segments(segments: List[Segment]) -> List[Segment]:
    """Fuse adjacent segments until merge keys are non-decreasing.

    The greedy k-way merge is only optimal when each sequence presents its
    segments in key order; fusing an out-of-order pair into one atomic
    segment preserves the sequence's internal order while restoring
    monotonicity (stack-based, O(n) amortized).
    """
    stack: List[Segment] = []
    for seg in segments:
        stack.append(seg)
        while len(stack) >= 2 and stack[-1].key() < stack[-2].key():
            right = stack.pop()
            left = stack.pop()
            stack.append(left.fuse(right))
    return stack


def merge_segment_sequences(sequences: List[List[Segment]]) -> Tuple[List[Node], float]:
    """Interleave independent segment sequences minimizing the joint peak.

    Returns the merged task order and its peak (relative to a zero start).
    Sequences are normalized first; then heads are consumed greedily in key
    order, which realizes the two-class rule subject to sequence order.
    """
    import heapq

    normalized = [normalize_segments(list(seq)) for seq in sequences if seq]
    heap: List[Tuple[Tuple[int, float], int, int]] = []
    for si, seq in enumerate(normalized):
        if seq:
            heapq.heappush(heap, (seq[0].key(), si, 0))

    order: List[Node] = []
    live = 0.0
    peak = 0.0
    while heap:
        _, si, idx = heapq.heappop(heap)
        seg = normalized[si][idx]
        order.extend(seg.tasks)
        peak = max(peak, live + seg.h)
        live += seg.v
        if idx + 1 < len(normalized[si]):
            heapq.heappush(heap, (normalized[si][idx + 1].key(), si, idx + 1))
    return order, peak


def peak_of_segments(segments: Sequence[Segment]) -> float:
    """Peak of executing ``segments`` in the given order from a zero start."""
    live = 0.0
    peak = 0.0
    for seg in segments:
        peak = max(peak, live + seg.h)
        live += seg.v
    return peak
