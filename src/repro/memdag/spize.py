"""Level-based SP-ization: a layered traversal for non-SP blocks.

Kayaaslan et al. [18] transform a general DAG into a series-parallel one
before optimizing the traversal; any SP-ization adds synchronization, so the
resulting peak is an upper bound realized by an actual topological order of
the *original* graph. The cheapest useful SP-ization is the layered one:
the block becomes a series of levels, each level a parallel composition of
its tasks. The corresponding traversal executes level by level; within a
level (tasks are mutually independent) the hill-valley merge orders the
tasks optimally.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.memdag.segments import Segment, merge_segment_sequences
from repro.workflow.graph import Workflow

Node = Hashable


def layered_traversal(wf: Workflow, block: Optional[Set[Node]] = None) -> List[Node]:
    """Level-by-level traversal; within each level, optimal independent merge.

    Levels are longest-path depths inside the block. Tasks of a level are
    pairwise independent, so each is a one-segment sequence and the
    hill-valley merge rule gives the best intra-level order.
    """
    block_set = set(block) if block is not None else set(wf.tasks())

    # longest-path level restricted to block-internal edges
    levels: Dict[Node, int] = {}
    indeg = {u: sum(1 for p in wf.parents(u) if p in block_set) for u in block_set}
    ready = [u for u in block_set if indeg[u] == 0]
    head = 0
    while head < len(ready):
        u = ready[head]
        head += 1
        lvl = 0
        for p in wf.parents(u):
            if p in block_set:
                lvl = max(lvl, levels[p] + 1)
        levels[u] = lvl
        for v in wf.children(u):
            if v in block_set:
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
    if len(levels) != len(block_set):
        raise ValueError("block graph contains a cycle")

    by_level: Dict[int, List[Node]] = {}
    for u, lvl in levels.items():
        by_level.setdefault(lvl, []).append(u)

    order: List[Node] = []
    for lvl in sorted(by_level):
        tasks = by_level[lvl]
        sequences = []
        for u in tasks:
            a = (sum(c for p, c in wf.in_edges(u) if p not in block_set)
                 + wf.memory(u) + wf.out_cost(u))
            freed = sum(c for p, c in wf.in_edges(u) if p in block_set)
            delta = wf.out_cost(u) - freed
            sequences.append([Segment((u,), a, delta)])
        merged, _ = merge_segment_sequences(sequences)
        order.extend(merged)
    return order
