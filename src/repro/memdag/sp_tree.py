"""Recognition and decomposition of two-terminal series-parallel DAGs.

A DAG with a single source ``s`` and single sink ``t`` is two-terminal
series-parallel (TTSP) iff it can be reduced to the single edge ``(s, t)``
by repeatedly applying

* **series reduction** — replace a vertex ``w`` with in-degree 1 and
  out-degree 1 by fusing its two incident edges, and
* **parallel reduction** — fuse two parallel edges between the same pair.

(Valdes, Tarjan, Lawler 1982.) The reductions are recorded to build an
SP-tree whose leaves are original edges; the traversal optimizer walks this
tree, concatenating series children and optimally interleaving parallel
children (:mod:`repro.memdag.traversal`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

Node = Hashable


@dataclass
class SPTree:
    """A node of the series-parallel decomposition tree.

    ``kind`` is ``"leaf"``, ``"series"`` or ``"parallel"``. For a series
    node, ``via`` lists the junction vertices between consecutive children
    (``len(via) == len(children) - 1``); these vertices were removed by
    series reductions and must execute between the corresponding children.
    ``source``/``sink`` are the terminals of the sub-DAG this node spans.
    """

    kind: str
    source: Node
    sink: Node
    children: List["SPTree"] = field(default_factory=list)
    via: List[Node] = field(default_factory=list)

    def internal_vertices(self) -> List[Node]:
        """All vertices strictly between source and sink, in some valid order."""
        if self.kind == "leaf":
            return []
        out: List[Node] = []
        if self.kind == "series":
            for i, child in enumerate(self.children):
                out.extend(child.internal_vertices())
                if i < len(self.via):
                    out.append(self.via[i])
            return out
        for child in self.children:
            out.extend(child.internal_vertices())
        return out


def _series_node(left: SPTree, mid: Node, right: SPTree) -> SPTree:
    """Compose ``left -> mid -> right``, flattening nested series nodes."""
    children: List[SPTree] = []
    via: List[Node] = []
    if left.kind == "series":
        children.extend(left.children)
        via.extend(left.via)
    else:
        children.append(left)
    via.append(mid)
    if right.kind == "series":
        children.extend(right.children)
        via.extend(right.via)
    else:
        children.append(right)
    return SPTree("series", left.source, right.sink, children, via)


def _parallel_node(a: SPTree, b: SPTree) -> SPTree:
    """Compose two parallel branches, flattening nested parallel nodes."""
    children: List[SPTree] = []
    for part in (a, b):
        if part.kind == "parallel":
            children.extend(part.children)
        else:
            children.append(part)
    return SPTree("parallel", a.source, a.sink, children)


def sp_decompose(edges: List[Tuple[Node, Node]], source: Node, sink: Node) -> Optional[SPTree]:
    """Decompose the two-terminal DAG given by ``edges`` into an SP-tree.

    Returns ``None`` if the DAG is not TTSP. Runs in O(E log E); each
    reduction removes an edge and candidates are tracked incrementally.
    """
    if not edges:
        return None
    edge_ids = itertools.count()
    trees: Dict[int, SPTree] = {}
    # adjacency: for each vertex, dict of incident edge-id -> (other endpoint, is_out)
    out_adj: Dict[Node, Set[int]] = {}
    in_adj: Dict[Node, Set[int]] = {}
    endpoints: Dict[int, Tuple[Node, Node]] = {}
    # pair index for parallel detection: (u, v) -> set of edge ids
    pairs: Dict[Tuple[Node, Node], Set[int]] = {}

    def add_edge(u: Node, v: Node, tree: SPTree) -> int:
        eid = next(edge_ids)
        trees[eid] = tree
        endpoints[eid] = (u, v)
        out_adj.setdefault(u, set()).add(eid)
        in_adj.setdefault(v, set()).add(eid)
        out_adj.setdefault(v, set())
        in_adj.setdefault(u, set())
        pairs.setdefault((u, v), set()).add(eid)
        return eid

    def remove_edge(eid: int) -> None:
        u, v = endpoints.pop(eid)
        out_adj[u].discard(eid)
        in_adj[v].discard(eid)
        pairs[(u, v)].discard(eid)
        del trees[eid]

    for u, v in edges:
        if u == v:
            return None
        add_edge(u, v, SPTree("leaf", u, v))

    # worklists
    series_candidates = [w for w in out_adj if w not in (source, sink)
                         and len(in_adj[w]) == 1 and len(out_adj[w]) == 1]
    parallel_candidates = [pair for pair, ids in pairs.items() if len(ids) >= 2]

    while True:
        progressed = False

        while parallel_candidates:
            pair = parallel_candidates.pop()
            ids = pairs.get(pair, set())
            while len(ids) >= 2:
                it = iter(sorted(ids))
                e1, e2 = next(it), next(it)
                t = _parallel_node(trees[e1], trees[e2])
                remove_edge(e1)
                remove_edge(e2)
                add_edge(pair[0], pair[1], t)
                progressed = True
                ids = pairs.get(pair, set())
            # endpoints of the merged edge may have become series-reducible
            for w in pair:
                if w not in (source, sink) and len(in_adj[w]) == 1 and len(out_adj[w]) == 1:
                    series_candidates.append(w)

        while series_candidates:
            w = series_candidates.pop()
            if w in (source, sink) or w not in in_adj:
                continue
            if len(in_adj[w]) != 1 or len(out_adj[w]) != 1:
                continue
            (e_in,) = in_adj[w]
            (e_out,) = out_adj[w]
            if e_in == e_out:
                return None
            u = endpoints[e_in][0]
            x = endpoints[e_out][1]
            if u == x and u in (source, sink) and len(pairs.get((u, x), ())) == 0:
                # series reduction would create a self-loop at a terminal
                return None
            t = _series_node(trees[e_in], w, trees[e_out])
            remove_edge(e_in)
            remove_edge(e_out)
            del in_adj[w], out_adj[w]
            if u == x:
                return None  # self-loop: not a DAG shape we accept
            add_edge(u, x, t)
            progressed = True
            if len(pairs[(u, x)]) >= 2:
                parallel_candidates.append((u, x))
            for y in (u, x):
                if y not in (source, sink) and len(in_adj[y]) == 1 and len(out_adj[y]) == 1:
                    series_candidates.append(y)

        if not progressed:
            break

    remaining = list(trees.items())
    if len(remaining) == 1:
        eid, tree = remaining[0]
        if endpoints[eid] == (source, sink):
            return tree
    return None


def is_series_parallel(edges: List[Tuple[Node, Node]], source: Node, sink: Node) -> bool:
    """Whether the two-terminal DAG is series-parallel."""
    return sp_decompose(edges, source, sink) is not None
