"""Traversal generators and the ``memdag_traversal`` front-end.

Three candidate engines, cheapest first:

* :func:`best_first_traversal` — greedy topological order with static
  priorities (memory releasers before producers, smaller activations
  first); works on any DAG, O((n + e) log n).
* :func:`repro.memdag.spize.layered_traversal` — level-synchronized order
  with optimal intra-level interleaving.
* :func:`sp_traversal` — exact series-parallel engine: SP-tree
  decomposition with hill-valley merging of parallel branches; only
  applicable when the (source/sink augmented) block is TTSP.

:func:`memdag_traversal` evaluates the applicable candidates under the real
semantics and returns the best — the returned peak is therefore always the
peak of a *valid* traversal, never an unachievable estimate.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.memdag.model import peak_of_traversal
from repro.memdag.segments import Segment, decompose_profile, merge_segment_sequences
from repro.memdag.sp_tree import SPTree, sp_decompose
from repro.memdag.spize import layered_traversal
from repro.workflow.graph import Workflow

Node = Hashable

#: blocks larger than this skip the SP engine (decomposition cost dominates)
SP_SIZE_LIMIT = 20_000

#: blocks up to this size may use the exact branch-and-bound engine
EXACT_SIZE_LIMIT = 12


@dataclass(frozen=True)
class TraversalResult:
    """A valid traversal of a block and its peak memory."""

    order: Tuple[Node, ...]
    peak: float
    method: str


def _statics(wf: Workflow, block: Set[Node]) -> Tuple[Dict[Node, float], Dict[Node, float]]:
    """Per-task activation ``a(u)`` and net change ``delta(u)`` (see segments.py)."""
    a: Dict[Node, float] = {}
    delta: Dict[Node, float] = {}
    for u in block:
        ext_in = 0.0
        freed = 0.0
        for p, c in wf.in_edges(u):
            if p in block:
                freed += c
            else:
                ext_in += c
        out = wf.out_cost(u)
        a[u] = ext_in + wf.memory(u) + out
        delta[u] = out - freed
    return a, delta


def best_first_traversal(wf: Workflow, block: Optional[Set[Node]] = None) -> List[Node]:
    """Greedy min-peak topological order.

    Among ready tasks, prefer (1) net memory releasers (``delta <= 0``),
    (2) smaller activation ``a(u)``, (3) smaller ``delta``; ties broken by
    insertion order for determinism. Priorities are static, so a single
    heap suffices.
    """
    block_set = set(block) if block is not None else set(wf.tasks())
    a, delta = _statics(wf, block_set)
    seq = {u: i for i, u in enumerate(wf.tasks()) if u in block_set}

    def prio(u: Node) -> Tuple[int, float, float, int]:
        d = delta[u]
        return (0 if d <= 0 else 1, a[u], d, seq[u])

    pending = {u: sum(1 for p in wf.parents(u) if p in block_set) for u in block_set}
    heap = [prio(u) + (u,) for u in block_set if pending[u] == 0]
    heapq.heapify(heap)
    order: List[Node] = []
    while heap:
        *_, u = heapq.heappop(heap)
        order.append(u)
        for v in wf.children(u):
            if v in block_set:
                pending[v] -= 1
                if pending[v] == 0:
                    heapq.heappush(heap, prio(v) + (v,))
    if len(order) != len(block_set):
        raise ValueError("block graph contains a cycle")
    return order


def _sp_order(tree: SPTree, a: Dict[Node, float], delta: Dict[Node, float]) -> List[Node]:
    """Recursive traversal of an SP-tree's internal vertices."""
    if tree.kind == "leaf":
        return []
    if tree.kind == "series":
        order: List[Node] = []
        for i, child in enumerate(tree.children):
            order.extend(_sp_order(child, a, delta))
            if i < len(tree.via):
                order.append(tree.via[i])
        return order
    # parallel: branches share only the terminals -> independent sequences
    sequences: List[List[Segment]] = []
    for child in tree.children:
        child_order = _sp_order(child, a, delta)
        if child_order:
            sequences.append(decompose_profile(child_order, a, delta))
    merged, _ = merge_segment_sequences(sequences)
    return merged


_VIRTUAL = itertools.count()


def sp_traversal(wf: Workflow, block: Optional[Set[Node]] = None) -> Optional[List[Node]]:
    """Series-parallel traversal, or ``None`` when the block is not TTSP.

    Multi-source/multi-sink blocks are augmented with a virtual source and
    sink (zero memory effect) before decomposition; the virtual terminals
    are stripped from the returned order.
    """
    block_set = set(block) if block is not None else set(wf.tasks())
    if not block_set:
        return []
    if len(block_set) == 1:
        return list(block_set)

    edges: List[Tuple[Node, Node]] = [
        (u, v) for u in block_set for v in wf.children(u) if v in block_set
    ]
    sources = [u for u in block_set
               if not any(p in block_set for p in wf.parents(u))]
    sinks = [u for u in block_set
             if not any(c in block_set for c in wf.children(u))]
    if not sources or not sinks:
        return None

    tag = next(_VIRTUAL)
    vsrc: Node = ("__sp_source__", tag)
    vsink: Node = ("__sp_sink__", tag)
    edges.extend((vsrc, s) for s in sources)
    edges.extend((t, vsink) for t in sinks)

    tree = sp_decompose(edges, vsrc, vsink)
    if tree is None:
        return None

    a, delta = _statics(wf, block_set)
    a[vsrc] = a[vsink] = 0.0
    delta[vsrc] = delta[vsink] = 0.0
    order = [u for u in tree.internal_vertices() if u not in (vsrc, vsink)]
    # internal_vertices of the root are exactly the block tasks; re-derive
    # the optimized order instead of the structural one:
    order = [u for u in _sp_order(tree, a, delta) if u not in (vsrc, vsink)]
    if len(order) != len(block_set):
        return None
    return order


def memdag_traversal(wf: Workflow, block: Optional[Set[Node]] = None,
                     methods: Sequence[str] = ("best_first", "layered", "sp")) -> TraversalResult:
    """Best valid traversal among the requested engines (the memDag role).

    Candidates are evaluated under the exact semantics of
    :func:`repro.memdag.model.peak_of_traversal`; the smallest peak wins,
    with ties resolved toward the cheaper engine.
    """
    block_set = set(block) if block is not None else set(wf.tasks())
    if not block_set:
        return TraversalResult(order=(), peak=0.0, method="empty")

    candidates: List[Tuple[float, str, List[Node]]] = []
    if "best_first" in methods:
        order = best_first_traversal(wf, block_set)
        candidates.append((peak_of_traversal(wf, order, block_set), "best_first", order))
    if "layered" in methods:
        order = layered_traversal(wf, block_set)
        candidates.append((peak_of_traversal(wf, order, block_set), "layered", order))
    if "sp" in methods and len(block_set) <= SP_SIZE_LIMIT:
        order = sp_traversal(wf, block_set)
        if order is not None:
            candidates.append((peak_of_traversal(wf, order, block_set), "sp", order))
    if "exact" in methods and len(block_set) <= EXACT_SIZE_LIMIT:
        result = brute_force_min_peak(wf, block_set, limit=EXACT_SIZE_LIMIT)
        candidates.append((result.peak, "exact", list(result.order)))

    if not candidates:
        raise ValueError(f"no traversal engines selected from {methods!r}")
    peak, method, order = min(candidates, key=lambda t: t[0])
    return TraversalResult(order=tuple(order), peak=peak, method=method)


def brute_force_min_peak(wf: Workflow, block: Optional[Set[Node]] = None,
                         limit: int = 10) -> TraversalResult:
    """Exhaustive minimum over all topological orders (tests only).

    Branch-and-bound DFS; refuses blocks larger than ``limit`` tasks.
    """
    block_set = set(block) if block is not None else set(wf.tasks())
    n = len(block_set)
    if n > limit:
        raise ValueError(f"brute force limited to {limit} tasks, got {n}")
    if n == 0:
        return TraversalResult(order=(), peak=0.0, method="brute")

    a, delta = _statics(wf, block_set)
    best_peak = float("inf")
    best_order: List[Node] = []
    pending = {u: sum(1 for p in wf.parents(u) if p in block_set) for u in block_set}
    order: List[Node] = []

    def dfs(live: float, peak: float) -> None:
        nonlocal best_peak, best_order
        if peak >= best_peak:
            return
        if len(order) == n:
            best_peak = peak
            best_order = list(order)
            return
        for u in list(block_set):
            if pending[u] == 0 and u not in order_set:
                usage = live + a[u]
                order.append(u)
                order_set.add(u)
                for v in wf.children(u):
                    if v in block_set:
                        pending[v] -= 1
                dfs(live + delta[u], max(peak, usage))
                for v in wf.children(u):
                    if v in block_set:
                        pending[v] += 1
                order_set.discard(u)
                order.pop()

    order_set: Set[Node] = set()
    dfs(0.0, 0.0)
    return TraversalResult(order=tuple(best_order), peak=best_peak, method="brute")
