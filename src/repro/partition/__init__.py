"""dagP substrate: multilevel acyclic partitioning of workflow DAGs.

Re-implementation of the role played by Herrmann et al.'s ``dagP`` [16] in
the paper: split a DAG into ``k`` balanced blocks with small edge cut such
that the quotient graph is **acyclic**. The pipeline is the classical
multilevel scheme specialized to DAGs:

1. **coarsening** (:mod:`repro.partition.coarsen`) — contract provably
   acyclicity-safe edges (unique-parent / unique-child rule) until the
   graph is small;
2. **initial partitioning** (:mod:`repro.partition.initial`) — cut a
   DFS-flavoured topological order into ``k`` weight-balanced contiguous
   chunks (contiguity in a topological order guarantees an acyclic
   quotient);
3. **refinement** (:mod:`repro.partition.refine`) — FM-style boundary moves
   between order-adjacent blocks that reduce the weighted edge cut while
   preserving acyclicity and balance, applied at every uncoarsening level.

The public entry points are :func:`repro.partition.api.acyclic_partition`
and :func:`repro.partition.api.bisect_block` (used by ``FitBlock``).

Like dagP, the partitioner may return *fewer* blocks than requested on
small or chain-like graphs ("the partitioner is unable to decompose these
workflows into the desired number of blocks" — Section 5.2.1), and a
bisection request may yield more than two blocks; callers must tolerate
both, exactly as DagHetPart's Step 2 does.
"""

from repro.partition.contraction import CGraph
from repro.partition.coarsen import coarsen, CoarseningLevel
from repro.partition.initial import initial_partition, dfs_topological_order
from repro.partition.refine import refine, edge_cut
from repro.partition.api import acyclic_partition, bisect_block, partition_quality

__all__ = [
    "CGraph",
    "coarsen",
    "CoarseningLevel",
    "initial_partition",
    "dfs_topological_order",
    "refine",
    "edge_cut",
    "acyclic_partition",
    "bisect_block",
    "partition_quality",
]
