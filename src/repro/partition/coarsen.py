"""Acyclicity-safe coarsening.

Contracting a DAG edge ``(u, v)`` keeps the contracted graph acyclic iff
the direct edge is the **only** path from ``u`` to ``v``. Two cheap local
conditions each imply this globally:

* ``v`` has ``u`` as its only parent — any other ``u -> v`` path would
  enter ``v`` through a second parent;
* ``u`` has ``v`` as its only child — any other path would leave ``u``
  through a second child.

These rules contract chains and fan trees, which is exactly the structure
workflow DAGs are made of, so coarsening converges quickly in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.partition.contraction import CGraph

Node = Hashable


def safe_to_contract(g: CGraph, u: Node, v: Node) -> bool:
    """Local sufficient condition for acyclicity-safe contraction of (u, v)."""
    return g.in_degree(v) == 1 or g.out_degree(u) == 1


@dataclass
class CoarseningLevel:
    """One level of the multilevel hierarchy.

    ``assignment`` maps each node of the finer graph to its cluster id in
    the coarser graph; used to project partitions back during uncoarsening.
    """

    graph: CGraph
    assignment: Dict[Node, Node]


def coarsen_pass(g: CGraph, max_cluster_weight: float) -> Tuple[CGraph, Dict[Node, Node], int]:
    """One agglomerative clustering pass.

    Nodes are visited in topological order; each still-unabsorbed node
    greedily absorbs safe neighbours (heaviest connecting edge first, the
    dagP heuristic) while staying under ``max_cluster_weight``. Allowing a
    cluster to absorb several neighbours — rather than classical 1:1
    matching — is essential on star-shaped workflow graphs (BLAST,
    Seismology), where a matching pass can only remove O(1) nodes.
    Returns the coarser graph, the fine-to-coarse assignment and the
    number of contractions performed.
    """
    # Work on a fresh copy so levels stay immutable for projection.
    coarse = CGraph()
    coarse.weight = dict(g.weight)
    coarse.succ = {u: dict(nbrs) for u, nbrs in g.succ.items()}
    coarse.pred = {u: dict(nbrs) for u, nbrs in g.pred.items()}
    coarse.members = {u: [u] for u in g.weight}

    absorbed = set()
    contractions = 0
    for u in g.topological_order():
        if u in absorbed or u not in coarse.weight:
            continue
        while True:
            candidates: List[Tuple[float, int, Node, bool]] = []
            for idx, (v, c) in enumerate(coarse.succ[u].items()):
                if v in absorbed:
                    continue
                if coarse.weight[u] + coarse.weight[v] > max_cluster_weight:
                    continue
                if safe_to_contract(coarse, u, v):
                    candidates.append((c, -idx, v, True))
            for idx, (p, c) in enumerate(coarse.pred[u].items()):
                if p in absorbed:
                    continue
                if coarse.weight[u] + coarse.weight[p] > max_cluster_weight:
                    continue
                if safe_to_contract(coarse, p, u):
                    candidates.append((c, -idx, p, False))
            if not candidates:
                break
            _, _, other, is_child = max(candidates)
            if is_child:
                coarse.contract(u, other)
            else:
                # absorb the parent; contract() keeps the parent's id, so
                # rename the merged cluster back to u (the absorber must
                # keep its identity across loop iterations)
                coarse.contract(other, u)
                _swap_node_identity(coarse, other, u)
            absorbed.add(other)
            contractions += 1

    assignment: Dict[Node, Node] = {}
    for cluster, mem in coarse.members.items():
        for fine_node in mem:
            assignment[fine_node] = cluster
    return coarse, assignment, contractions


def _swap_node_identity(g: CGraph, old: Node, new: Node) -> None:
    """Rename node ``old`` to ``new`` (which must not currently exist)."""
    g.weight[new] = g.weight.pop(old)
    g.succ[new] = g.succ.pop(old)
    g.pred[new] = g.pred.pop(old)
    g.members[new] = g.members.pop(old)
    for x in g.succ[new]:
        g.pred[x][new] = g.pred[x].pop(old)
    for x in g.pred[new]:
        g.succ[x][new] = g.succ[x].pop(old)


def coarsen(g: CGraph, target_size: int, balance_cap: Optional[float] = None,
            max_levels: int = 30) -> List[CoarseningLevel]:
    """Full coarsening: repeat passes until ``target_size`` or stagnation.

    ``balance_cap`` limits cluster weight (default: total weight divided by
    ``target_size``, i.e. clusters never exceed one ideal block). Returns
    the hierarchy bottom-up: ``levels[0]`` coarsens the input graph,
    ``levels[-1].graph`` is the coarsest.
    """
    if balance_cap is None:
        balance_cap = max(g.total_weight() / max(target_size, 1), max(g.weight.values(), default=1.0))
    levels: List[CoarseningLevel] = []
    current = g
    for _ in range(max_levels):
        if len(current) <= target_size:
            break
        coarse, assignment, contractions = coarsen_pass(current, balance_cap)
        if contractions == 0 or len(coarse) >= len(current) * 0.98:
            break
        levels.append(CoarseningLevel(graph=coarse, assignment=assignment))
        current = coarse
    return levels
