"""Weighted DAG representation used inside the multilevel partitioner.

A :class:`CGraph` node represents a *cluster* of original workflow tasks;
contraction merges clusters and sums node weights and parallel edge
weights. The workflow's semantics (work/memory distinction, external
edges) are irrelevant at this layer — the partitioner only needs one scalar
node weight for balancing and one scalar edge weight for the cut.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List

from repro.utils.errors import CyclicWorkflowError
from repro.workflow.graph import Workflow

Node = Hashable


class CGraph:
    """Mutable weighted DAG of clusters with contraction support."""

    __slots__ = ("weight", "succ", "pred", "members")

    def __init__(self) -> None:
        self.weight: Dict[Node, float] = {}
        self.succ: Dict[Node, Dict[Node, float]] = {}
        self.pred: Dict[Node, Dict[Node, float]] = {}
        self.members: Dict[Node, List[Node]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_workflow(cls, wf: Workflow, node_weight) -> "CGraph":
        """Build the finest-level graph; ``node_weight(u) -> float``."""
        g = cls()
        for u in wf.tasks():
            g.weight[u] = float(node_weight(u))
            g.succ[u] = {}
            g.pred[u] = {}
            g.members[u] = [u]
        for u, v, c in wf.edges():
            g.succ[u][v] = g.succ[u].get(v, 0.0) + c
            g.pred[v][u] = g.pred[v].get(u, 0.0) + c
        return g

    @classmethod
    def from_subset(cls, wf: Workflow, nodes: Iterable[Node], node_weight) -> "CGraph":
        """Finest-level graph induced on ``nodes`` (block bisection)."""
        node_set = set(nodes)
        g = cls()
        for u in wf.tasks():
            if u not in node_set:
                continue
            g.weight[u] = float(node_weight(u))
            g.succ[u] = {}
            g.pred[u] = {}
            g.members[u] = [u]
        for u in g.weight:
            for v, c in wf.out_edges(u):
                if v in node_set:
                    g.succ[u][v] = g.succ[u].get(v, 0.0) + c
                    g.pred[v][u] = g.pred[v].get(u, 0.0) + c
        return g

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.weight)

    def nodes(self) -> Iterator[Node]:
        return iter(self.weight)

    def n_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.succ.values())

    def total_weight(self) -> float:
        return sum(self.weight.values())

    def in_degree(self, u: Node) -> int:
        return len(self.pred[u])

    def out_degree(self, u: Node) -> int:
        return len(self.succ[u])

    # ------------------------------------------------------------------
    def contract(self, u: Node, v: Node) -> Node:
        """Merge ``v`` into ``u`` (edge ``(u, v)`` must exist).

        Caller is responsible for choosing an acyclicity-safe pair (see
        :func:`repro.partition.coarsen.safe_to_contract`). The merged
        cluster keeps the id ``u``.
        """
        if v not in self.succ[u]:
            raise KeyError(f"no edge ({u!r}, {v!r}) to contract")
        del self.succ[u][v]
        del self.pred[v][u]
        for x, c in self.succ[v].items():
            self.succ[u][x] = self.succ[u].get(x, 0.0) + c
            del self.pred[x][v]
            self.pred[x][u] = self.pred[x].get(u, 0.0) + c
        for p, c in self.pred[v].items():
            self.succ[p][u] = self.succ[p].get(u, 0.0) + c
            del self.succ[p][v]
            self.pred[u][p] = self.pred[u].get(p, 0.0) + c
        self.weight[u] += self.weight[v]
        self.members[u].extend(self.members[v])
        del self.weight[v], self.succ[v], self.pred[v], self.members[v]
        return u

    # ------------------------------------------------------------------
    def topological_order(self) -> List[Node]:
        """Kahn order; raises :class:`CyclicWorkflowError` on a cycle."""
        indeg = {u: len(self.pred[u]) for u in self.weight}
        ready = [u for u in self.weight if indeg[u] == 0]
        order: List[Node] = []
        head = 0
        while head < len(ready):
            u = ready[head]
            head += 1
            order.append(u)
            for v in self.succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
        if len(order) != len(self.weight):
            raise CyclicWorkflowError()
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except CyclicWorkflowError:
            return False
