"""Public entry points of the acyclic DAG partitioner.

:func:`acyclic_partition` plays the role of ``dagP`` in Step 1 of
DagHetPart; :func:`bisect_block` plays its role inside ``FitBlock``
(Algorithm 2, ``Partition(V_m, 2)``).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set

from repro.partition.coarsen import coarsen
from repro.partition.contraction import CGraph
from repro.partition.initial import initial_partition
from repro.partition.refine import edge_cut, refine
from repro.utils.errors import InvalidPartitionError, PartitionSplitError
from repro.workflow.graph import Workflow

Node = Hashable

#: named node-weight functions for balancing
WEIGHT_FUNCTIONS = ("requirement", "work", "memory", "unit")


def _node_weight_fn(wf: Workflow, weight: str,
                    subset: bool = False) -> Callable[[Node], float]:
    if weight == "requirement":
        if not subset:
            # whole-graph partition: bulk-compute every requirement on the
            # active kernel (one vectorized pass on the array kernel);
            # values are bit-identical to wf.task_requirement(u) either way
            from repro.core.kernels import get_kernel

            reqs = get_kernel().task_requirements(wf)
            return lambda u: max(reqs[u], 1e-9)
        # subset partitions (block bisection) touch few tasks; the
        # per-node memoized path is cheaper than a full bulk pass
        return lambda u: max(wf.task_requirement(u), 1e-9)
    if weight == "work":
        return lambda u: max(wf.work(u), 1e-9)
    if weight == "memory":
        return lambda u: max(wf.memory(u), 1e-9)
    if weight == "unit":
        return lambda u: 1.0
    raise ValueError(f"unknown weight function {weight!r}; valid: {WEIGHT_FUNCTIONS}")


def _finalize(g_top: CGraph, part: Dict[Node, int]) -> List[Set[Node]]:
    """Convert a node->index map into a dense list of non-empty task sets."""
    by_index: Dict[int, Set[Node]] = {}
    for u, b in part.items():
        by_index.setdefault(b, set()).add(u)
    return [by_index[b] for b in sorted(by_index)]


def _check_acyclic_quotient(wf: Workflow, blocks: List[Set[Node]],
                            nodes: Optional[Set[Node]] = None) -> None:
    index: Dict[Node, int] = {}
    for i, block in enumerate(blocks):
        for u in block:
            index[u] = i
    succ: Dict[int, Set[int]] = {i: set() for i in range(len(blocks))}
    for u, bi in index.items():
        for v in wf.children(u):
            if v in index:
                bj = index[v]
                if bj != bi:
                    succ[bi].add(bj)
    indeg = {i: 0 for i in succ}
    for i, outs in succ.items():
        for j in outs:
            indeg[j] += 1
    ready = [i for i in succ if indeg[i] == 0]
    seen = 0
    while ready:
        i = ready.pop()
        seen += 1
        for j in succ[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    if seen != len(blocks):
        raise InvalidPartitionError("partition induces a cyclic quotient graph")


def acyclic_partition(wf: Workflow, k: int, *, weight: str = "requirement",
                      eps: float = 0.10, coarsen_target: Optional[int] = None,
                      refine_passes: int = 4, strategy: str = "best",
                      nodes: Optional[Iterable[Node]] = None) -> List[Set[Node]]:
    """Partition (a subset of) ``wf`` into at most ``k`` acyclic blocks.

    Multilevel: coarsen, initial topological chunking, refine at every
    uncoarsening level. Guarantees: blocks are non-empty and disjoint,
    cover the requested node set, and the quotient graph is acyclic
    (verified before returning). May return fewer than ``k`` blocks when
    the (coarsened) graph has fewer nodes, as dagP does on tiny inputs.

    Parameters
    ----------
    weight:
        Balancing weight per task: ``"requirement"`` (default; the memory
        footprint proxy, since memory is the binding constraint),
        ``"work"``, ``"memory"``, or ``"unit"``.
    eps:
        Balance tolerance for refinement moves.
    strategy:
        Initial-order strategy: ``"dfs"`` (chains contiguous), ``"bfs"``
        (levels contiguous), or ``"best"`` (default — run both on the
        coarsest graph and keep the one with the smaller refined cut; the
        multilevel pipeline amortizes the extra seed to a few percent).
    nodes:
        Restrict partitioning to this subset (used for block bisection).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    node_weight = _node_weight_fn(wf, weight, subset=nodes is not None)
    if nodes is None:
        g = CGraph.from_workflow(wf, node_weight)
    else:
        g = CGraph.from_subset(wf, nodes, node_weight)
    n = len(g)
    if n == 0:
        return []
    if k == 1 or n == 1:
        blocks = [set(g.nodes())]
        _check_acyclic_quotient(wf, blocks)
        return blocks

    target = coarsen_target if coarsen_target is not None else max(4 * k, 64)
    levels = coarsen(g, target)
    coarsest = levels[-1].graph if levels else g

    if strategy == "best":
        candidates = []
        for seed_strategy in ("dfs", "bfs"):
            candidate = initial_partition(coarsest, k, strategy=seed_strategy)
            refine(coarsest, candidate, k, eps=eps, max_passes=refine_passes)
            candidates.append((edge_cut(coarsest, candidate), candidate))
        part = min(candidates, key=lambda t: t[0])[1]
    else:
        part = initial_partition(coarsest, k, strategy=strategy)
        refine(coarsest, part, k, eps=eps, max_passes=refine_passes)

    # project back through the hierarchy, refining at each level;
    # levels[i].assignment maps nodes of the level's *input* graph
    # (levels[i-1].graph, or g for i == 0) to clusters of levels[i].graph
    for i in range(len(levels) - 1, -1, -1):
        level = levels[i]
        part = {u: part[level.assignment[u]] for u in level.assignment}
        input_graph = levels[i - 1].graph if i > 0 else g
        refine(input_graph, part, k, eps=eps, max_passes=refine_passes)

    blocks = _finalize(g, part)
    _check_acyclic_quotient(wf, blocks)
    return blocks


def bisect_block(wf: Workflow, block: Iterable[Node], *, weight: str = "requirement",
                 eps: float = 0.10) -> List[Set[Node]]:
    """Split a block into (at least) two acyclic sub-blocks (``FitBlock``).

    Raises :class:`PartitionSplitError` for singleton blocks — Step 2
    treats such blocks as unassignable and defers them to Step 3.
    """
    block_set = set(block)
    if len(block_set) < 2:
        raise PartitionSplitError(f"cannot split a block of {len(block_set)} task(s)")
    sub_blocks = acyclic_partition(wf, 2, weight=weight, eps=eps, nodes=block_set)
    if len(sub_blocks) < 2:
        raise PartitionSplitError("bisection failed to separate the block")
    return sub_blocks


def partition_quality(wf: Workflow, blocks: List[Set[Node]],
                      weight: str = "requirement") -> Dict[str, float]:
    """Diagnostics: weighted cut, imbalance, and block count."""
    node_weight = _node_weight_fn(wf, weight)
    index: Dict[Node, int] = {}
    for i, b in enumerate(blocks):
        for u in b:
            index[u] = i
    cut = sum(c for u, v, c in wf.edges()
              if u in index and v in index and index[u] != index[v])
    weights = [sum(node_weight(u) for u in b) for b in blocks]
    avg = sum(weights) / len(weights) if weights else 0.0
    imbalance = (max(weights) / avg - 1.0) if avg > 0 else 0.0
    return {"cut": cut, "imbalance": imbalance, "n_blocks": float(len(blocks))}
