"""FM-style acyclicity-preserving refinement.

Blocks are indexed consistently with a topological order (the initial
partitioner guarantees this), so the quotient's edges always point from
lower to higher block index. A single-vertex move preserves this invariant
when restricted to *order-adjacent* blocks:

* ``u`` may move from block ``b`` to ``b+1`` iff every successor of ``u``
  lies in a block ``>= b+1`` (``u`` is a "sink" of its block);
* ``u`` may move from ``b`` to ``b-1`` iff every predecessor lies in a
  block ``<= b-1`` (``u`` is a "source" of its block).

Moves are applied steepest-first while they reduce the weighted edge cut
and keep every block within the balance tolerance.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.partition.contraction import CGraph

Node = Hashable


def edge_cut(g: CGraph, part: Dict[Node, int]) -> float:
    """Total weight of edges crossing between blocks."""
    return sum(
        c for u, nbrs in g.succ.items() for v, c in nbrs.items()
        if part[u] != part[v]
    )


def _move_gain(g: CGraph, part: Dict[Node, int], u: Node, dest: int) -> float:
    """Cut reduction if ``u`` moves to block ``dest`` (positive = better)."""
    src = part[u]
    gain = 0.0
    for v, c in g.succ[u].items():
        before = c if part[v] != src else 0.0
        after = c if part[v] != dest else 0.0
        gain += before - after
    for p, c in g.pred[u].items():
        before = c if part[p] != src else 0.0
        after = c if part[p] != dest else 0.0
        gain += before - after
    return gain


def _legal_up(g: CGraph, part: Dict[Node, int], u: Node) -> bool:
    b = part[u]
    return all(part[v] >= b + 1 for v in g.succ[u])


def _legal_down(g: CGraph, part: Dict[Node, int], u: Node) -> bool:
    b = part[u]
    return all(part[p] <= b - 1 for p in g.pred[u])


def refine(g: CGraph, part: Dict[Node, int], k: int, eps: float = 0.10,
           max_passes: int = 4) -> Dict[Node, int]:
    """Improve ``part`` in place (also returned) by adjacent boundary moves.

    ``eps`` is the balance tolerance: a move may not push the destination
    block above ``(1 + eps) * total / k`` nor empty the source block.
    """
    if k <= 1 or len(g) <= 1:
        return part
    total = g.total_weight()
    cap = (1.0 + eps) * total / k
    block_weight: Dict[int, float] = {}
    block_size: Dict[int, int] = {}
    for u, b in part.items():
        block_weight[b] = block_weight.get(b, 0.0) + g.weight[u]
        block_size[b] = block_size.get(b, 0) + 1

    for _ in range(max_passes):
        moves: List[Tuple[float, int, Node, int]] = []
        for i, u in enumerate(g.nodes()):
            b = part[u]
            if block_size[b] <= 1:
                continue
            if _legal_up(g, part, u):
                dest = b + 1
                if dest in block_weight or dest < k:
                    gain = _move_gain(g, part, u, dest)
                    if gain > 0:
                        moves.append((gain, -i, u, dest))
            if _legal_down(g, part, u) and b - 1 >= 0:
                dest = b - 1
                gain = _move_gain(g, part, u, dest)
                if gain > 0:
                    moves.append((gain, -i, u, dest))
        if not moves:
            break
        moves.sort(reverse=True)
        applied = 0
        for gain, _, u, dest in moves:
            b = part[u]
            if abs(dest - b) != 1 or block_size.get(b, 0) <= 1:
                continue
            if dest > b and not _legal_up(g, part, u):
                continue
            if dest < b and not _legal_down(g, part, u):
                continue
            if _move_gain(g, part, u, dest) <= 0:
                continue
            if block_weight.get(dest, 0.0) + g.weight[u] > cap:
                continue
            part[u] = dest
            block_weight[b] -= g.weight[u]
            block_size[b] -= 1
            block_weight[dest] = block_weight.get(dest, 0.0) + g.weight[u]
            block_size[dest] = block_size.get(dest, 0) + 1
            applied += 1
        if applied == 0:
            break
    return part
