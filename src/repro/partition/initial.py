"""Initial acyclic partitioning of the coarsest graph.

Any partition into blocks that are *contiguous in a topological order* has
an acyclic quotient (edges only point forward in the order, hence between
blocks only from lower to higher index). We use a DFS-flavoured
topological order — it keeps chains and subtrees contiguous, which yields
far smaller cuts than BFS/Kahn order on fan-out-heavy workflow DAGs — and
cut it into ``k`` chunks of nearly equal weight.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.partition.contraction import CGraph

Node = Hashable


def dfs_topological_order(g: CGraph) -> List[Node]:
    """Topological order that follows chains depth-first.

    Kahn's algorithm with a LIFO ready stack: after finishing a node we
    immediately continue with one of its just-released children instead of
    rotating through all currently-ready nodes. Deterministic (insertion
    order of adjacency dicts).
    """
    indeg = {u: g.in_degree(u) for u in g.nodes()}
    stack = [u for u in g.nodes() if indeg[u] == 0]
    stack.reverse()  # pop() order == insertion order
    order: List[Node] = []
    while stack:
        u = stack.pop()
        order.append(u)
        released = [v for v in g.succ[u] if not _decrement(indeg, v)]
        # push released children so the heaviest-edge child is popped first
        for v in sorted(released, key=lambda x: g.succ[u][x]):
            stack.append(v)
    if len(order) != len(g):
        raise ValueError("graph contains a cycle")
    return order


def _decrement(indeg: Dict[Node, int], v: Node) -> bool:
    indeg[v] -= 1
    return indeg[v] != 0


def bfs_topological_order(g: CGraph) -> List[Node]:
    """Kahn's algorithm with a FIFO queue (level-ish order).

    Groups whole levels together: better for wide fan-out stages where the
    per-stage tasks should share blocks, worse for chain bundles. Offered
    as the alternative seed of the ``"best"`` strategy.
    """
    indeg = {u: g.in_degree(u) for u in g.nodes()}
    queue = [u for u in g.nodes() if indeg[u] == 0]
    head = 0
    order: List[Node] = []
    while head < len(queue):
        u = queue[head]
        head += 1
        order.append(u)
        for v in g.succ[u]:
            if not _decrement(indeg, v):
                queue.append(v)
    if len(order) != len(g):
        raise ValueError("graph contains a cycle")
    return order


#: order generators available to the initial partitioner
ORDER_STRATEGIES = {
    "dfs": dfs_topological_order,
    "bfs": bfs_topological_order,
}


def initial_partition(g: CGraph, k: int, strategy: str = "dfs") -> Dict[Node, int]:
    """Cut a DFS topological order into ``k`` weight-balanced chunks.

    Greedy prefix cutting against the ideal cumulative boundary; blocks are
    never empty, and fewer than ``k`` blocks are produced when the graph
    has fewer than ``k`` nodes (mirroring dagP's behaviour on tiny DAGs).
    Returns a dense node -> block-index map with block indices respecting
    the topological order (needed by the refinement's adjacency rule).
    ``strategy`` picks the underlying topological order (``"dfs"`` keeps
    chains contiguous; ``"bfs"`` keeps levels contiguous).
    """
    try:
        order_fn = ORDER_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(f"unknown order strategy {strategy!r}; "
                         f"valid: {sorted(ORDER_STRATEGIES)}") from None
    order = order_fn(g)
    n = len(order)
    k_eff = min(k, n)
    if k_eff <= 1:
        return {u: 0 for u in order}

    total = sum(g.weight[u] for u in order)
    target = total / k_eff
    part: Dict[Node, int] = {}
    block = 0
    acc = 0.0
    consumed = 0.0
    for i, u in enumerate(order):
        w = g.weight[u]
        remaining_nodes = n - i
        remaining_blocks = k_eff - block
        # must leave at least one node for each remaining block
        must_close = remaining_nodes == remaining_blocks and acc > 0.0
        # close when the running block reached its share (midpoint rule:
        # overshoot allowed if the node brings us closer to the boundary)
        boundary = consumed + target
        overshoots = acc > 0.0 and (consumed + acc + w / 2.0) > boundary
        if block < k_eff - 1 and (must_close or overshoots):
            consumed += acc
            acc = 0.0
            block += 1
        part[u] = block
        acc += w
    return part
