"""Tests for critical paths, levels, and fan-out statistics."""

import pytest

from repro.workflow.analysis import (
    critical_path,
    critical_path_length,
    fanout_statistics,
    topological_levels,
    workflow_statistics,
)
from repro.workflow.graph import Workflow


class TestLevels:
    def test_chain_levels(self, chain_workflow):
        levels = topological_levels(chain_workflow)
        assert [levels[u] for u in "abcd"] == [0, 1, 2, 3]

    def test_diamond_levels(self, diamond_workflow):
        levels = topological_levels(diamond_workflow)
        assert levels["s"] == 0
        assert levels["x"] == levels["y"] == 1
        assert levels["t"] == 2

    def test_levels_use_longest_path(self):
        wf = Workflow()
        wf.add_edge("a", "d")
        wf.add_edge("a", "b")
        wf.add_edge("b", "c")
        wf.add_edge("c", "d")
        assert topological_levels(wf)["d"] == 3


class TestCriticalPath:
    def test_chain_is_its_own_critical_path(self, chain_workflow):
        path, length = critical_path(chain_workflow)
        assert path == ["a", "b", "c", "d"]
        # works 1+2+3+4 plus edges 3+1+2
        assert length == pytest.approx(16.0)

    def test_diamond_takes_heavier_branch(self, diamond_workflow):
        path, length = critical_path(diamond_workflow)
        # s->x->t: 1+2 + (2+3+1) = 9 ; s->y->t: 1+3 + (1+1+1) = 7
        assert path == ["s", "x", "t"]
        assert length == pytest.approx(9.0)

    def test_bandwidth_changes_critical_path(self, diamond_workflow):
        # with very fast network, the heavier-work branch (y) dominates
        path, _ = critical_path(diamond_workflow, beta=100.0)
        assert path == ["s", "y", "t"]

    def test_length_matches_path(self, fig1_workflow):
        path, length = critical_path(fig1_workflow)
        assert length == pytest.approx(critical_path_length(fig1_workflow))
        assert path[0] == 1

    def test_empty_workflow(self):
        path, length = critical_path(Workflow())
        assert path == [] and length == 0.0


class TestFanout:
    def test_fork_width(self, fork_workflow):
        stats = fanout_statistics(fork_workflow)
        assert stats["max_out_degree"] == 6.0
        assert stats["width"] == 6.0

    def test_chain_width_one(self, chain_workflow):
        stats = fanout_statistics(chain_workflow)
        assert stats["width"] == 1.0
        assert stats["max_out_degree"] == 1.0

    def test_workflow_statistics_record(self, fig1_workflow):
        stats = workflow_statistics(fig1_workflow)
        assert stats.n_tasks == 9
        assert stats.n_edges == 13
        assert stats.n_sources == 1
        assert stats.n_targets == 1
        assert stats.total_work == pytest.approx(9.0)
        assert stats.depth == 7  # the 1-3-4-6-7-8-9 path has 7 levels

    def test_fanned_families_have_higher_width(self):
        from repro.generators.families import generate_topology
        blast = fanout_statistics(generate_topology("blast", 100))
        epi = fanout_statistics(generate_topology("epigenomics", 100))
        assert blast["width"] > epi["width"]
