"""Tests of the nf-core-like real-world workflow simulation."""

import pytest

from repro.generators.realworld import (
    REAL_WORKFLOW_NAMES,
    _stage_key,
    all_real_workflows,
    generate_real_workflow,
)
from repro.workflow.validation import validate_workflow


class TestCatalogue:
    def test_five_workflows(self):
        assert len(REAL_WORKFLOW_NAMES) == 5

    def test_task_counts_in_paper_range(self):
        """The paper's real workflows have 11 to 58 tasks."""
        sizes = [generate_real_workflow(n).n_tasks for n in REAL_WORKFLOW_NAMES]
        assert min(sizes) == 11
        assert max(sizes) == 58
        assert all(11 <= s <= 58 for s in sizes)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            generate_real_workflow("nf-core/doesnotexist")

    def test_all_valid_dags(self):
        for wf in all_real_workflows():
            validate_workflow(wf)


class TestWeightFingerprint:
    def test_deterministic_per_name(self):
        a = generate_real_workflow("methylseq")
        b = generate_real_workflow("methylseq")
        assert [a.work(u) for u in a.tasks()] == [b.work(u) for u in b.tasks()]

    def test_long_tail_of_weight_one_tasks(self):
        """Tasks without historical data get weight 1 (40-60% of stages)."""
        for wf in all_real_workflows():
            ones = sum(1 for u in wf.tasks() if wf.work(u) == 1.0)
            assert ones >= 0.2 * wf.n_tasks, wf.name

    def test_measured_values_min_normalized(self):
        """Measured weights are normalized by the smallest measured value."""
        wf = generate_real_workflow("methylseq")
        measured = sorted({wf.work(u) for u in wf.tasks() if wf.work(u) != 1.0})
        assert measured
        assert measured[0] >= 1.0  # nothing below the normalization floor

    def test_stage_correlation(self):
        """All samples of the same stage share the same measured weight."""
        wf = generate_real_workflow("chipseq")
        by_stage = {}
        for u in wf.tasks():
            by_stage.setdefault(_stage_key(u), set()).add(wf.work(u))
        for stage, values in by_stage.items():
            assert len(values) == 1, f"stage {stage} has divergent weights"

    def test_memory_normalized_to_192(self):
        for wf in all_real_workflows():
            assert wf.max_task_requirement() <= 192.0 + 1e-9

    def test_work_factor(self):
        base = generate_real_workflow("mag")
        scaled = generate_real_workflow("mag", work_factor=4.0)
        for u in base.tasks():
            assert scaled.work(u) == pytest.approx(4.0 * base.work(u))


class TestStageKey:
    def test_strips_sample_index(self):
        assert _stage_key("methylseq:s3:stage2") == "methylseq:stage2"

    def test_keeps_global_stages(self):
        assert _stage_key("methylseq:multiqc") == "methylseq:multiqc"
        assert _stage_key("methylseq:aggregate1") == "methylseq:aggregate1"
