"""End-to-end integration tests: the full pipeline on every family and
cluster preset, including failure injection."""

import math

import pytest

from repro.core.baseline import dag_het_mem
from repro.core.heuristic import DagHetPartConfig, dag_het_part, schedule
from repro.core.mapping import simulate_mapping
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import WORKFLOW_FAMILIES, generate_workflow
from repro.generators.realworld import all_real_workflows
from repro.platform.cluster import Cluster
from repro.platform.presets import (
    default_cluster,
    lesshet_cluster,
    morehet_cluster,
    nohet_cluster,
)
from repro.platform.processor import Processor
from repro.utils.errors import NoFeasibleMappingError

FAST = DagHetPartConfig(k_prime_strategy="doubling")


class TestFullPipelinePerFamily:
    @pytest.mark.parametrize("family", WORKFLOW_FAMILIES)
    def test_both_algorithms_validate(self, family):
        wf = generate_workflow(family, 90, seed=13)
        cluster = scaled_cluster_for(wf, default_cluster())
        base = dag_het_mem(wf, cluster)
        base.validate()
        part = dag_het_part(wf, cluster, FAST)
        part.validate()
        # simulation agrees with the analytic makespan for both
        assert simulate_mapping(base) == pytest.approx(base.makespan())
        assert simulate_mapping(part) == pytest.approx(part.makespan())


class TestRealWorkflows:
    def test_all_real_workflows_schedule_on_default_cluster(self):
        cluster = default_cluster()
        for wf in all_real_workflows():
            base = dag_het_mem(wf, cluster)
            part = dag_het_part(wf, cluster, FAST)
            base.validate()
            part.validate()

    def test_real_geomean_improvement(self):
        """The paper reports DagHetPart 1.59x better on real workflows; our
        simulated traces reproduce a clearly-better-than-baseline geomean."""
        cluster = default_cluster()
        ratios = []
        for wf in all_real_workflows():
            base = dag_het_mem(wf, cluster)
            part = dag_het_part(wf, cluster,
                                DagHetPartConfig(k_prime_strategy="all"))
            ratios.append(part.makespan() / base.makespan())
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        assert geomean < 0.9
        assert all(r <= 1.0 + 1e-9 for r in ratios)


class TestClusterPresets:
    @pytest.mark.parametrize("preset", [nohet_cluster, lesshet_cluster,
                                        morehet_cluster])
    def test_heterogeneity_variants(self, preset):
        wf = generate_workflow("bwa", 70, seed=3)
        cluster = scaled_cluster_for(wf, preset())
        mapping = dag_het_part(wf, cluster, FAST)
        mapping.validate()

    def test_bandwidth_sweep_runs(self):
        wf = generate_workflow("blast", 60, seed=1)
        makespans = []
        for beta in (0.1, 1.0, 5.0):
            cluster = scaled_cluster_for(wf, default_cluster(bandwidth=beta))
            mapping = dag_het_part(wf, cluster, FAST)
            mapping.validate()
            makespans.append(mapping.makespan())
        # more bandwidth never hurts on this fan-heavy family
        assert makespans[-1] <= makespans[0] + 1e-9


class TestFailureInjection:
    def test_platform_too_small_for_both_algorithms(self):
        wf = generate_workflow("seismology", 120, seed=2)
        tiny = Cluster([Processor("p0", 1.0, 1.0), Processor("p1", 1.0, 1.0)])
        with pytest.raises(NoFeasibleMappingError):
            dag_het_mem(wf, tiny)
        with pytest.raises(NoFeasibleMappingError):
            dag_het_part(wf, tiny, FAST)

    def test_borderline_platform_baseline_fails_heuristic_succeeds(self):
        """DagHetPart can succeed where the greedy packing baseline fails:
        the partitioner can isolate the memory-hungry hub while the
        baseline's traversal order marches into a dead end."""
        # star: hub feeds n leaves; hub requirement ~ n*cost
        from repro.workflow.graph import Workflow
        wf = Workflow("star")
        wf.add_task("hub", work=1.0, memory=1.0)
        for i in range(8):
            wf.add_task(i, work=1.0, memory=6.0)
            wf.add_edge("hub", i, 1.0)
        procs = [Processor("big", 1.0, 16.0)] + [
            Processor(f"p{j}", 1.0, 8.0) for j in range(8)]
        cluster = Cluster(procs)
        part = dag_het_part(wf, cluster, DagHetPartConfig(k_prime_strategy="all"))
        part.validate()


class TestScaleSmoke:
    def test_mid_size_instance_under_time_budget(self):
        import time
        wf = generate_workflow("genome", 600, seed=21)
        cluster = scaled_cluster_for(wf, default_cluster())
        start = time.perf_counter()
        mapping = dag_het_part(wf, cluster, FAST)
        elapsed = time.perf_counter() - start
        mapping.validate()
        assert elapsed < 60.0
