"""End-to-end service tests: HTTP round trips, parity with offline runs,
event streams, error surfaces, graceful shutdown, SIGTERM.

Each test boots a real :class:`ServiceApp` on an ephemeral port inside a
background event-loop thread and drives it with the blocking
:class:`ServiceClient` — the full wire path, not handler calls.
"""

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.api import (
    AlgorithmSpec,
    FamilyGridSource,
    PlatformAxis,
    ScenarioSpec,
    ScheduleRequest,
    register_algorithm,
    run_scenario,
    solve,
    unregister_algorithm,
)
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster
from repro.service import JobStore, ServiceClient, ServiceError
from repro.service.app import ServiceApp


class RunningService:
    """A live service in a daemon thread, stopped via its own endpoint."""

    def __init__(self, store_dir, **kwargs):
        self._loop = None
        self.app = None
        self._failure = None
        started = threading.Event()

        def run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def main():
                self.app = ServiceApp(str(store_dir), **kwargs)
                await self.app.start(host="127.0.0.1", port=0)
                started.set()
                await self.app.wait_closed()

            try:
                loop.run_until_complete(main())
            except BaseException as exc:  # surface boot failures to the test
                self._failure = exc
                started.set()
            finally:
                loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        if not started.wait(20) or self._failure is not None:
            raise RuntimeError(f"service failed to start: {self._failure}")
        self.client = ServiceClient(f"http://127.0.0.1:{self.app.port}")

    def stop(self, timeout=30):
        if self._thread.is_alive():
            try:
                self.client.shutdown()
            except (ServiceError, OSError):
                pass
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "service did not drain in time"


@pytest.fixture
def service(tmp_path):
    svc = RunningService(tmp_path / "store")
    yield svc
    svc.stop()


def _request_dict(n=16, seed=1, algorithm="daghetpart", **tags):
    wf = generate_workflow("blast", n, seed=seed)
    return ScheduleRequest(workflow=wf, cluster=default_cluster(),
                           algorithm=algorithm, scale_memory=True,
                           tags=tags).to_dict()


class TestScheduleJobs:
    def test_submit_poll_result_matches_offline(self, service):
        payload = _request_dict(tags_instance="one")
        accepted = service.client.submit_schedule(payload)
        assert accepted["state"] == "queued"
        assert accepted["total"] == 1

        view = service.client.wait(accepted["id"], timeout=60)
        status = view["status"]
        assert status["state"] == "done"
        assert (status["completed"], status["ok"]) == (1, 1)
        assert view["kind"] == "schedule"
        (record,) = view["result"]["results"]

        offline = solve(ScheduleRequest.from_dict(payload))
        assert record["makespan"] == offline.makespan
        assert record["algorithm"] == offline.algorithm
        assert record["n_blocks"] == offline.n_blocks

    def test_healthz_stats_and_listing(self, service):
        accepted = service.client.submit_schedule(_request_dict())
        service.client.wait(accepted["id"], timeout=60)

        health = service.client.healthz()
        assert health["status"] == "ok"
        assert health["jobs"].get("done") == 1

        stats = service.client.stats()
        assert stats["uptime_s"] >= 0
        assert stats["completed_jobs"] == 1
        assert stats["completed_requests"] == 1
        assert stats["in_flight"] == 0
        assert stats["queue_depth"] == 0
        assert stats["jobs"] == {"done": 1}
        assert sum(b["jobs"] for b in stats["backends"].values()) == 1

        listing = service.client.jobs()
        assert [j["id"] for j in listing["jobs"]] == [accepted["id"]]
        assert listing["jobs"][0]["state"] == "done"

    def test_event_stream_ticks_and_ends(self, service):
        # hold the worker gate so the stream subscribes before the job
        # starts (a live subscriber sees start/tick/end; late ones only
        # what remains)
        service.app.dispatcher.hold()
        accepted = service.client.submit_schedule(_request_dict())
        release = threading.Timer(0.2, service.app.dispatcher.release)
        release.start()
        try:
            events = list(service.client.events(accepted["id"]))
        finally:
            release.cancel()
            service.app.dispatcher.release()
        kinds = [e["event"] for e in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "end"
        ticks = [e for e in events if e["event"] == "tick"]
        assert len(ticks) == 1
        assert ticks[0]["completed"] == 1
        assert ticks[0]["ok"] is True
        assert events[-1]["state"] == "done"

    def test_event_stream_on_finished_job_just_ends(self, service):
        accepted = service.client.submit_schedule(_request_dict())
        service.client.wait(accepted["id"], timeout=60)
        events = list(service.client.events(accepted["id"]))
        assert [e["event"] for e in events] == ["end"]
        assert events[0]["state"] == "done"

    def test_unknown_algorithm_fails_the_job_not_the_server(self, service):
        payload = _request_dict()
        payload["algorithm"] = "not-a-registered-algorithm"
        accepted = service.client.submit_schedule(payload)
        status = service.client.wait(accepted["id"], timeout=60)["status"]
        assert status["state"] == "failed"
        assert "not-a-registered-algorithm" in status["error"]
        assert service.client.healthz()["status"] == "ok"


class TestScenarioJobs:
    def _spec(self):
        return ScenarioSpec(
            name="svc-parity",
            workflows=(FamilyGridSource(families=("blast", "bwa"),
                                        sizes=(16,), seed=5),),
            platforms=(PlatformAxis(preset="default", bandwidths=(1.0,)),),
            algorithms=(AlgorithmSpec("daghetpart"),
                        AlgorithmSpec("daghetmem")),
            scale_memory=True)

    def test_scenario_results_bit_identical_to_offline(self, service):
        spec = self._spec()
        accepted = service.client.submit_scenario(spec.to_dict())
        assert accepted["total"] == spec.size()
        view = service.client.wait(accepted["id"], timeout=120)
        assert view["status"]["state"] == "done"
        assert view["status"]["completed"] == spec.size()

        offline = list(run_scenario(spec))
        assert len(view["result"]["results"]) == len(offline)
        for record, expected in zip(view["result"]["results"], offline):
            assert record["workflow"] == expected.workflow
            assert record["algorithm"] == expected.algorithm
            assert record["makespan"] == expected.to_dict()["makespan"]


class TestErrorSurfaces:
    def test_invalid_payloads_get_400(self, service):
        with pytest.raises(ServiceError) as err:
            service.client.submit_schedule({"algorithm": "daghetpart"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            service.client.submit_scenario({"name": "no-axes"})
        assert err.value.status == 400

    def test_unknown_ids_and_routes_get_404(self, service):
        with pytest.raises(ServiceError) as err:
            service.client.job("no-such-job")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            service.client._call("GET", "/v1/nope")
        assert err.value.status == 404

    def test_wrong_method_gets_405(self, service):
        with pytest.raises(ServiceError) as err:
            service.client._call("GET", "/v1/schedule")
        assert err.value.status == 405


class TestGracefulShutdown:
    def test_shutdown_drains_persists_and_503s(self, tmp_path):
        from repro.api.envelopes import SchedulerOutput
        from repro.core.baseline import dag_het_mem

        @register_algorithm("sleepy-test", display_name="SleepyTest",
                            capabilities=("test-only",),
                            summary="daghetmem after a nap (shutdown test)")
        class SleepyScheduler:
            def run(self, workflow, cluster, config=None):
                time.sleep(0.4)
                return SchedulerOutput(mapping=dag_het_mem(workflow, cluster))

        svc = RunningService(tmp_path / "store", workers=2)
        try:
            ids = [svc.client.submit_schedule(
                       _request_dict(seed=i, algorithm="sleepy-test"))["id"]
                   for i in range(2)]
            svc.client.shutdown()  # returns 202 immediately, then drains
            # the drain window: in-flight jobs keep running, new work is
            # refused with 503 the moment draining begins
            with pytest.raises(ServiceError) as err:
                deadline = time.time() + 10
                while time.time() < deadline:
                    svc.client.submit_schedule(_request_dict())
            assert err.value.status == 503
            svc._thread.join(30)
            assert not svc._thread.is_alive()
        finally:
            unregister_algorithm("sleepy-test")
            svc.stop()

        # everything accepted before the drain landed durably as done
        with JobStore(str(tmp_path / "store")) as store:
            for job_id in ids:
                assert store.status(job_id).state == "done"
                assert store.result(job_id) is not None

    def test_sigterm_drains_like_the_endpoint(self, tmp_path):
        store_dir = tmp_path / "store"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve",
             "--port", "0", "--store", str(store_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line, line
            port = int(line.rsplit(":", 1)[1])
            client = ServiceClient(f"http://127.0.0.1:{port}")
            job_id = client.submit_schedule(_request_dict())["id"]
            client.wait(job_id, timeout=60)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "service drained and stopped" in out
        with JobStore(str(store_dir)) as store:
            assert store.status(job_id).state == "done"
