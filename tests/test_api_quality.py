"""Meta-tests on API quality: docstrings everywhere, exports resolvable,
determinism of the public pipeline."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.workflow", "repro.platform", "repro.memdag",
    "repro.partition", "repro.core", "repro.generators", "repro.experiments",
    "repro.utils",
]


def _all_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                yield importlib.import_module(f"{pkg_name}.{info.name}")


class TestDocumentation:
    def test_every_module_has_docstring(self):
        missing = [m.__name__ for m in _all_modules() if not m.__doc__]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_function_has_docstring(self):
        missing = []
        for module in _all_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isfunction(obj) and obj.__module__ == module.__name__:
                    if not obj.__doc__:
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, f"functions without docstrings: {missing}"

    def test_every_public_class_has_docstring(self):
        missing = []
        for module in _all_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(obj) and obj.__module__ == module.__name__:
                    if not obj.__doc__:
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, f"classes without docstrings: {missing}"


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        for pkg_name in PACKAGES[1:]:
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.{name}"


class TestDeterminism:
    def test_public_pipeline_bitwise_stable(self):
        """Same seed, same mapping — across two fresh runs of everything."""
        from repro import (
            DagHetPartConfig,
            default_cluster,
            generate_workflow,
            schedule,
        )
        from repro.experiments.instances import scaled_cluster_for

        def run():
            wf = generate_workflow("genome", 70, seed=99)
            cluster = scaled_cluster_for(wf, default_cluster())
            mapping = schedule(wf, cluster, "daghetpart",
                               config=DagHetPartConfig(k_prime_strategy="doubling"))
            return (mapping.makespan(),
                    sorted((sorted(map(str, a.tasks)), a.processor.name)
                           for a in mapping.assignments))

        assert run() == run()
